//! A uniform front over the three switch architectures under test.

use eswitch::analysis::CompilerConfig;
use eswitch::runtime::EswitchRuntime;
use openflow::{DirectDatapath, FlowMod, NullController, Pipeline, Verdict};
use ovsdp::{OvsConfig, OvsDatapath};
use pkt::Packet;

/// Which switch architecture a measurement runs against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchKind {
    /// ESWITCH: the compiled, specialized datapath (this paper).
    Eswitch,
    /// ESWITCH with the table-decomposition pass enabled.
    EswitchDecomposed,
    /// The OVS-architecture flow-caching datapath.
    Ovs,
    /// The direct (uncached, uncompiled) reference datapath.
    Direct,
}

impl SwitchKind {
    /// Short label used in series names ("ES", "OVS", ...).
    pub fn label(&self) -> &'static str {
        match self {
            SwitchKind::Eswitch => "ES",
            SwitchKind::EswitchDecomposed => "ES(decomposed)",
            SwitchKind::Ovs => "OVS",
            SwitchKind::Direct => "direct",
        }
    }
}

/// A switch instance of any architecture, processing packets one at a time.
pub enum AnySwitch {
    /// Compiled ESWITCH runtime.
    Eswitch(EswitchRuntime),
    /// OVS-style caching datapath (boxed: it embeds the burst scratch and
    /// projection buffers, making it much larger than the other variants).
    Ovs(Box<OvsDatapath>),
    /// Direct reference datapath.
    Direct(DirectDatapath),
}

impl AnySwitch {
    /// Instantiates the requested architecture over a pipeline.
    pub fn build(kind: SwitchKind, pipeline: Pipeline) -> Self {
        match kind {
            SwitchKind::Eswitch => {
                AnySwitch::Eswitch(EswitchRuntime::compile(pipeline).expect("pipeline compiles"))
            }
            SwitchKind::EswitchDecomposed => AnySwitch::Eswitch(
                EswitchRuntime::with_config(
                    pipeline,
                    CompilerConfig {
                        enable_decomposition: true,
                        ..CompilerConfig::default()
                    },
                    Box::new(NullController::new()),
                )
                .expect("pipeline compiles"),
            ),
            SwitchKind::Ovs => AnySwitch::Ovs(Box::new(OvsDatapath::new(pipeline))),
            SwitchKind::Direct => AnySwitch::Direct(DirectDatapath::new(pipeline)),
        }
    }

    /// Instantiates an OVS datapath with an explicit cache configuration.
    pub fn ovs_with_config(pipeline: Pipeline, config: OvsConfig) -> Self {
        AnySwitch::Ovs(Box::new(OvsDatapath::with_config(
            pipeline,
            config,
            Box::new(NullController::new()),
        )))
    }

    /// Processes one packet.
    #[inline]
    pub fn process(&self, packet: &mut Packet) -> Verdict {
        match self {
            AnySwitch::Eswitch(s) => s.process(packet),
            AnySwitch::Ovs(s) => s.process(packet),
            AnySwitch::Direct(s) => s.process(packet),
        }
    }

    /// Processes a batch of packets through the architecture's batched fast
    /// path, appending one verdict per packet to `verdicts` (cleared first).
    /// The direct interpreter has no batch path; it falls back to per-packet
    /// processing into the same buffer.
    #[inline]
    pub fn process_batch_into(&self, packets: &mut [Packet], verdicts: &mut Vec<Verdict>) {
        match self {
            AnySwitch::Eswitch(s) => s.process_batch_into(packets, verdicts),
            AnySwitch::Ovs(s) => s.process_batch_into(packets, verdicts),
            AnySwitch::Direct(s) => {
                verdicts.clear();
                verdicts.reserve(packets.len());
                for p in packets.iter_mut() {
                    verdicts.push(s.process(p));
                }
            }
        }
    }

    /// Applies a flow-mod (used by the update experiments).
    pub fn flow_mod(&self, fm: &FlowMod) {
        match self {
            AnySwitch::Eswitch(s) => {
                let _ = s.flow_mod(fm);
            }
            AnySwitch::Ovs(s) => {
                let _ = s.flow_mod(fm);
            }
            AnySwitch::Direct(s) => {
                let _ = s.flow_mod(fm);
            }
        }
    }

    /// The ESWITCH runtime, if this is one (for template/update statistics).
    pub fn as_eswitch(&self) -> Option<&EswitchRuntime> {
        match self {
            AnySwitch::Eswitch(s) => Some(s),
            _ => None,
        }
    }

    /// The OVS datapath, if this is one (for cache statistics).
    pub fn as_ovs(&self) -> Option<&OvsDatapath> {
        match self {
            AnySwitch::Ovs(s) => Some(s),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::l2::{self, L2Config};

    #[test]
    fn all_architectures_agree_on_l2() {
        let config = L2Config {
            table_size: 32,
            ports: 4,
            seed: 4,
        };
        let traffic = l2::build_traffic(&config, 64);
        let switches: Vec<AnySwitch> = [
            SwitchKind::Eswitch,
            SwitchKind::EswitchDecomposed,
            SwitchKind::Ovs,
            SwitchKind::Direct,
        ]
        .iter()
        .map(|k| AnySwitch::build(*k, l2::build_pipeline(&config)))
        .collect();
        for i in 0..128 {
            let reference = {
                let mut p = traffic.packet(i);
                switches[3].process(&mut p).decision()
            };
            for sw in &switches[..3] {
                let mut p = traffic.packet(i);
                assert_eq!(sw.process(&mut p).decision(), reference, "packet {i}");
            }
        }
    }
}
