//! Plain-text series/table rendering shared by the figure binaries.

/// One data series of a figure: a label plus (x, y) points.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label, e.g. `ES(1K)` or `OVS(100)`.
    pub label: String,
    /// Data points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The y value at a given x, if present.
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (*px - x).abs() < f64::EPSILON)
            .map(|(_, y)| *y)
    }
}

/// Formats a number compactly (12.3M, 456K, 7.89).
pub fn human(value: f64) -> String {
    let abs = value.abs();
    if abs >= 1e9 {
        format!("{:.2}G", value / 1e9)
    } else if abs >= 1e6 {
        format!("{:.2}M", value / 1e6)
    } else if abs >= 1e3 {
        format!("{:.1}K", value / 1e3)
    } else if abs >= 1.0 {
        format!("{value:.2}")
    } else {
        format!("{value:.4}")
    }
}

/// Renders a set of series sharing the same x values as an aligned text
/// table: one row per x, one column per series. This is the "same rows/series
/// the paper reports" output of every figure binary.
pub fn render_series_table(x_label: &str, series: &[Series]) -> String {
    let mut xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|(x, _)| *x))
        .collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("x values are finite"));
    xs.dedup();

    let mut out = String::new();
    out.push_str(&format!("{:<14}", x_label));
    for s in series {
        out.push_str(&format!("{:>16}", s.label));
    }
    out.push('\n');
    out.push_str(&"-".repeat(14 + 16 * series.len()));
    out.push('\n');
    for x in xs {
        out.push_str(&format!("{:<14}", human(x)));
        for s in series {
            match s.y_at(x) {
                Some(y) => out.push_str(&format!("{:>16}", human(y))),
                None => out.push_str(&format!("{:>16}", "-")),
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_formatting() {
        assert_eq!(human(12_300_000.0), "12.30M");
        assert_eq!(human(4_560.0), "4.6K");
        assert_eq!(human(7.891), "7.89");
        assert_eq!(human(0.125), "0.1250");
        assert_eq!(human(2.5e9), "2.50G");
    }

    #[test]
    fn table_rendering_aligns_series() {
        let mut a = Series::new("ES(1)");
        let mut b = Series::new("OVS(1)");
        for x in [1.0, 10.0, 100.0] {
            a.push(x, 14.0e6);
            b.push(x, x * 1e5);
        }
        b.push(1000.0, 5.0);
        let table = render_series_table("active flows", &[a.clone(), b]);
        assert!(table.contains("ES(1)"));
        assert!(table.contains("OVS(1)"));
        assert!(table.contains("14.00M"));
        // The x=1000 row exists and the missing ES value renders as '-'.
        assert!(table
            .lines()
            .any(|l| l.starts_with("1.0K") && l.contains('-')));
        assert_eq!(a.y_at(10.0), Some(14.0e6));
        assert_eq!(a.y_at(99.0), None);
    }
}
