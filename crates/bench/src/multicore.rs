//! Multi-core throughput measurement (Fig. 19).
//!
//! The paper runs the L3 use case on 1–5 packet-processing cores and shows
//! that both switches scale linearly, with ESWITCH ~5× ahead. As in a DPDK
//! deployment (and as OVS does with its per-PMD-thread caches), each worker
//! core here runs its own datapath instance over its own RSS slice of the
//! traffic; aggregate throughput is the total packets processed over the
//! common measurement window.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use workloads::FlowSet;

use crate::datapath::AnySwitch;

/// Measures aggregate packets/second over `cores` worker threads for roughly
/// `duration_ms` milliseconds. `make_switch` builds one datapath instance per
/// core (mirroring per-PMD-thread state); each instance is warmed with
/// `warmup` packets before the timed window starts.
pub fn measure_multicore_throughput<F>(
    make_switch: F,
    traffic: &FlowSet,
    cores: usize,
    warmup: usize,
    duration_ms: u64,
) -> f64
where
    F: Fn() -> AnySwitch + Sync,
{
    let cores = cores.max(1);
    let stop = Arc::new(AtomicBool::new(false));
    let ready = Arc::new(Barrier::new(cores + 1));
    let totals = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..cores)
            .map(|core| {
                let stop = Arc::clone(&stop);
                let ready = Arc::clone(&ready);
                let make_switch = &make_switch;
                let traffic = traffic.clone();
                scope.spawn(move || {
                    let switch = make_switch();
                    let mut i = core * 7919; // decorrelate per-core replay phases
                    for _ in 0..warmup {
                        let mut packet = traffic.packet(i);
                        std::hint::black_box(switch.process(&mut packet));
                        i += 1;
                    }
                    ready.wait();
                    let mut processed = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        for _ in 0..64 {
                            let mut packet = traffic.packet(i);
                            std::hint::black_box(switch.process(&mut packet));
                            i += 1;
                            processed += 1;
                        }
                    }
                    processed
                })
            })
            .collect();

        ready.wait();
        let start = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(duration_ms));
        stop.store(true, Ordering::Relaxed);
        let total: u64 = workers
            .into_iter()
            .map(|w| w.join().expect("worker panicked"))
            .sum();
        total as f64 / start.elapsed().as_secs_f64()
    });
    totals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datapath::SwitchKind;
    use workloads::l3::{self, L3Config};

    #[test]
    fn more_cores_do_not_reduce_throughput() {
        let config = L3Config {
            prefixes: 64,
            next_hops: 4,
            seed: 2,
        };
        let traffic = l3::build_traffic(&config, 256);
        let make = || AnySwitch::build(SwitchKind::Eswitch, l3::build_pipeline(&config));
        let one = measure_multicore_throughput(make, &traffic, 1, 200, 60);
        let four = measure_multicore_throughput(make, &traffic, 4, 200, 60);
        assert!(one > 0.0);
        assert!(four > 0.0);
        // The scaling assertion needs actual hardware parallelism; on a
        // single-CPU host four workers time-slice one core and can at best
        // tie. Still require that parallelism does not *collapse* throughput
        // (which would indicate serialisation on a contended global lock).
        let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cpus >= 4 {
            // Allow generous noise margins; the point is that parallelism
            // works and does not serialise on a global lock.
            assert!(
                four > one * 1.2,
                "4-core rate {four} not above 1-core rate {one}"
            );
        } else {
            assert!(
                four > one * 0.5,
                "4-core rate {four} collapsed vs 1-core rate {one}"
            );
        }
    }
}
