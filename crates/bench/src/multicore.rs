//! Multi-core throughput measurement (Fig. 19).
//!
//! The paper runs the L3 use case on 1–5 packet-processing cores and shows
//! that both switches scale linearly, with ESWITCH ~5× ahead. Two models are
//! measured here:
//!
//! * [`measure_sharded_throughput`] — the real deployment shape: the `shard`
//!   runtime's RSS dispatcher feeds per-worker rings, every worker drains
//!   32-packet bursts through its own datapath replica (per-shard caches,
//!   like OVS PMD threads), and a live control plane can apply flow-mods
//!   mid-run. Fig. 19 and the committed `BENCH_multicore.json` run this.
//! * [`measure_multicore_throughput`] — the idealised upper bound: N fully
//!   independent switch replicas with no dispatcher and no rings, each
//!   replaying its own slice of the flow set. The gap between the two is the
//!   cost of actually moving packets between cores.
//!
//! Both models process packets through the burst-mode batch API (one
//! datapath-snapshot resolution and a bounded number of cache-lock
//! acquisitions per 32-packet burst), and both decorrelate workers by
//! offsetting each worker's replay phase by an equal fraction of the flow-set
//! cycle — `core * len / cores` cannot alias the way a fixed stride (e.g.
//! `core * 7919`) can when the stride and the flow-set length share factors.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use netdev::BURST_SIZE;
use openflow::{Pipeline, Verdict};
use pkt::Packet;
use shard::{BackendSpec, ShardedConfig, ShardedSwitch};
use workloads::FlowSet;

use crate::datapath::AnySwitch;

/// Per-shard ring capacity [`measure_sharded_throughput`] launches with;
/// public so the `multicore` bin records the operating point it measured.
pub const SHARD_RING_CAPACITY: usize = 1024;

/// Builds one worker's replay ring: a whole-burst multiple of packets
/// starting at the worker's phase offset into the flow-set cycle.
fn worker_ring(traffic: &FlowSet, core: usize, cores: usize) -> Vec<Packet> {
    let len = traffic.active_flows();
    let offset = core * len / cores;
    let n = len.max(BURST_SIZE).div_ceil(BURST_SIZE) * BURST_SIZE;
    (0..n).map(|i| traffic.packet(offset + i)).collect()
}

/// Measures aggregate packets/second over `cores` *independent* switch
/// replicas for roughly `duration_ms` milliseconds — the upper-bound model
/// with no packet movement between cores. `make_switch` builds one datapath
/// instance per core (mirroring per-PMD-thread state); each instance is
/// warmed with `warmup` packets before the timed window starts.
pub fn measure_multicore_throughput<F>(
    make_switch: F,
    traffic: &FlowSet,
    cores: usize,
    warmup: usize,
    duration_ms: u64,
) -> f64
where
    F: Fn() -> AnySwitch + Sync,
{
    let cores = cores.max(1);
    let stop = Arc::new(AtomicBool::new(false));
    let ready = Arc::new(Barrier::new(cores + 1));
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..cores)
            .map(|core| {
                let stop = Arc::clone(&stop);
                let ready = Arc::clone(&ready);
                let make_switch = &make_switch;
                let traffic = traffic.clone();
                scope.spawn(move || {
                    let switch = make_switch();
                    let mut ring = worker_ring(&traffic, core, cores);
                    let mut verdicts: Vec<Verdict> = Vec::with_capacity(BURST_SIZE);
                    let mut warmed = 0usize;
                    while warmed < warmup {
                        for chunk in ring.chunks_mut(BURST_SIZE) {
                            switch.process_batch_into(chunk, &mut verdicts);
                            std::hint::black_box(verdicts.len());
                        }
                        warmed += ring.len();
                    }
                    ready.wait();
                    let mut processed = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        for chunk in ring.chunks_mut(BURST_SIZE) {
                            switch.process_batch_into(chunk, &mut verdicts);
                            std::hint::black_box(verdicts.len());
                        }
                        processed += ring.len() as u64;
                    }
                    processed
                })
            })
            .collect();

        ready.wait();
        let start = Instant::now();
        std::thread::sleep(Duration::from_millis(duration_ms));
        stop.store(true, Ordering::Relaxed);
        let total: u64 = workers
            .into_iter()
            .map(|w| w.join().expect("worker panicked"))
            .sum();
        total as f64 / start.elapsed().as_secs_f64()
    })
}

/// Measures aggregate packets/second of the sharded runtime: an RSS
/// dispatcher on the calling thread feeds `workers` shard threads over SPSC
/// rings; each shard drains 32-packet bursts through its own replica of
/// `pipeline` under `spec`. The flow set's shard assignment is precomputed
/// once (hardware RSS computes the hash off the host CPU), warm-up runs
/// until the shards have processed `warmup` packets, and the timed window
/// counts packets actually processed (not merely enqueued) over its span.
pub fn measure_sharded_throughput(
    spec: BackendSpec,
    pipeline: Pipeline,
    traffic: &FlowSet,
    workers: usize,
    warmup: usize,
    duration_ms: u64,
) -> f64 {
    let (switch, mut dispatcher) = ShardedSwitch::launch(
        spec,
        pipeline,
        ShardedConfig {
            workers,
            ring_capacity: SHARD_RING_CAPACITY,
            ..ShardedConfig::default()
        },
    )
    .expect("pipeline compiles");

    // Precompute each replay slot's shard and keep the prototypes: the timed
    // loop pays one packet clone per dispatch (the ring consumes packets)
    // but no parsing or hashing, mirroring NIC-resident RSS.
    let len = traffic.active_flows();
    let n = len.max(BURST_SIZE).div_ceil(BURST_SIZE) * BURST_SIZE;
    let ring: Vec<(usize, Packet)> = (0..n)
        .map(|i| {
            let packet = traffic.packet(i);
            (dispatcher.shard_for(&packet), packet)
        })
        .collect();

    let feed_pass = |dispatcher: &mut shard::RssDispatcher| {
        for (shard, proto) in &ring {
            dispatcher.dispatch_to(*shard, proto.clone());
        }
    };

    // Warm-up: per-shard caches fill; wait until the shards have actually
    // processed the packets, not just received them.
    let mut warmed = 0usize;
    while warmed < warmup {
        feed_pass(&mut dispatcher);
        warmed += ring.len();
    }
    dispatcher.flush();
    while switch.stats().packets < warmed as u64 {
        std::thread::yield_now();
    }

    let base = switch.stats().packets;
    let window = Duration::from_millis(duration_ms);
    let start = Instant::now();
    loop {
        feed_pass(&mut dispatcher);
        if start.elapsed() >= window {
            break;
        }
    }
    let processed = switch.stats().packets - base;
    let elapsed = start.elapsed();
    switch.shutdown(dispatcher);
    processed as f64 / elapsed.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datapath::SwitchKind;
    use crate::fastpath;
    use workloads::l3::{self, L3Config};

    #[test]
    fn more_cores_do_not_reduce_throughput() {
        let config = L3Config {
            prefixes: 64,
            next_hops: 4,
            seed: 2,
        };
        let traffic = l3::build_traffic(&config, 256);
        let make = || AnySwitch::build(SwitchKind::Eswitch, l3::build_pipeline(&config));
        let one = measure_multicore_throughput(make, &traffic, 1, 200, 60);
        let four = measure_multicore_throughput(make, &traffic, 4, 200, 60);
        assert!(one > 0.0);
        assert!(four > 0.0);
        // The scaling assertion needs actual hardware parallelism; on a
        // single-CPU host four workers time-slice one core and can at best
        // tie. Still require that parallelism does not *collapse* throughput
        // (which would indicate serialisation on a contended global lock).
        let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cpus >= 4 {
            // Allow generous noise margins; the point is that parallelism
            // works and does not serialise on a global lock.
            assert!(
                four > one * 1.2,
                "4-core rate {four} not above 1-core rate {one}"
            );
        } else {
            assert!(
                four > one * 0.5,
                "4-core rate {four} collapsed vs 1-core rate {one}"
            );
        }
    }

    #[test]
    fn worker_rings_cover_distinct_phases() {
        // 100 flows: deliberately not a burst multiple, so the ring pads to
        // 128 by continuing each worker's own replay phase past one cycle.
        let traffic = fastpath::port_traffic(100);
        let len = traffic.active_flows();
        let a = worker_ring(&traffic, 0, 4);
        let b = worker_ring(&traffic, 1, 4);
        assert_eq!(a.len() % BURST_SIZE, 0);
        assert_eq!(a.len(), b.len());
        // Phase offsets of len/cores keep workers out of step: the first
        // packets must differ (the flow set has 100 distinct flows).
        assert_ne!(a[0], b[0]);
        // The offset derives from the flow-set length, so each worker's
        // first full cycle still covers the whole set (same multiset); the
        // padding beyond one cycle continues from the worker's own phase
        // and may over-replay different flows per worker, which only adds
        // decorrelation.
        let key = |p: &Packet| p.data().to_vec();
        let mut sa: Vec<_> = a[..len].iter().map(key).collect();
        let mut sb: Vec<_> = b[..len].iter().map(key).collect();
        sa.sort();
        sb.sort();
        assert_eq!(sa, sb);
    }

    /// The PR-3 acceptance gate: on real hardware parallelism two shards
    /// must beat one by ≥ 1.5× on the EMC-hit workload; on a single-CPU host
    /// the same run must stay correct and not collapse.
    #[test]
    fn sharded_two_workers_scale_on_emc_hit_workload() {
        let traffic = fastpath::port_traffic(1_024);
        let one = measure_sharded_throughput(
            BackendSpec::ovs(),
            fastpath::port_pipeline(),
            &traffic,
            1,
            4_096,
            120,
        );
        let two = measure_sharded_throughput(
            BackendSpec::ovs(),
            fastpath::port_pipeline(),
            &traffic,
            2,
            4_096,
            120,
        );
        assert!(one > 0.0);
        assert!(two > 0.0);
        // The 2-worker configuration keeps three threads busy (dispatcher +
        // two shards). With a core for each, demand the full 1.5x bar; on
        // exactly two cores the three threads time-slice, so demand a lower
        // but still regression-catching bar (a shared lock serialising the
        // shards would pin the ratio at or below 1.0); on one core only
        // require that sharding does not collapse throughput.
        let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cpus >= 3 {
            assert!(
                two >= one * 1.5,
                "2 workers at {two:.0} pps < 1.5x the 1-worker {one:.0} pps"
            );
        } else if cpus == 2 {
            assert!(
                two >= one * 1.15,
                "2 workers at {two:.0} pps show no scaling over 1 worker at {one:.0} pps"
            );
        } else {
            assert!(
                two > one * 0.5,
                "2 workers at {two:.0} pps collapsed vs 1 worker at {one:.0} pps"
            );
        }
    }
}
