//! Multi-core throughput measurement (Fig. 19).
//!
//! The paper runs the L3 use case on 1–5 packet-processing cores and shows
//! that both switches scale linearly, with ESWITCH ~5× ahead. Two models are
//! measured here:
//!
//! * [`measure_sharded_throughput`] — the real deployment shape: the `shard`
//!   runtime's RSS dispatcher feeds per-worker rings, every worker drains
//!   32-packet bursts through its own datapath replica (per-shard caches,
//!   like OVS PMD threads), and a live control plane can apply flow-mods
//!   mid-run. Fig. 19 and the committed `BENCH_multicore.json` run this.
//! * [`measure_multicore_throughput`] — the idealised upper bound: N fully
//!   independent switch replicas with no dispatcher and no rings, each
//!   replaying its own slice of the flow set. The gap between the two is the
//!   cost of actually moving packets between cores.
//!
//! Both models process packets through the burst-mode batch API (one
//! datapath-snapshot resolution and a bounded number of cache-lock
//! acquisitions per 32-packet burst), and both decorrelate workers by
//! offsetting each worker's replay phase by an equal fraction of the flow-set
//! cycle — `core * len / cores` cannot alias the way a fixed stride (e.g.
//! `core * 7919`) can when the stride and the flow-set length share factors.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use netdev::BURST_SIZE;
use openflow::{Pipeline, Verdict};
use pkt::builder::PacketBuilder;
use pkt::Packet;
use shard::{
    rss_hash, rss_hash_symmetric, BackendSpec, RebalanceConfig, RssDispatcher, ShardedConfig,
    ShardedSwitch,
};
use workloads::FlowSet;

use crate::datapath::AnySwitch;

/// Per-shard ring capacity [`measure_sharded_throughput`] launches with;
/// public so the `multicore` bin records the operating point it measured.
pub const SHARD_RING_CAPACITY: usize = 1024;

/// Builds one worker's replay ring: a whole-burst multiple of packets
/// starting at the worker's phase offset into the flow-set cycle.
fn worker_ring(traffic: &FlowSet, core: usize, cores: usize) -> Vec<Packet> {
    let len = traffic.active_flows();
    let offset = core * len / cores;
    let n = len.max(BURST_SIZE).div_ceil(BURST_SIZE) * BURST_SIZE;
    (0..n).map(|i| traffic.packet(offset + i)).collect()
}

/// Measures aggregate packets/second over `cores` *independent* switch
/// replicas for roughly `duration_ms` milliseconds — the upper-bound model
/// with no packet movement between cores. `make_switch` builds one datapath
/// instance per core (mirroring per-PMD-thread state); each instance is
/// warmed with `warmup` packets before the timed window starts.
pub fn measure_multicore_throughput<F>(
    make_switch: F,
    traffic: &FlowSet,
    cores: usize,
    warmup: usize,
    duration_ms: u64,
) -> f64
where
    F: Fn() -> AnySwitch + Sync,
{
    let cores = cores.max(1);
    let stop = Arc::new(AtomicBool::new(false));
    let ready = Arc::new(Barrier::new(cores + 1));
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..cores)
            .map(|core| {
                let stop = Arc::clone(&stop);
                let ready = Arc::clone(&ready);
                let make_switch = &make_switch;
                let traffic = traffic.clone();
                scope.spawn(move || {
                    let switch = make_switch();
                    let mut ring = worker_ring(&traffic, core, cores);
                    let mut verdicts: Vec<Verdict> = Vec::with_capacity(BURST_SIZE);
                    let mut warmed = 0usize;
                    while warmed < warmup {
                        for chunk in ring.chunks_mut(BURST_SIZE) {
                            switch.process_batch_into(chunk, &mut verdicts);
                            std::hint::black_box(verdicts.len());
                        }
                        warmed += ring.len();
                    }
                    ready.wait();
                    let mut processed = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        for chunk in ring.chunks_mut(BURST_SIZE) {
                            switch.process_batch_into(chunk, &mut verdicts);
                            std::hint::black_box(verdicts.len());
                        }
                        processed += ring.len() as u64;
                    }
                    processed
                })
            })
            .collect();

        ready.wait();
        let start = Instant::now();
        std::thread::sleep(Duration::from_millis(duration_ms));
        stop.store(true, Ordering::Relaxed);
        let total: u64 = workers
            .into_iter()
            .map(|w| w.join().expect("worker panicked"))
            .sum();
        total as f64 / start.elapsed().as_secs_f64()
    })
}

/// Measures aggregate packets/second of the sharded runtime: an RSS
/// dispatcher on the calling thread feeds `workers` shard threads over SPSC
/// rings; each shard drains 32-packet bursts through its own replica of
/// `pipeline` under `spec`. The flow set's shard assignment is precomputed
/// once (hardware RSS computes the hash off the host CPU), warm-up runs
/// until the shards have processed `warmup` packets, and the timed window
/// counts packets actually processed (not merely enqueued) over its span.
pub fn measure_sharded_throughput(
    spec: BackendSpec,
    pipeline: Pipeline,
    traffic: &FlowSet,
    workers: usize,
    warmup: usize,
    duration_ms: u64,
) -> f64 {
    let (switch, mut dispatcher) = ShardedSwitch::launch(
        spec,
        pipeline,
        ShardedConfig {
            workers,
            ring_capacity: SHARD_RING_CAPACITY,
            ..ShardedConfig::default()
        },
    )
    .expect("pipeline compiles");

    // Precompute each replay slot's shard and keep the prototypes: the timed
    // loop pays one packet clone per dispatch (the ring consumes packets)
    // but no parsing or hashing, mirroring NIC-resident RSS.
    let len = traffic.active_flows();
    let n = len.max(BURST_SIZE).div_ceil(BURST_SIZE) * BURST_SIZE;
    let ring: Vec<(usize, Packet)> = (0..n)
        .map(|i| {
            let packet = traffic.packet(i);
            (dispatcher.shard_for(&packet), packet)
        })
        .collect();

    let feed_pass = |dispatcher: &mut shard::RssDispatcher| {
        for (shard, proto) in &ring {
            dispatcher.dispatch_to(*shard, proto.clone());
        }
    };

    // Warm-up: per-shard caches fill; wait until the shards have actually
    // processed the packets, not just received them.
    let mut warmed = 0usize;
    while warmed < warmup {
        feed_pass(&mut dispatcher);
        warmed += ring.len();
    }
    dispatcher.flush();
    while switch.stats().packets < warmed as u64 {
        std::thread::yield_now();
    }

    let base = switch.stats().packets;
    let window = Duration::from_millis(duration_ms);
    let start = Instant::now();
    loop {
        feed_pass(&mut dispatcher);
        if start.elapsed() >= window {
            break;
        }
    }
    let processed = switch.stats().packets - base;
    let elapsed = start.elapsed();
    switch.shutdown(dispatcher);
    processed as f64 / elapsed.as_secs_f64()
}

/// How the elastic-scheduling (skew) harness offers load.
#[derive(Debug, Clone, Copy)]
pub struct SkewConfig {
    /// Worker shards.
    pub workers: usize,
    /// Distinct flows in the set.
    pub flows: usize,
    /// Zipf exponent: per-packet flow rank `k` is drawn with probability
    /// ∝ `k^-s`. At `s ≈ 1.3` the top flow carries ~25–30% of all packets —
    /// the elephant-flow regime.
    pub zipf_s: f64,
    /// The top-`elephants` ranks are *pinned to shard 0* under the uniform
    /// launch table (their flow tuples are chosen so their buckets start on
    /// shard 0): the adversarial placement where static hashing concentrates
    /// the elephants on one shard and only a remap can spread them.
    pub elephants: usize,
    /// Packets processed before the timed window opens.
    pub warmup_packets: usize,
    /// Timed window length.
    pub duration_ms: u64,
    /// `None` = static indirection table (the baseline that cannot adapt);
    /// `Some` = the elastic rebalancer.
    pub rebalance: Option<RebalanceConfig>,
    /// Replace the Zipf draw with a uniform round-robin over the same flow
    /// set — the no-skew upper-bound reference the rebalanced run is judged
    /// against.
    pub uniform: bool,
}

impl SkewConfig {
    /// The skew benchmark's rebalancer profile. The imbalance cutoff must
    /// sit *below* the acceptance bar: with 2 shards the rebalancer stops
    /// acting once `max/avg < ratio`, i.e. at a max busy share of
    /// `ratio / workers` — 1.15 bounds the converged share at 0.575, keeping
    /// the modeled aggregate comfortably within 20% of uniform.
    pub fn rebalance_profile() -> RebalanceConfig {
        RebalanceConfig {
            check_packets: 8 * 1024,
            imbalance_ratio: 1.15,
            sustain: 2,
            max_moves: 8,
        }
    }
}

/// What one skew run measured.
#[derive(Debug, Clone)]
pub struct SkewResult {
    /// Aggregate wall-clock packets/second over the timed window. Only
    /// meaningful with real hardware parallelism; on an undersubscribed
    /// host the shards time-slice and wall pps flattens regardless of
    /// balance.
    pub pps_wall: f64,
    /// The *modeled* aggregate rate: packets processed over the window
    /// divided by the **busiest shard's** busy time. This is what the
    /// aggregate would sustain with a core per shard (every other shard
    /// finishes its share inside the bottleneck's window) — the
    /// load-balance signal that stays valid on a 1-CPU container.
    pub pps_model: f64,
    /// The busiest shard's fraction of total busy time (1/workers = ideal).
    pub max_busy_share: f64,
    /// Bucket remaps the dispatcher executed.
    pub remaps: u64,
    /// Per-shard busy milliseconds over the timed window.
    pub per_shard_busy_ms: Vec<f64>,
}

/// Deterministic xorshift64 — the harness's only randomness source (seeded,
/// reproducible, no external dependency).
struct XorShift64(u64);

impl XorShift64 {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// A presampled Zipf(`s`) rank sequence over `flows` ranks.
fn zipf_sequence(flows: usize, s: f64, len: usize, seed: u64) -> Vec<u32> {
    let mut cdf = Vec::with_capacity(flows);
    let mut total = 0.0f64;
    for k in 1..=flows {
        total += (k as f64).powf(-s);
        cdf.push(total);
    }
    let mut rng = XorShift64(seed | 1);
    (0..len)
        .map(|_| {
            let u = (rng.next() >> 11) as f64 / (1u64 << 53) as f64 * total;
            cdf.partition_point(|c| *c < u).min(flows - 1) as u32
        })
        .collect()
}

/// Builds the flow prototypes, RSS hash precomputed per flow (the
/// NIC-descriptor split: the timed loop pays one clone per dispatch, no
/// parsing or hashing). The first `elephants` ranks are chosen so their
/// buckets start on shard 0 under the launch table.
fn skew_prototypes(
    dispatcher: &RssDispatcher,
    flows: usize,
    elephants: usize,
) -> Vec<(u64, Packet)> {
    let mut protos = Vec::with_capacity(flows);
    let mut src: u16 = 1;
    while protos.len() < flows {
        let packet = PacketBuilder::tcp()
            .ipv4_src([10, 0, 0, 1])
            .ipv4_dst([10, 0, 0, 2])
            .tcp_src(src)
            .tcp_dst(80)
            .build();
        src = src.checked_add(1).expect("flow-tuple space exhausted");
        if protos.len() < elephants && dispatcher.shard_for(&packet) != 0 {
            continue;
        }
        let hash = if dispatcher.is_symmetric() {
            rss_hash_symmetric(&packet)
        } else {
            rss_hash(&packet)
        };
        protos.push((hash, packet));
    }
    protos
}

/// Runs the elephant-flow skew workload through the sharded runtime and
/// reports both wall and modeled aggregate rates plus the busy-time balance
/// (see [`SkewResult`]). The measurement protocol: warm up (caches fill,
/// telemetry baseline taken after the warm-up fully drains), then dispatch
/// the presampled sequence for `duration_ms`, flush, wait until every
/// dispatched packet is processed, and read the exact per-shard busy deltas
/// from the shutdown report (worker recorders flush their tails on exit).
/// The telemetry baseline can lag the warm-up's last few bursts by one
/// recorder flush window (64 bursts) — noise well under a percent of any
/// realistic timed window.
pub fn measure_skewed_throughput(
    spec: BackendSpec,
    pipeline: Pipeline,
    config: &SkewConfig,
) -> SkewResult {
    let (switch, mut dispatcher) = ShardedSwitch::launch(
        spec,
        pipeline,
        ShardedConfig {
            workers: config.workers,
            ring_capacity: SHARD_RING_CAPACITY,
            rebalance: config.rebalance,
            ..ShardedConfig::default()
        },
    )
    .expect("pipeline compiles");

    let protos = skew_prototypes(&dispatcher, config.flows, config.elephants);
    let seq: Vec<u32> = if config.uniform {
        (0..8192u32).map(|i| i % config.flows as u32).collect()
    } else {
        zipf_sequence(config.flows, config.zipf_s, 8192, 0x5eed_cafe)
    };

    let mut sent = 0u64;
    while sent < config.warmup_packets as u64 {
        for &f in &seq {
            let (hash, proto) = &protos[f as usize];
            dispatcher.dispatch_hashed(*hash, proto.clone());
        }
        sent += seq.len() as u64;
    }
    dispatcher.flush();
    while switch.stats().packets < sent {
        std::thread::yield_now();
    }

    let busy_base: Vec<u64> = switch
        .load_snapshots()
        .iter()
        .map(|s| s.busy_nanos)
        .collect();
    let base = switch.stats().packets;
    let window = Duration::from_millis(config.duration_ms);
    let start = Instant::now();
    loop {
        for &f in &seq {
            let (hash, proto) = &protos[f as usize];
            dispatcher.dispatch_hashed(*hash, proto.clone());
        }
        if start.elapsed() >= window {
            break;
        }
    }
    dispatcher.flush();
    let dispatched = dispatcher.dispatched();
    while switch.stats().packets < dispatched {
        std::thread::yield_now();
    }
    let wall = start.elapsed();
    let processed = switch.stats().packets - base;
    let report = switch.shutdown(dispatcher);

    let busy: Vec<u64> = report
        .load_per_shard
        .iter()
        .zip(&busy_base)
        .map(|(snap, base)| snap.busy_nanos.saturating_sub(*base))
        .collect();
    let total_busy: u64 = busy.iter().sum();
    let max_busy = busy.iter().copied().max().unwrap_or(0);
    SkewResult {
        pps_wall: processed as f64 / wall.as_secs_f64(),
        pps_model: if max_busy == 0 {
            0.0
        } else {
            processed as f64 / (max_busy as f64 / 1e9)
        },
        max_busy_share: if total_busy == 0 {
            0.0
        } else {
            max_busy as f64 / total_busy as f64
        },
        remaps: report.remaps,
        per_shard_busy_ms: busy.iter().map(|n| *n as f64 / 1e6).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datapath::SwitchKind;
    use crate::fastpath;
    use workloads::l3::{self, L3Config};

    #[test]
    fn more_cores_do_not_reduce_throughput() {
        let config = L3Config {
            prefixes: 64,
            next_hops: 4,
            seed: 2,
        };
        let traffic = l3::build_traffic(&config, 256);
        let make = || AnySwitch::build(SwitchKind::Eswitch, l3::build_pipeline(&config));
        let one = measure_multicore_throughput(make, &traffic, 1, 200, 60);
        let four = measure_multicore_throughput(make, &traffic, 4, 200, 60);
        assert!(one > 0.0);
        assert!(four > 0.0);
        // The scaling assertion needs actual hardware parallelism; on a
        // single-CPU host four workers time-slice one core and can at best
        // tie. Still require that parallelism does not *collapse* throughput
        // (which would indicate serialisation on a contended global lock).
        let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cpus >= 4 {
            // Allow generous noise margins; the point is that parallelism
            // works and does not serialise on a global lock.
            assert!(
                four > one * 1.2,
                "4-core rate {four} not above 1-core rate {one}"
            );
        } else {
            assert!(
                four > one * 0.5,
                "4-core rate {four} collapsed vs 1-core rate {one}"
            );
        }
    }

    #[test]
    fn worker_rings_cover_distinct_phases() {
        // 100 flows: deliberately not a burst multiple, so the ring pads to
        // 128 by continuing each worker's own replay phase past one cycle.
        let traffic = fastpath::port_traffic(100);
        let len = traffic.active_flows();
        let a = worker_ring(&traffic, 0, 4);
        let b = worker_ring(&traffic, 1, 4);
        assert_eq!(a.len() % BURST_SIZE, 0);
        assert_eq!(a.len(), b.len());
        // Phase offsets of len/cores keep workers out of step: the first
        // packets must differ (the flow set has 100 distinct flows).
        assert_ne!(a[0], b[0]);
        // The offset derives from the flow-set length, so each worker's
        // first full cycle still covers the whole set (same multiset); the
        // padding beyond one cycle continues from the worker's own phase
        // and may over-replay different flows per worker, which only adds
        // decorrelation.
        let key = |p: &Packet| p.data().to_vec();
        let mut sa: Vec<_> = a[..len].iter().map(key).collect();
        let mut sb: Vec<_> = b[..len].iter().map(key).collect();
        sa.sort();
        sb.sort();
        assert_eq!(sa, sb);
    }

    /// The elastic-scheduling acceptance gate. An adversarial Zipf workload
    /// (elephant buckets pinned to shard 0 at launch) is offered three ways:
    /// static table, elastic rebalancer, and a uniform no-skew reference.
    /// The criterion is asserted on busy *shares* rather than on the two
    /// runs' absolute `pps_model` values: the modeled rate relative to a
    /// perfectly balanced run is `(1 / workers) / max_busy_share` (both have
    /// the same per-packet cost; only the bottleneck's share of the busy
    /// time differs), so "within 20% of uniform" is exactly
    /// `max_busy_share < 0.625` at two workers — and a share is an
    /// intra-run ratio, immune to the preemption noise that pollutes
    /// wall-clock busy time when the whole test suite shares one CPU. The
    /// committed BENCH_multicore.json reports the measured `pps_model`
    /// ratios from a quiet release run.
    #[test]
    fn rebalancer_recovers_skewed_throughput() {
        let skew = SkewConfig {
            workers: 2,
            flows: 256,
            zipf_s: 1.3,
            elephants: 8,
            warmup_packets: 16_384,
            duration_ms: 250,
            rebalance: None,
            uniform: false,
        };
        let run = |rebalance, uniform| {
            measure_skewed_throughput(
                BackendSpec::ovs(),
                fastpath::port_pipeline(),
                &SkewConfig {
                    rebalance,
                    uniform,
                    ..skew
                },
            )
        };
        let uniform = run(None, true);
        let stat = run(None, false);
        let elastic = run(Some(SkewConfig::rebalance_profile()), false);

        assert_eq!(stat.remaps, 0, "static run must not remap");
        assert!(
            elastic.remaps > 0,
            "rebalancer never acted on a sustained elephant skew"
        );
        // The no-skew reference spreads; the pinned elephants concentrate.
        assert!(
            uniform.max_busy_share < stat.max_busy_share,
            "uniform reference as concentrated as the skewed run: {:.2} vs {:.2}",
            uniform.max_busy_share,
            stat.max_busy_share
        );
        assert!(
            elastic.max_busy_share < stat.max_busy_share,
            "rebalancing did not reduce the busy concentration: {:.2} -> {:.2}",
            stat.max_busy_share,
            elastic.max_busy_share
        );
        // The headline criterion in share form (see the doc comment): at two
        // workers the modeled rate is within 20% of a balanced run exactly
        // when the bottleneck's busy share is below 0.5 / 0.8 = 0.625.
        assert!(
            stat.max_busy_share > 0.625,
            "static table unexpectedly held the balanced rate: share {:.2}",
            stat.max_busy_share
        );
        assert!(
            elastic.max_busy_share < 0.625,
            "rebalancer did not recover to within 20% of balanced: share {:.2}",
            elastic.max_busy_share
        );
    }

    #[test]
    fn zipf_sequence_is_deterministic_and_skewed() {
        let a = zipf_sequence(256, 1.3, 8192, 42);
        let b = zipf_sequence(256, 1.3, 8192, 42);
        assert_eq!(a, b, "same seed must reproduce the sequence");
        let top = a.iter().filter(|r| **r == 0).count() as f64 / a.len() as f64;
        assert!(
            (0.2..0.4).contains(&top),
            "rank-0 mass {top:.2} out of the Zipf(1.3) envelope"
        );
        assert!(a.iter().all(|r| (*r as usize) < 256));
    }

    /// The PR-3 acceptance gate: on real hardware parallelism two shards
    /// must beat one by ≥ 1.5× on the EMC-hit workload; on a single-CPU host
    /// the same run must stay correct and not collapse.
    #[test]
    fn sharded_two_workers_scale_on_emc_hit_workload() {
        let traffic = fastpath::port_traffic(1_024);
        let one = measure_sharded_throughput(
            BackendSpec::ovs(),
            fastpath::port_pipeline(),
            &traffic,
            1,
            4_096,
            120,
        );
        let two = measure_sharded_throughput(
            BackendSpec::ovs(),
            fastpath::port_pipeline(),
            &traffic,
            2,
            4_096,
            120,
        );
        assert!(one > 0.0);
        assert!(two > 0.0);
        // The 2-worker configuration keeps three threads busy (dispatcher +
        // two shards). With a core for each, demand the full 1.5x bar; on
        // exactly two cores the three threads time-slice, so demand a lower
        // but still regression-catching bar (a shared lock serialising the
        // shards would pin the ratio at or below 1.0); on one core only
        // require that sharding does not collapse throughput.
        let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        if cpus >= 3 {
            assert!(
                two >= one * 1.5,
                "2 workers at {two:.0} pps < 1.5x the 1-worker {one:.0} pps"
            );
        } else if cpus == 2 {
            assert!(
                two >= one * 1.15,
                "2 workers at {two:.0} pps show no scaling over 1 worker at {one:.0} pps"
            );
        } else {
            assert!(
                two > one * 0.5,
                "2 workers at {two:.0} pps collapsed vs 1 worker at {one:.0} pps"
            );
        }
    }
}
