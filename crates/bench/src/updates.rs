//! Update-cost measurement for the *sharded* runtime (Fig. 18's question —
//! what does rule churn cost a running switch? — asked of the production
//! deployment shape instead of the single-threaded runtime).
//!
//! [`measure_update_load`] drives one sharded switch through two timed
//! windows over the same RSS-precomputed traffic feed:
//!
//! 1. **quiescent** — no flow-mods; the baseline packet rate;
//! 2. **loaded** — a control-plane thread applies flow-mods back-to-back as
//!    fast as the switch absorbs them, while traffic keeps flowing.
//!
//! Reported per run: sustained updates/sec, packet rate retained under load,
//! and the §3.4 update-class histogram of the published epochs. The
//! `updates` binary sweeps this over workloads × backends × update
//! strategies ([`UpdateStrategy::Planned`] vs the pre-planner
//! [`UpdateStrategy::FullRecompile`] baseline) into `BENCH_updates.json`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use netdev::BURST_SIZE;
use openflow::{FlowMod, Pipeline};
use pkt::Packet;
use shard::{BackendSpec, ShardedConfig, ShardedSwitch, UpdateClassCounts, UpdateStrategy};
use workloads::FlowSet;

/// Per-shard ring capacity used by the update-load harness (matches the
/// multicore harness's operating point).
pub const RING_CAPACITY: usize = 1024;

/// One measured operating point of [`measure_update_load`].
#[derive(Debug, Clone, Copy)]
pub struct UpdateLoadPoint {
    /// Packets/sec with the control plane idle.
    pub quiescent_pps: f64,
    /// Packets/sec while flow-mods are applied back-to-back.
    pub loaded_pps: f64,
    /// Flow-mods absorbed per second during the loaded window.
    pub updates_per_sec: f64,
    /// §3.4 classes of the epochs published during the loaded window.
    pub classes: UpdateClassCounts,
}

impl UpdateLoadPoint {
    /// Fraction of the quiescent packet rate retained under update load.
    pub fn retained(&self) -> f64 {
        if self.quiescent_pps <= 0.0 {
            0.0
        } else {
            self.loaded_pps / self.quiescent_pps
        }
    }
}

/// Operating point of one [`measure_update_load`] run.
#[derive(Debug, Clone, Copy)]
pub struct UpdateLoadConfig {
    /// Worker shards.
    pub workers: usize,
    /// Control-plane strategy under test.
    pub strategy: UpdateStrategy,
    /// Warm-up packets before the timed windows.
    pub warmup: usize,
    /// Length of each timed window (quiescent and loaded).
    pub duration_ms: u64,
}

/// Measures one (backend, strategy) operating point: packet rate quiescent
/// and under maximal flow-mod churn, plus the sustained update rate.
/// `make_flow_mod(n)` produces the `n`-th flow-mod of the churn stream
/// (alternate adds and deletes to keep the table size bounded).
pub fn measure_update_load(
    spec: BackendSpec,
    pipeline: Pipeline,
    traffic: &FlowSet,
    config: UpdateLoadConfig,
    make_flow_mod: impl Fn(u64) -> FlowMod + Send + Sync,
) -> UpdateLoadPoint {
    let UpdateLoadConfig {
        workers,
        strategy,
        warmup,
        duration_ms,
    } = config;
    let (switch, mut dispatcher) = ShardedSwitch::launch(
        spec,
        pipeline,
        ShardedConfig {
            workers,
            ring_capacity: RING_CAPACITY,
            update_strategy: strategy,
            ..ShardedConfig::default()
        },
    )
    .expect("pipeline compiles");

    // Precompute each replay slot's shard (hardware RSS runs off-CPU).
    let len = traffic.active_flows();
    let n = len.max(BURST_SIZE).div_ceil(BURST_SIZE) * BURST_SIZE;
    let ring: Vec<(usize, Packet)> = (0..n)
        .map(|i| {
            let packet = traffic.packet(i);
            (dispatcher.shard_for(&packet), packet)
        })
        .collect();
    let feed_pass = |dispatcher: &mut shard::RssDispatcher| {
        for (shard, proto) in &ring {
            dispatcher.dispatch_to(*shard, proto.clone());
        }
    };

    // Warm-up: per-shard caches fill; wait for actual processing.
    let mut warmed = 0usize;
    while warmed < warmup {
        feed_pass(&mut dispatcher);
        warmed += ring.len();
    }
    dispatcher.flush();
    while (switch.stats().packets as usize) < warmed {
        std::thread::yield_now();
    }

    let window = Duration::from_millis(duration_ms);

    // Window 1: quiescent.
    let base = switch.stats().packets;
    let start = Instant::now();
    loop {
        feed_pass(&mut dispatcher);
        if start.elapsed() >= window {
            break;
        }
    }
    let quiescent_pps = (switch.stats().packets - base) as f64 / start.elapsed().as_secs_f64();

    // Window 2: loaded — a control thread applies flow-mods back-to-back.
    let stop = AtomicBool::new(false);
    let (loaded_pps, updates_per_sec, classes) = std::thread::scope(|scope| {
        let updater = scope.spawn(|| {
            let mut applied = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let fm = make_flow_mod(applied);
                if switch.flow_mod(&fm).is_ok() {
                    applied += 1;
                }
            }
            applied
        });
        let classes_before = switch.update_classes();
        let base = switch.stats().packets;
        let start = Instant::now();
        loop {
            feed_pass(&mut dispatcher);
            if start.elapsed() >= window {
                break;
            }
        }
        let elapsed = start.elapsed().as_secs_f64();
        let loaded_pps = (switch.stats().packets - base) as f64 / elapsed;
        stop.store(true, Ordering::Relaxed);
        let applied = updater.join().expect("updater panicked");
        let after = switch.update_classes();
        let classes = UpdateClassCounts {
            incremental: after.incremental - classes_before.incremental,
            per_table: after.per_table - classes_before.per_table,
            full: after.full - classes_before.full,
        };
        (loaded_pps, applied as f64 / elapsed, classes)
    });

    switch.shutdown(dispatcher);
    UpdateLoadPoint {
        quiescent_pps,
        loaded_pps,
        updates_per_sec,
        classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflow::flow_match::FlowMatch;
    use openflow::instruction::terminal_actions;
    use openflow::{Action, Field};

    /// The update harness itself must leave the switch consistent and report
    /// sane numbers; the planner path must beat the full-recompile baseline
    /// on update throughput for hash-shaped churn (loose factor here — the
    /// committed BENCH_updates.json captures the real gate).
    #[test]
    fn update_load_harness_reports_classes_and_rates() {
        let make = |n: u64| {
            let mac = 0x0200_0000_4000u64 + (n / 2) % 256;
            let m = FlowMatch::any().with_exact(Field::EthDst, u128::from(mac));
            if n.is_multiple_of(2) {
                FlowMod::add(0, m, 10, terminal_actions(vec![Action::Output(1)]))
            } else {
                FlowMod::delete_strict(0, m, 10)
            }
        };
        let l2 = workloads::l2::L2Config {
            table_size: 256,
            ports: 4,
            seed: 7,
        };
        let point = measure_update_load(
            BackendSpec::eswitch(),
            workloads::l2::build_pipeline(&l2),
            &workloads::l2::build_traffic(&l2, 512),
            UpdateLoadConfig {
                workers: 1,
                strategy: UpdateStrategy::Planned,
                warmup: 2_000,
                duration_ms: 80,
            },
            make,
        );
        assert!(point.quiescent_pps > 0.0);
        assert!(point.loaded_pps > 0.0);
        assert!(point.updates_per_sec > 0.0);
        // Hash-shaped adds/strict-deletes never publish full recompiles.
        assert_eq!(point.classes.full, 0, "{:?}", point.classes);
        assert!(point.classes.incremental > 0, "{:?}", point.classes);
    }
}
