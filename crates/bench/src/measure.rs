//! Throughput and latency measurement loops.
//!
//! A "packet rate" data point mirrors the paper's methodology: generate the
//! traffic mix for the requested number of active flows, warm the switch up
//! (populating caches / touching compiled tables), then time the
//! classification + action execution of a long packet stream on one thread
//! and report packets per second. All architectures run over identical
//! packet prototypes, so differences are attributable to the datapath
//! organisation alone.

use std::time::Instant;

use cpumodel::SystemProfile;
use workloads::FlowSet;

use crate::datapath::AnySwitch;

/// One measured data point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Packets per second.
    pub pps: f64,
    /// Mean nanoseconds spent per packet.
    pub ns_per_packet: f64,
    /// Mean CPU cycles per packet at the reference clock (Table 1's 2 GHz),
    /// making the numbers comparable with the paper's Fig. 16 axis.
    pub cycles_per_packet: f64,
}

/// Measures single-thread throughput of `switch` over `traffic`.
pub fn measure_throughput(
    switch: &AnySwitch,
    traffic: &FlowSet,
    warmup_packets: usize,
    measured_packets: usize,
) -> Measurement {
    // Warm-up: fill caches / fault in compiled tables.
    for i in 0..warmup_packets {
        let mut packet = traffic.packet(i);
        std::hint::black_box(switch.process(&mut packet));
    }
    let start = Instant::now();
    for i in 0..measured_packets {
        let mut packet = traffic.packet(warmup_packets + i);
        std::hint::black_box(switch.process(&mut packet));
    }
    let elapsed = start.elapsed();
    let ns_per_packet = elapsed.as_nanos() as f64 / measured_packets.max(1) as f64;
    let profile = SystemProfile::paper_sut();
    Measurement {
        pps: 1e9 / ns_per_packet,
        ns_per_packet,
        cycles_per_packet: ns_per_packet * profile.clock_hz / 1e9,
    }
}

/// Measures mean per-packet latency (identical loop, exposed separately so
/// call sites read naturally for the latency figures).
pub fn measure_latency_cycles(
    switch: &AnySwitch,
    traffic: &FlowSet,
    warmup_packets: usize,
    measured_packets: usize,
) -> f64 {
    measure_throughput(switch, traffic, warmup_packets, measured_packets).cycles_per_packet
}

/// Measures how long installing a sequence of flow-mods takes, returning
/// seconds (the Fig. 17 metric: "total time to set up the pipeline").
pub fn measure_update_time(switch: &AnySwitch, mods: &[openflow::FlowMod]) -> f64 {
    let start = Instant::now();
    for fm in mods {
        switch.flow_mod(fm);
    }
    start.elapsed().as_secs_f64()
}

/// Runs the standard "packet rate vs number of active flows" sweep shared by
/// Figs. 10–13: for every switch architecture in `kinds` and every
/// active-flow count in `sweep`, build a fresh switch over `make_pipeline()`,
/// generate the traffic with `traffic_for(flows)`, and measure single-thread
/// throughput. Returns one series per architecture, labelled
/// `"<arch>(<suffix>)"`.
pub fn rate_sweep(
    suffix: &str,
    kinds: &[crate::datapath::SwitchKind],
    sweep: &[usize],
    make_pipeline: impl Fn() -> openflow::Pipeline,
    traffic_for: impl Fn(usize) -> FlowSet,
    warmup: usize,
    measured: usize,
) -> Vec<crate::report::Series> {
    kinds
        .iter()
        .map(|kind| {
            let mut series = crate::report::Series::new(format!("{}({})", kind.label(), suffix));
            for &flows in sweep {
                let switch = AnySwitch::build(*kind, make_pipeline());
                let traffic = traffic_for(flows);
                let m = measure_throughput(&switch, &traffic, warmup, measured);
                series.push(flows as f64, m.pps);
            }
            series
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datapath::SwitchKind;
    use workloads::l2::{self, L2Config};

    #[test]
    fn throughput_measurement_is_positive_and_consistent() {
        let config = L2Config {
            table_size: 16,
            ports: 2,
            seed: 1,
        };
        let switch = AnySwitch::build(SwitchKind::Eswitch, l2::build_pipeline(&config));
        let traffic = l2::build_traffic(&config, 32);
        let m = measure_throughput(&switch, &traffic, 100, 2_000);
        assert!(m.pps > 0.0);
        assert!(m.ns_per_packet > 0.0);
        assert!((m.cycles_per_packet - m.ns_per_packet * 2.0).abs() < 1e-6);
    }

    #[test]
    fn update_time_measured() {
        let config = L2Config {
            table_size: 8,
            ports: 2,
            seed: 1,
        };
        let switch = AnySwitch::build(SwitchKind::Ovs, l2::build_pipeline(&config));
        let mods: Vec<openflow::FlowMod> = (0..20u64)
            .map(|i| {
                openflow::FlowMod::add(
                    0,
                    openflow::FlowMatch::any()
                        .with_exact(openflow::Field::EthDst, u128::from(0x0600_0000_0000 + i)),
                    50,
                    openflow::instruction::terminal_actions(vec![openflow::Action::Output(1)]),
                )
            })
            .collect();
        let seconds = measure_update_time(&switch, &mods);
        assert!(seconds >= 0.0);
    }
}
