//! Reactive slow-path measurement for the sharded runtime: what does the
//! classic miss-punt-install loop cost when the punts travel an asynchronous
//! controller channel instead of a synchronous call?
//!
//! [`measure_reactive_load`] drives one reactive sharded switch through
//! three phases over the same RSS-precomputed feeds:
//!
//! 1. **quiescent** — known flows only; the baseline packet rate;
//! 2. **miss storm** — a set of never-seen flows joins the feed; every one
//!    punts, the controller installs its rule through the epoch-swap control
//!    plane, and the phase ends when a full pass over the storm flows raises
//!    zero new punt attempts (every flow on the fast path). Reactive
//!    flow-setup rate and pps-under-storm come from this window;
//! 3. **converged** — the known-flow feed again; the ratio to phase 1 is the
//!    pps retained after convergence (the punt machinery must cost nothing
//!    once flows are installed).
//!
//! Punt round-trip latency (enqueue → controller decisions applied) is
//! accounted by the channel itself and reported from its counters. The
//! `fig_reactive` binary sweeps backends into `BENCH_reactive.json`.
//!
//! [`measure_punt_storm`] is the adversarial companion: a victim tenant's
//! steady feed shares the switch with an attacker cycling thousands of
//! never-installable flows from one source signature (the
//! `examples/cache_attack.rs` adversary aimed at the punt path). It reports
//! the victim's packet rate retained against the storm's slow-path backlog
//! (timed victim bursts right after each untimed attacker pass, while that
//! pass's punts are still in flight through the controller channel), how
//! long the victim's *own* fresh flows take to install mid-storm, and the
//! per-layer shed counters that must account for every rejected punt.

use std::time::{Duration, Instant};

use netdev::BURST_SIZE;
use openflow::controller::{resubmit_packet_out, FnController};
use openflow::flow_match::FlowMatch;
use openflow::instruction::terminal_actions;
use openflow::{
    Action, Controller, ControllerDecision, Field, FlowEntry, FlowKey, FlowMod, PacketIn, Pipeline,
    TableMissBehavior,
};
use pkt::builder::PacketBuilder;
use pkt::{MacAddr, Packet};
use shard::{
    BackendSpec, PuntPolicy, ReactiveSnapshot, RssDispatcher, ShardedConfig, ShardedSwitch,
    UpdateClassCounts,
};

/// Per-shard ring capacity used by the reactive harness.
pub const RING_CAPACITY: usize = 1024;

const SEED_MAC_BASE: u64 = 0x0200_0000_3000;
const STORM_MAC_BASE: u64 = 0x0200_0000_4000;
/// Fresh victim flows that must install mid-storm (distinct sources).
const VICTIM_FRESH_MAC_BASE: u64 = 0x0200_0000_5000;
const VICTIM_SRC_MAC_BASE: u64 = 0x0200_0000_6000;
/// Attacker destinations: the storm controller refuses installs at and
/// above this base, so attacker flows punt forever (never converge).
const ATTACK_MAC_BASE: u64 = 0x0200_0000_8000;
const ATTACK_SRC_MAC: u64 = 0x0200_0000_0bad;

/// One measured operating point of [`measure_reactive_load`].
#[derive(Debug, Clone)]
pub struct ReactiveLoadPoint {
    /// Packets/sec with only known flows flowing (no punts).
    pub quiescent_pps: f64,
    /// Packets/sec while the miss storm resolves.
    pub storm_pps: f64,
    /// Packets/sec on the known-flow feed after every storm flow converged.
    pub converged_pps: f64,
    /// Reactive flow setups per second: storm flows over the time from the
    /// first storm packet to the last flow's convergence.
    pub flow_setup_per_sec: f64,
    /// Final reactive-channel accounting.
    pub reactive: ReactiveSnapshot,
    /// §3.4 classes of every epoch the reactive installs published.
    pub classes: UpdateClassCounts,
}

impl ReactiveLoadPoint {
    /// Fraction of the quiescent packet rate retained after convergence.
    pub fn retained_converged(&self) -> f64 {
        if self.quiescent_pps <= 0.0 {
            0.0
        } else {
            self.converged_pps / self.quiescent_pps
        }
    }

    /// Fraction of the quiescent packet rate retained during the storm.
    pub fn retained_storm(&self) -> f64 {
        if self.quiescent_pps <= 0.0 {
            0.0
        } else {
            self.storm_pps / self.quiescent_pps
        }
    }

    /// Mean punt round trip in microseconds.
    pub fn rtt_mean_us(&self) -> f64 {
        self.reactive.rtt_mean_nanos() / 1_000.0
    }

    /// Worst punt round trip in microseconds.
    pub fn rtt_max_us(&self) -> f64 {
        self.reactive.rtt_max_nanos as f64 / 1_000.0
    }
}

/// Operating point of one [`measure_reactive_load`] run.
#[derive(Debug, Clone, Copy)]
pub struct ReactiveLoadConfig {
    /// Worker shards.
    pub workers: usize,
    /// Controller workers draining the punt rings (partitioned by flow
    /// signature).
    pub controller_workers: usize,
    /// Known flows in the steady feed.
    pub known_flows: usize,
    /// Never-seen flows in the miss storm.
    pub storm_flows: usize,
    /// Warm-up packets before the timed windows.
    pub warmup: usize,
    /// Length of the quiescent and converged windows.
    pub duration_ms: u64,
}

/// Asserts the reactive channel's exactly-once accounting at quiescence:
/// every punt attempt resolved to exactly one of the counted outcomes, and
/// both the answer and inject flows balanced.
pub fn assert_reactive_identities(s: &ReactiveSnapshot) {
    assert_eq!(
        s.admitted,
        s.punted + s.overflow + s.shed_source + s.shed_aggregate,
        "admitted punts must be ring-enqueued or shed, counted: {s:?}"
    );
    assert_eq!(s.attempts(), s.admitted + s.suppressed, "{s:?}");
    assert_eq!(
        s.answered, s.punted,
        "unanswered punts at quiescence: {s:?}"
    );
    assert_eq!(
        s.injected, s.reinjected,
        "unprocessed packet-outs at quiescence: {s:?}"
    );
    assert_eq!(
        s.punted,
        s.per_worker.iter().map(|w| w.drained).sum::<u64>(),
        "per-worker drains must cover every punt: {s:?}"
    );
}

/// The deterministic reactive controller of the harness: install a MAC rule
/// for whatever destination punted (pure function of the key, idempotent)
/// and resubmit the triggering packet so it takes the fresh rule — the
/// classic install + `OFPP_TABLE` packet-out pair, which keeps the inject
/// rings honest in the measured counters.
fn install_controller() -> Box<dyn Controller> {
    Box::new(FnController::new(|pi: PacketIn| {
        let key = FlowKey::extract(&pi.packet);
        vec![
            ControllerDecision::FlowMod(FlowMod::add(
                0,
                FlowMatch::any().with_exact(Field::EthDst, u128::from(key.eth_dst)),
                10,
                terminal_actions(vec![Action::Output((key.eth_dst % 4) as u32)]),
            )),
            resubmit_packet_out(pi.packet),
        ]
    }))
}

/// The storm harness's controller: an access-gateway that installs (and
/// resubmits) victim flows but refuses the attacker's destinations, so
/// attacker flows punt forever — the worst case for the admission layers.
fn storm_controller() -> Box<dyn Controller> {
    Box::new(FnController::new(|pi: PacketIn| {
        let key = FlowKey::extract(&pi.packet);
        if key.eth_dst >= ATTACK_MAC_BASE {
            return vec![ControllerDecision::Drop];
        }
        vec![
            ControllerDecision::FlowMod(FlowMod::add(
                0,
                FlowMatch::any().with_exact(Field::EthDst, u128::from(key.eth_dst)),
                10,
                terminal_actions(vec![Action::Output((key.eth_dst % 4) as u32)]),
            )),
            resubmit_packet_out(pi.packet),
        ]
    }))
}

/// Seeded MAC table (hash template) whose miss punts to the controller.
fn reactive_pipeline(seeded: usize) -> Pipeline {
    let mut p = Pipeline::with_tables(1);
    let t = p.table_mut(0).unwrap();
    t.miss = TableMissBehavior::ToController;
    for i in 0..seeded as u64 {
        t.insert(FlowEntry::new(
            FlowMatch::any().with_exact(Field::EthDst, u128::from(SEED_MAC_BASE + i)),
            10,
            terminal_actions(vec![Action::Output((i % 4) as u32)]),
        ));
    }
    p
}

fn mac_packet(mac: u64, rep: usize) -> Packet {
    PacketBuilder::udp()
        .eth_dst(MacAddr::from_u64(mac))
        .udp_src(40_000 + (rep % 512) as u16)
        .build()
}

/// One attacker packet: high-entropy destination, but every origin field
/// pinned to one identity — the whole storm collapses onto a single source
/// signature, which is exactly what the per-source bucket keys on.
fn attack_packet(i: u64) -> Packet {
    PacketBuilder::udp()
        .eth_src(MacAddr::from_u64(ATTACK_SRC_MAC))
        .eth_dst(MacAddr::from_u64(ATTACK_MAC_BASE + i))
        .udp_src(40_000 + (i % 512) as u16)
        .build()
}

/// One fresh victim flow: its own source identity (a compliant tenant) and
/// an uninstalled destination, so it must round-trip the controller
/// mid-storm to converge.
fn victim_fresh_packet(i: u64) -> Packet {
    PacketBuilder::udp()
        .eth_src(MacAddr::from_u64(VICTIM_SRC_MAC_BASE + i))
        .eth_dst(MacAddr::from_u64(VICTIM_FRESH_MAC_BASE + i))
        .build()
}

/// Measures one backend's reactive operating point.
pub fn measure_reactive_load(spec: BackendSpec, config: ReactiveLoadConfig) -> ReactiveLoadPoint {
    let ReactiveLoadConfig {
        workers,
        controller_workers,
        known_flows,
        storm_flows,
        warmup,
        duration_ms,
    } = config;
    let seeded = 512.min(known_flows.max(64));
    let (switch, mut dispatcher) = ShardedSwitch::launch_reactive(
        spec,
        reactive_pipeline(seeded),
        ShardedConfig {
            workers,
            controller_workers,
            ring_capacity: RING_CAPACITY,
            ..ShardedConfig::default()
        },
        install_controller(),
    )
    .expect("reactive pipeline compiles");

    // Precompute each feed slot's shard (hardware RSS runs off-CPU).
    let n = known_flows.max(BURST_SIZE).div_ceil(BURST_SIZE) * BURST_SIZE;
    let known: Vec<(usize, Packet)> = (0..n)
        .map(|i| {
            let packet = mac_packet(SEED_MAC_BASE + (i % seeded) as u64, i);
            (dispatcher.shard_for(&packet), packet)
        })
        .collect();
    let storm: Vec<(usize, Packet)> = (0..storm_flows)
        .map(|i| {
            let packet = mac_packet(STORM_MAC_BASE + i as u64, i);
            (dispatcher.shard_for(&packet), packet)
        })
        .collect();
    let feed = |dispatcher: &mut RssDispatcher, ring: &[(usize, Packet)]| {
        for (shard, proto) in ring {
            dispatcher.dispatch_to(*shard, proto.clone());
        }
    };
    let drain = |switch: &ShardedSwitch, dispatcher: &mut RssDispatcher| {
        dispatcher.flush();
        while switch.stats().packets < dispatcher.dispatched() {
            std::thread::yield_now();
        }
    };

    // Warm-up.
    let mut warmed = 0usize;
    while warmed < warmup {
        feed(&mut dispatcher, &known);
        warmed += known.len();
    }
    drain(&switch, &mut dispatcher);

    let window = Duration::from_millis(duration_ms);
    let measure_window = |switch: &ShardedSwitch, dispatcher: &mut RssDispatcher| {
        let base = switch.stats().packets;
        let start = Instant::now();
        loop {
            feed(dispatcher, &known);
            if start.elapsed() >= window {
                break;
            }
        }
        (switch.stats().packets - base) as f64 / start.elapsed().as_secs_f64()
    };

    // Phase 1: quiescent baseline.
    let quiescent_pps = measure_window(&switch, &mut dispatcher);
    drain(&switch, &mut dispatcher);

    // Phase 2: the miss storm, measured until every storm flow stops
    // punting (one full pass raises zero new punt attempts).
    let base = switch.stats().packets;
    let start = Instant::now();
    let deadline = start + Duration::from_secs(60);
    loop {
        let attempts_before = switch.reactive_stats().expect("reactive launch").attempts();
        feed(&mut dispatcher, &storm);
        feed(&mut dispatcher, &known);
        drain(&switch, &mut dispatcher);
        let stats = switch.reactive_stats().expect("reactive launch");
        if stats.attempts() == attempts_before && stats.answered == stats.punted {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "storm never converged: {stats:?}"
        );
    }
    let storm_elapsed = start.elapsed().as_secs_f64();
    let storm_pps = (switch.stats().packets - base) as f64 / storm_elapsed;
    let flow_setup_per_sec = storm_flows as f64 / storm_elapsed;

    // Phase 3: the known-flow feed again — what the punt machinery costs
    // once everything is installed.
    let converged_pps = measure_window(&switch, &mut dispatcher);

    let report = switch.shutdown(dispatcher);
    assert_eq!(report.processed.packets, report.dispatched);
    let reactive = report.reactive.expect("reactive launch");
    assert_reactive_identities(&reactive);
    ReactiveLoadPoint {
        quiescent_pps,
        storm_pps,
        converged_pps,
        flow_setup_per_sec,
        reactive,
        classes: report.update_classes,
    }
}

/// Operating point of one [`measure_punt_storm`] run.
#[derive(Debug, Clone)]
pub struct StormConfig {
    /// Worker shards.
    pub workers: usize,
    /// Controller workers draining the punt rings.
    pub controller_workers: usize,
    /// Installed victim flows in the steady feed.
    pub victim_flows: usize,
    /// Fresh victim flows (distinct compliant sources) that must install
    /// mid-storm.
    pub fresh_victim_flows: usize,
    /// Distinct attacker flows, all sharing one source signature, cycled
    /// for the whole storm window (the controller never installs them).
    pub attacker_flows: usize,
    /// Warm-up packets before the timed windows.
    pub warmup: usize,
    /// Length of the baseline and storm windows.
    pub duration_ms: u64,
    /// The admission policy under test (open = no defense baseline).
    pub policy: PuntPolicy,
}

/// One measured operating point of [`measure_punt_storm`].
#[derive(Debug, Clone)]
pub struct StormPoint {
    /// Victim packets/sec with no attacker present (timed victim bursts).
    pub victim_baseline_pps: f64,
    /// Victim packets/sec for the same bursts run against the sustained
    /// storm's slow-path backlog (the attacker's own fast-path passes are
    /// outside the victim clock — see [`measure_punt_storm`]).
    pub victim_storm_pps: f64,
    /// Time (ms, from storm start) until every fresh victim flow was on the
    /// fast path — the victim's reactive service under attack.
    pub victim_install_ms: f64,
    /// Attacker packets offered during the storm window.
    pub attacker_offered: u64,
    /// Final reactive-channel accounting (shed counters live here).
    pub reactive: ReactiveSnapshot,
}

impl StormPoint {
    /// Fraction of the victim's no-attack packet rate retained mid-storm.
    pub fn victim_retained(&self) -> f64 {
        if self.victim_baseline_pps <= 0.0 {
            0.0
        } else {
            self.victim_storm_pps / self.victim_baseline_pps
        }
    }
}

/// Measures one backend's slow-path resilience: a victim tenant's steady
/// feed and fresh-flow installs, under a sustained punt storm from a single
/// adversarial source cycling `attacker_flows` never-installable flows.
///
/// Both phases time identical victim feed-and-drain bursts; the storm
/// phase's bursts run right after each (untimed) attacker pass, while that
/// pass's punt backlog is still in flight through the controller channel.
/// `victim_retained` therefore isolates the storm's *slow-path* cost —
/// controller workers churning garbage punts, gate and bucket pressure,
/// ring backlogs — which is the thing a punt-admission defense can actually
/// return. The attacker's raw fast-path share is deliberately outside the
/// victim clock: no slow-path policy can refund ingress CPU (per-shard
/// multi-queue isolation does that), and timing it would reduce the metric
/// to the feed mix ratio on small machines.
pub fn measure_punt_storm(spec: BackendSpec, config: StormConfig) -> StormPoint {
    let seeded = 512.min(config.victim_flows.max(64));
    let (switch, mut dispatcher) = ShardedSwitch::launch_reactive(
        spec,
        reactive_pipeline(seeded),
        ShardedConfig {
            workers: config.workers,
            controller_workers: config.controller_workers,
            ring_capacity: RING_CAPACITY,
            punt_policy: config.policy,
            ..ShardedConfig::default()
        },
        storm_controller(),
    )
    .expect("reactive pipeline compiles");

    let n = config.victim_flows.max(BURST_SIZE).div_ceil(BURST_SIZE) * BURST_SIZE;
    let victim: Vec<(usize, Packet)> = (0..n)
        .map(|i| {
            let packet = mac_packet(SEED_MAC_BASE + (i % seeded) as u64, i);
            (dispatcher.shard_for(&packet), packet)
        })
        .collect();
    let attackers: Vec<(usize, Packet)> = (0..config.attacker_flows)
        .map(|i| {
            let packet = attack_packet(i as u64);
            (dispatcher.shard_for(&packet), packet)
        })
        .collect();
    let fresh: Vec<(usize, Packet)> = (0..config.fresh_victim_flows)
        .map(|i| {
            let packet = victim_fresh_packet(i as u64);
            (dispatcher.shard_for(&packet), packet)
        })
        .collect();
    let feed = |dispatcher: &mut RssDispatcher, ring: &[(usize, Packet)]| {
        for (shard, proto) in ring {
            dispatcher.dispatch_to(*shard, proto.clone());
        }
    };
    let drain = |switch: &ShardedSwitch, dispatcher: &mut RssDispatcher| {
        dispatcher.flush();
        while switch.stats().packets < dispatcher.dispatched() {
            std::thread::yield_now();
        }
    };

    // Warm-up on the victim steady feed.
    let mut warmed = 0usize;
    while warmed < config.warmup {
        feed(&mut dispatcher, &victim);
        warmed += victim.len();
    }
    drain(&switch, &mut dispatcher);

    let window = Duration::from_millis(config.duration_ms);

    // Phase 1: the victim alone, in timed feed-and-drain bursts. The storm
    // phase times the identical victim bursts, so the ratio compares like
    // with like (the per-burst drain sync cost appears in both).
    let mut victim_sent = 0u64;
    let mut victim_time = Duration::ZERO;
    let start = Instant::now();
    while start.elapsed() < window {
        let t0 = Instant::now();
        feed(&mut dispatcher, &victim);
        drain(&switch, &mut dispatcher);
        victim_time += t0.elapsed();
        victim_sent += victim.len() as u64;
    }
    let victim_baseline_pps = victim_sent as f64 / victim_time.as_secs_f64();

    // Phase 2: the sustained storm. Each pass offers the full attacker
    // pool plus the victim's fresh flows, then times a victim burst against
    // whatever the storm left behind in the controller channel — punt
    // backlogs draining through the controller workers, gate/bucket
    // pressure, epoch churn. The attacker's *own* fast-path processing is
    // outside the victim clock deliberately: raw ingress CPU/link share is
    // not something a slow-path defense can return (multi-queue ingress
    // isolation is), but every slow-path consequence of the storm lands
    // inside the timed window — with the open policy the controller
    // workers are still chewing through thousands of garbage punts while
    // the victim burst runs, and `victim_retained` collapses; the hardened
    // policy sheds the backlog at admission and keeps the victim near
    // baseline. The flow-mod counter marks when the victim's installs went
    // through (attacker flows never produce one), pending phase 3's proof.
    let fm_base = switch.reactive_stats().expect("reactive launch").flow_mods;
    let mut victim_sent = 0u64;
    let mut victim_time = Duration::ZERO;
    let mut attacker_offered = 0u64;
    let mut installed_at: Option<Duration> = None;
    let start = Instant::now();
    loop {
        // Untimed: the attacker pool's fast-path pass. `drain` waits only
        // for the *packets* — the punt copies it raised are still in
        // flight through the controller channel when the victim clock
        // starts, which is the point.
        feed(&mut dispatcher, &attackers);
        attacker_offered += attackers.len() as u64;
        feed(&mut dispatcher, &fresh);
        drain(&switch, &mut dispatcher);
        let t0 = Instant::now();
        feed(&mut dispatcher, &victim);
        drain(&switch, &mut dispatcher);
        victim_time += t0.elapsed();
        victim_sent += victim.len() as u64;
        if installed_at.is_none() {
            let fm = switch.reactive_stats().expect("reactive launch").flow_mods;
            if fm >= fm_base + fresh.len() as u64 {
                installed_at = Some(start.elapsed());
            }
        }
        if start.elapsed() >= window {
            break;
        }
    }
    drain(&switch, &mut dispatcher);
    let victim_storm_pps = victim_sent as f64 / victim_time.as_secs_f64();

    // Phase 3: prove the victim's fresh flows converged (or measure how
    // much longer the storm's backlog delays them). A full fresh-victim
    // pass over a drained switch raising zero new punt attempts means
    // every one is on the fast path.
    let deadline = start + Duration::from_secs(120);
    let converged_at = loop {
        let before = switch.reactive_stats().expect("reactive launch").attempts();
        feed(&mut dispatcher, &fresh);
        drain(&switch, &mut dispatcher);
        let stats = switch.reactive_stats().expect("reactive launch");
        if stats.attempts() == before && stats.answered == stats.punted {
            break start.elapsed();
        }
        // Keep the storm hot while the victim waits: starvation must show
        // up in this number, not be hidden by a convenient quiet period.
        feed(&mut dispatcher, &attackers);
        attacker_offered += attackers.len() as u64;
        assert!(
            Instant::now() < deadline,
            "victim installs starved by the storm: {stats:?}"
        );
    };
    // The mid-storm flow-mod mark is the honest install time when it fired
    // (phase 3 then only *verified* convergence); a victim that had to wait
    // out the storm gets the later, verified time.
    let victim_install_ms = installed_at.unwrap_or(converged_at).as_secs_f64() * 1_000.0;

    let report = switch.shutdown(dispatcher);
    assert_eq!(report.processed.packets, report.dispatched);
    let reactive = report.reactive.expect("reactive launch");
    assert_reactive_identities(&reactive);
    StormPoint {
        victim_baseline_pps,
        victim_storm_pps,
        victim_install_ms,
        attacker_offered,
        reactive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The harness itself must converge and report sane numbers; the real
    /// gate is the committed BENCH_reactive.json.
    #[test]
    fn reactive_harness_converges_and_reports() {
        let point = measure_reactive_load(
            BackendSpec::eswitch(),
            ReactiveLoadConfig {
                workers: 1,
                controller_workers: 2,
                known_flows: 256,
                storm_flows: 64,
                warmup: 2_000,
                duration_ms: 60,
            },
        );
        assert!(point.quiescent_pps > 0.0);
        assert!(point.storm_pps > 0.0);
        assert!(point.converged_pps > 0.0);
        assert!(point.flow_setup_per_sec > 0.0);
        // Every storm flow punted at least once and was answered.
        assert!(point.reactive.punted >= 64, "{:?}", point.reactive);
        assert_eq!(point.reactive.answered, point.reactive.punted);
        // The install + resubmit pair exercises the inject rings: every
        // answer re-injected a packet-out and every one was processed.
        assert!(point.reactive.reinjected >= 64, "{:?}", point.reactive);
        assert_eq!(point.reactive.reinjected, point.reactive.injected);
        // Both controller workers must have drained (the storm flows spread
        // over partitions) and the drains must cover every punt.
        assert_eq!(point.reactive.per_worker.len(), 2, "{:?}", point.reactive);
        assert!(
            point.reactive.per_worker.iter().all(|w| w.drained > 0),
            "{:?}",
            point.reactive
        );
        // Hash-shaped reactive installs publish incremental epochs.
        assert!(point.classes.incremental >= 64, "{:?}", point.classes);
        assert_eq!(point.classes.full, 0, "{:?}", point.classes);
        assert!(point.rtt_mean_us() > 0.0);
    }

    /// The storm harness under a hardened policy: the single-source storm
    /// is shed at layer 2, the victim's fresh flows install, and every
    /// rejection is accounted.
    #[test]
    fn storm_harness_sheds_attacker_and_serves_victim() {
        let point = measure_punt_storm(
            BackendSpec::eswitch(),
            StormConfig {
                workers: 1,
                controller_workers: 2,
                victim_flows: 256,
                fresh_victim_flows: 16,
                attacker_flows: 512,
                warmup: 2_000,
                duration_ms: 60,
                policy: PuntPolicy::hardened(100, 10_000),
            },
        );
        assert!(point.victim_baseline_pps > 0.0);
        assert!(point.victim_storm_pps > 0.0);
        assert!(point.attacker_offered >= 512);
        // The acceptance gate: with the hardened policy shedding the
        // storm's punt backlog at admission, the victim keeps ≥ 70% of its
        // no-attack burst rate. (The open policy collapses here — the
        // committed BENCH_reactive.json storm[] carries the contrast.)
        assert!(
            point.victim_retained() >= 0.7,
            "victim retained only {:.1}% under the hardened policy",
            point.victim_retained() * 100.0
        );
        // The attacker's punts hammered layer 2 (one source signature).
        assert!(point.reactive.shed_source > 0, "{:?}", point.reactive);
        // The victim's fresh flows all converged (phase 3 proved it).
        assert!(point.victim_install_ms > 0.0);
        assert!(point.reactive.flow_mods >= 16, "{:?}", point.reactive);
    }
}
