//! Reactive slow-path measurement for the sharded runtime: what does the
//! classic miss-punt-install loop cost when the punts travel an asynchronous
//! controller channel instead of a synchronous call?
//!
//! [`measure_reactive_load`] drives one reactive sharded switch through
//! three phases over the same RSS-precomputed feeds:
//!
//! 1. **quiescent** — known flows only; the baseline packet rate;
//! 2. **miss storm** — a set of never-seen flows joins the feed; every one
//!    punts, the controller installs its rule through the epoch-swap control
//!    plane, and the phase ends when a full pass over the storm flows raises
//!    zero new punt attempts (every flow on the fast path). Reactive
//!    flow-setup rate and pps-under-storm come from this window;
//! 3. **converged** — the known-flow feed again; the ratio to phase 1 is the
//!    pps retained after convergence (the punt machinery must cost nothing
//!    once flows are installed).
//!
//! Punt round-trip latency (enqueue → controller decisions applied) is
//! accounted by the channel itself and reported from its counters. The
//! `fig_reactive` binary sweeps backends into `BENCH_reactive.json`.

use std::time::{Duration, Instant};

use netdev::BURST_SIZE;
use openflow::controller::FnController;
use openflow::flow_match::FlowMatch;
use openflow::instruction::terminal_actions;
use openflow::{
    Action, Controller, ControllerDecision, Field, FlowEntry, FlowKey, FlowMod, PacketIn, Pipeline,
    TableMissBehavior,
};
use pkt::builder::PacketBuilder;
use pkt::{MacAddr, Packet};
use shard::{
    BackendSpec, ReactiveSnapshot, RssDispatcher, ShardedConfig, ShardedSwitch, UpdateClassCounts,
};

/// Per-shard ring capacity used by the reactive harness.
pub const RING_CAPACITY: usize = 1024;

const SEED_MAC_BASE: u64 = 0x0200_0000_3000;
const STORM_MAC_BASE: u64 = 0x0200_0000_4000;

/// One measured operating point of [`measure_reactive_load`].
#[derive(Debug, Clone, Copy)]
pub struct ReactiveLoadPoint {
    /// Packets/sec with only known flows flowing (no punts).
    pub quiescent_pps: f64,
    /// Packets/sec while the miss storm resolves.
    pub storm_pps: f64,
    /// Packets/sec on the known-flow feed after every storm flow converged.
    pub converged_pps: f64,
    /// Reactive flow setups per second: storm flows over the time from the
    /// first storm packet to the last flow's convergence.
    pub flow_setup_per_sec: f64,
    /// Final reactive-channel accounting.
    pub reactive: ReactiveSnapshot,
    /// §3.4 classes of every epoch the reactive installs published.
    pub classes: UpdateClassCounts,
}

impl ReactiveLoadPoint {
    /// Fraction of the quiescent packet rate retained after convergence.
    pub fn retained_converged(&self) -> f64 {
        if self.quiescent_pps <= 0.0 {
            0.0
        } else {
            self.converged_pps / self.quiescent_pps
        }
    }

    /// Fraction of the quiescent packet rate retained during the storm.
    pub fn retained_storm(&self) -> f64 {
        if self.quiescent_pps <= 0.0 {
            0.0
        } else {
            self.storm_pps / self.quiescent_pps
        }
    }

    /// Mean punt round trip in microseconds.
    pub fn rtt_mean_us(&self) -> f64 {
        self.reactive.rtt_mean_nanos() / 1_000.0
    }

    /// Worst punt round trip in microseconds.
    pub fn rtt_max_us(&self) -> f64 {
        self.reactive.rtt_max_nanos as f64 / 1_000.0
    }
}

/// Operating point of one [`measure_reactive_load`] run.
#[derive(Debug, Clone, Copy)]
pub struct ReactiveLoadConfig {
    /// Worker shards.
    pub workers: usize,
    /// Known flows in the steady feed.
    pub known_flows: usize,
    /// Never-seen flows in the miss storm.
    pub storm_flows: usize,
    /// Warm-up packets before the timed windows.
    pub warmup: usize,
    /// Length of the quiescent and converged windows.
    pub duration_ms: u64,
}

/// The deterministic reactive controller of the harness: install a MAC rule
/// for whatever destination punted (pure function of the key, idempotent).
fn install_controller() -> Box<dyn Controller> {
    Box::new(FnController::new(|pi: PacketIn| {
        let key = FlowKey::extract(&pi.packet);
        vec![ControllerDecision::FlowMod(FlowMod::add(
            0,
            FlowMatch::any().with_exact(Field::EthDst, u128::from(key.eth_dst)),
            10,
            terminal_actions(vec![Action::Output((key.eth_dst % 4) as u32)]),
        ))]
    }))
}

/// Seeded MAC table (hash template) whose miss punts to the controller.
fn reactive_pipeline(seeded: usize) -> Pipeline {
    let mut p = Pipeline::with_tables(1);
    let t = p.table_mut(0).unwrap();
    t.miss = TableMissBehavior::ToController;
    for i in 0..seeded as u64 {
        t.insert(FlowEntry::new(
            FlowMatch::any().with_exact(Field::EthDst, u128::from(SEED_MAC_BASE + i)),
            10,
            terminal_actions(vec![Action::Output((i % 4) as u32)]),
        ));
    }
    p
}

fn mac_packet(mac: u64, rep: usize) -> Packet {
    PacketBuilder::udp()
        .eth_dst(MacAddr::from_u64(mac))
        .udp_src(40_000 + (rep % 512) as u16)
        .build()
}

/// Measures one backend's reactive operating point.
pub fn measure_reactive_load(spec: BackendSpec, config: ReactiveLoadConfig) -> ReactiveLoadPoint {
    let ReactiveLoadConfig {
        workers,
        known_flows,
        storm_flows,
        warmup,
        duration_ms,
    } = config;
    let seeded = 512.min(known_flows.max(64));
    let (switch, mut dispatcher) = ShardedSwitch::launch_reactive(
        spec,
        reactive_pipeline(seeded),
        ShardedConfig {
            workers,
            ring_capacity: RING_CAPACITY,
            ..ShardedConfig::default()
        },
        install_controller(),
    )
    .expect("reactive pipeline compiles");

    // Precompute each feed slot's shard (hardware RSS runs off-CPU).
    let n = known_flows.max(BURST_SIZE).div_ceil(BURST_SIZE) * BURST_SIZE;
    let known: Vec<(usize, Packet)> = (0..n)
        .map(|i| {
            let packet = mac_packet(SEED_MAC_BASE + (i % seeded) as u64, i);
            (dispatcher.shard_for(&packet), packet)
        })
        .collect();
    let storm: Vec<(usize, Packet)> = (0..storm_flows)
        .map(|i| {
            let packet = mac_packet(STORM_MAC_BASE + i as u64, i);
            (dispatcher.shard_for(&packet), packet)
        })
        .collect();
    let feed = |dispatcher: &mut RssDispatcher, ring: &[(usize, Packet)]| {
        for (shard, proto) in ring {
            dispatcher.dispatch_to(*shard, proto.clone());
        }
    };
    let drain = |switch: &ShardedSwitch, dispatcher: &mut RssDispatcher| {
        dispatcher.flush();
        while switch.stats().packets < dispatcher.dispatched() {
            std::thread::yield_now();
        }
    };

    // Warm-up.
    let mut warmed = 0usize;
    while warmed < warmup {
        feed(&mut dispatcher, &known);
        warmed += known.len();
    }
    drain(&switch, &mut dispatcher);

    let window = Duration::from_millis(duration_ms);
    let measure_window = |switch: &ShardedSwitch, dispatcher: &mut RssDispatcher| {
        let base = switch.stats().packets;
        let start = Instant::now();
        loop {
            feed(dispatcher, &known);
            if start.elapsed() >= window {
                break;
            }
        }
        (switch.stats().packets - base) as f64 / start.elapsed().as_secs_f64()
    };

    // Phase 1: quiescent baseline.
    let quiescent_pps = measure_window(&switch, &mut dispatcher);
    drain(&switch, &mut dispatcher);

    // Phase 2: the miss storm, measured until every storm flow stops
    // punting (one full pass raises zero new punt attempts).
    let base = switch.stats().packets;
    let start = Instant::now();
    let deadline = start + Duration::from_secs(60);
    loop {
        let attempts_before = switch.reactive_stats().expect("reactive launch").attempts();
        feed(&mut dispatcher, &storm);
        feed(&mut dispatcher, &known);
        drain(&switch, &mut dispatcher);
        let stats = switch.reactive_stats().expect("reactive launch");
        if stats.attempts() == attempts_before && stats.answered == stats.punted {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "storm never converged: {stats:?}"
        );
    }
    let storm_elapsed = start.elapsed().as_secs_f64();
    let storm_pps = (switch.stats().packets - base) as f64 / storm_elapsed;
    let flow_setup_per_sec = storm_flows as f64 / storm_elapsed;

    // Phase 3: the known-flow feed again — what the punt machinery costs
    // once everything is installed.
    let converged_pps = measure_window(&switch, &mut dispatcher);

    let report = switch.shutdown(dispatcher);
    assert_eq!(report.processed.packets, report.dispatched);
    ReactiveLoadPoint {
        quiescent_pps,
        storm_pps,
        converged_pps,
        flow_setup_per_sec,
        reactive: report.reactive.expect("reactive launch"),
        classes: report.update_classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The harness itself must converge and report sane numbers; the real
    /// gate is the committed BENCH_reactive.json.
    #[test]
    fn reactive_harness_converges_and_reports() {
        let point = measure_reactive_load(
            BackendSpec::eswitch(),
            ReactiveLoadConfig {
                workers: 1,
                known_flows: 256,
                storm_flows: 64,
                warmup: 2_000,
                duration_ms: 60,
            },
        );
        assert!(point.quiescent_pps > 0.0);
        assert!(point.storm_pps > 0.0);
        assert!(point.converged_pps > 0.0);
        assert!(point.flow_setup_per_sec > 0.0);
        // Every storm flow punted at least once and was answered.
        assert!(point.reactive.punted >= 64, "{:?}", point.reactive);
        assert_eq!(point.reactive.answered, point.reactive.punted);
        // Hash-shaped reactive installs publish incremental epochs.
        assert!(point.classes.incremental >= 64, "{:?}", point.classes);
        assert_eq!(point.classes.full, 0, "{:?}", point.classes);
        assert!(point.rtt_mean_us() > 0.0);
    }
}
