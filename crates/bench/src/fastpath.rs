//! Shared workload definitions for the fastpath throughput harness (the
//! `fastpath` sweep binary and the `fastpath` criterion bench).
//!
//! The OVS workloads run over a four-class forwarding pipeline whose traffic
//! classes produce four distinct megaflow masks, so steady state exercises
//! genuine tuple-space search; the knob that moves between the Fig. 14
//! regimes is the active-flow count relative to the EMC capacity.

use openflow::flow_match::FlowMatch;
use openflow::instruction::terminal_actions;
use openflow::{Action, Field, FlowEntry, Pipeline};
use pkt::builder::PacketBuilder;
use pkt::Packet;
use workloads::FlowSet;

/// Burst size of the measurement loops (DPDK's conventional rx burst).
pub const BURST: usize = 32;
/// Distinct destination ports per transport protocol in the port pipeline.
pub const PORTS_PER_PROTO: u16 = 64;
/// Number of `eth_dst` rules (the fourth traffic class below).
pub const MAC_RULES: u64 = 32;

/// A four-class forwarding pipeline: 64 `tcp_dst` rules over 64 `udp_dst`
/// rules over an ICMP rule over 32 `eth_dst` rules over a catch-all drop.
/// Under slow-path un-wildcarding the four traffic classes produce four
/// distinct megaflow masks — `{tcp_dst}`, `{tcp_dst, udp_dst}`,
/// `{tcp_dst, udp_dst, icmp_type}` and `{…, eth_dst}` — so steady state is
/// genuine tuple-space search over several subtables, the regime whose cost
/// the paper's §2.2 attributes OVS's megaflow-level slowdown to.
pub fn port_pipeline() -> Pipeline {
    let mut p = Pipeline::with_tables(1);
    let t = p.table_mut(0).unwrap();
    for i in 0..PORTS_PER_PROTO {
        t.insert(FlowEntry::new(
            FlowMatch::any().with_exact(Field::TcpDst, u128::from(1000 + i)),
            100,
            terminal_actions(vec![Action::Output(u32::from(i % 4))]),
        ));
        t.insert(FlowEntry::new(
            FlowMatch::any().with_exact(Field::UdpDst, u128::from(1000 + i)),
            90,
            terminal_actions(vec![Action::Output(u32::from(i % 4))]),
        ));
    }
    t.insert(FlowEntry::new(
        FlowMatch::any().with_exact(Field::Icmpv4Type, 8),
        80,
        terminal_actions(vec![Action::Output(5)]),
    ));
    for m in 0..MAC_RULES {
        t.insert(FlowEntry::new(
            FlowMatch::any().with_exact(Field::EthDst, u128::from(0x0200_0000_2000 + m)),
            70,
            terminal_actions(vec![Action::Output((m % 4) as u32)]),
        ));
    }
    t.insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));
    p
}

/// `flows` distinct flows in a 2:1:1:1 mix of the four traffic classes of
/// [`port_pipeline`]: TCP port flows, UDP port flows, ICMP flows, and
/// odd-port TCP flows answered by the `eth_dst` rules.
pub fn port_traffic(flows: usize) -> FlowSet {
    let protos: Vec<Packet> = (0..flows)
        .map(|f| {
            let dst = 1000 + (f as u16 % PORTS_PER_PROTO);
            let src = 1024 + (f / PORTS_PER_PROTO as usize) as u16;
            match f % 5 {
                0 | 1 => PacketBuilder::tcp().tcp_dst(dst).tcp_src(src).build(),
                2 => PacketBuilder::udp().udp_dst(dst).udp_src(src).build(),
                3 => PacketBuilder::icmp()
                    .ipv4_src([10, (f >> 10) as u8, (f >> 2) as u8, f as u8])
                    .build(),
                _ => PacketBuilder::tcp()
                    .eth_dst(
                        pkt::MacAddr::from_u64(0x0200_0000_2000 + (f as u64 % MAC_RULES)).octets(),
                    )
                    .tcp_dst(5000)
                    .tcp_src(src)
                    .build(),
            }
        })
        .collect();
    FlowSet::new(protos, 0xfa57)
}

/// Builds the packet ring a timed loop cycles over: every flow once, padded
/// to a multiple of the burst size.
pub fn build_ring(traffic: &FlowSet) -> Vec<Packet> {
    let n = traffic.active_flows().max(BURST).div_ceil(BURST) * BURST;
    (0..n).map(|i| traffic.packet(i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ovsdp::OvsDatapath;

    #[test]
    fn workload_reaches_cache_steady_state() {
        let dp = OvsDatapath::new(port_pipeline());
        let mut ring = build_ring(&port_traffic(320));
        assert_eq!(ring.len() % BURST, 0);
        for p in ring.iter_mut() {
            dp.process(p);
        }
        // Megaflows aggregate flows: far fewer entries than flows, spread
        // over the four traffic classes.
        assert!(dp.megaflow_count() >= 100 && dp.megaflow_count() <= 200);
        // Warm again: everything must now be answered by the caches.
        let slow_before = dp.stats.slowpath_hits.packets();
        for p in ring.iter_mut() {
            dp.process(p);
        }
        assert_eq!(dp.stats.slowpath_hits.packets(), slow_before);
    }
}
