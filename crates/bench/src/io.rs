//! Multi-port I/O measurement for `fig_io` / `BENCH_io.json`.
//!
//! Three experiments over the [`shard::MultiPortSwitch`] front end:
//!
//! * **Port × shard matrix** — wall throughput of the full runtime (per-port
//!   dispatchers → per-(port, shard) SPSC ring matrix → worker shards →
//!   vectored egress) with feeder and drainer threads emulating the wire on
//!   every port. On a host with fewer cores than threads the absolute pps
//!   time-slices; the committed JSON records the machine so readers can
//!   judge the ratios.
//! * **Egress TX styles** — the same frame stream pushed through a port's
//!   TX ring per-packet (`Port::tx`, one reservation + one publication +
//!   one counter RMW per frame) versus vectored (`Port::tx_burst`, one of
//!   each per burst). Single-threaded move-cycle, no clones: this isolates
//!   the ring-protocol cost that egress batching amortises and is the
//!   artifact's batching-speedup evidence.
//! * **Classifier steering** — hash-only dispatch versus a classifier
//!   program pinning a traffic slice to one shard, measuring what the
//!   pre-shard match program costs (or saves) end to end.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use netdev::classify::Classifier;
use netdev::{Port, PortSet, BURST_SIZE};
use openflow::instruction::terminal_actions;
use openflow::{Action, Field, FlowEntry, FlowMatch, Pipeline};
use pkt::builder::PacketBuilder;
use pkt::Packet;
use shard::{BackendSpec, MultiPortConfig, MultiPortSwitch};

/// Distinct TCP destination ports (= pipeline entries) in the workload.
pub const IO_DSTS: u16 = 16;

/// One experiment cell: a port/shard/egress-mode/classifier combination.
#[derive(Clone)]
pub struct IoConfig {
    /// Ingress (and egress) port count.
    pub ports: u32,
    /// Worker shard count.
    pub shards: usize,
    /// Vectored egress flush (`true`) or per-packet TX baseline.
    pub egress_batching: bool,
    /// Pre-shard classifier program (empty = hash-only).
    pub classifier: Classifier,
    /// Active flow count, spread over the ingress ports.
    pub flows: u16,
    /// Unmeasured settle time before the window opens.
    pub warmup_ms: u64,
    /// Measured window length.
    pub duration_ms: u64,
}

/// What one cell measured.
pub struct IoResult {
    /// Wall packets per second through the shards during the window.
    pub pps: f64,
    /// Packets processed inside the window.
    pub processed: u64,
    /// Egress frames per vectored flush over the whole run (0 when egress
    /// batching is off — that mode never flushes).
    pub egress_batch_factor: f64,
}

/// The matrix workload: `IO_DSTS` TCP destination ports round-robined over
/// the switch's egress ports, `in_port`-independent (the differential suite
/// proves the front end is invisible; here we just need cache-friendly
/// steady state on every backend).
pub fn io_pipeline(ports: u32) -> Pipeline {
    let mut p = Pipeline::with_tables(1);
    let t = p.table_mut(0).unwrap();
    for i in 0..IO_DSTS {
        t.insert(FlowEntry::new(
            FlowMatch::any().with_exact(Field::TcpDst, u128::from(1000 + i)),
            100,
            terminal_actions(vec![Action::Output(u32::from(i) % ports)]),
        ));
    }
    t.insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));
    p
}

/// Flow `f`'s template frame.
fn io_packet(f: u16) -> Packet {
    PacketBuilder::tcp()
        .tcp_dst(1000 + (f % IO_DSTS))
        .tcp_src(3000 + f)
        .build()
}

/// Runs one cell: launches the switch over `cfg.ports` ports, surrounds it
/// with one feeder and one drainer thread per port (the "wire"), and
/// measures processed packets over the window.
pub fn measure_io_throughput(spec: BackendSpec, cfg: &IoConfig) -> IoResult {
    let ports = Arc::new(PortSet::with_ports(cfg.ports));
    let switch = MultiPortSwitch::launch(
        spec,
        io_pipeline(cfg.ports),
        MultiPortConfig {
            shards: cfg.shards,
            egress_batching: cfg.egress_batching,
            classifier: cfg.classifier.clone(),
            ..MultiPortConfig::default()
        },
        Arc::clone(&ports),
    )
    .expect("io pipeline compiles");

    let stop = Arc::new(AtomicBool::new(false));
    let mut wire = Vec::new();
    for pid in 0..cfg.ports {
        // Feeder: offers this port's flow slice in bursts, cloning from
        // templates (load generation is allowed to allocate; the switch
        // under test is not).
        let templates: Vec<Packet> = (0..cfg.flows)
            .filter(|f| u32::from(*f) % cfg.ports == pid)
            .map(io_packet)
            .collect();
        let port = Arc::clone(ports.get(pid).expect("port exists"));
        let feeder_stop = Arc::clone(&stop);
        wire.push(thread::spawn(move || {
            let mut staging: Vec<Packet> = Vec::with_capacity(BURST_SIZE);
            let mut next = 0usize;
            while !feeder_stop.load(Ordering::Relaxed) {
                while staging.len() < BURST_SIZE {
                    staging.push(templates[next % templates.len()].clone());
                    next += 1;
                }
                port.inject_burst(&mut staging);
                if !staging.is_empty() {
                    thread::yield_now();
                }
            }
        }));
        // Drainer: empties the port's TX ring so egress never backpressures.
        let port = Arc::clone(ports.get(pid).expect("port exists"));
        let drainer_stop = Arc::clone(&stop);
        wire.push(thread::spawn(move || {
            let mut sink: Vec<Packet> = Vec::with_capacity(BURST_SIZE);
            while !drainer_stop.load(Ordering::Relaxed) {
                if port.tx_drain_into(&mut sink, BURST_SIZE) == 0 {
                    thread::yield_now();
                }
                sink.clear();
            }
        }));
    }

    thread::sleep(Duration::from_millis(cfg.warmup_ms));
    let processed_before = switch.processed();
    let window_start = Instant::now();
    thread::sleep(Duration::from_millis(cfg.duration_ms));
    let processed = switch.processed() - processed_before;
    let elapsed = window_start.elapsed().as_secs_f64();

    stop.store(true, Ordering::Relaxed);
    for handle in wire {
        handle.join().expect("wire thread");
    }
    let report = switch.shutdown();
    let flushes: u64 = report.load_per_shard.iter().map(|l| l.egress_flushes).sum();
    let frames: u64 = report.load_per_shard.iter().map(|l| l.egress_frames).sum();
    IoResult {
        pps: processed as f64 / elapsed,
        processed,
        egress_batch_factor: if flushes == 0 {
            0.0
        } else {
            frames as f64 / flushes as f64
        },
    }
}

/// The TX-style comparison.
pub struct TxStyles {
    /// Nanoseconds per frame pushing one packet at a time (`Port::tx`).
    pub per_packet_ns: f64,
    /// Nanoseconds per frame with one vectored `tx_burst` per burst.
    pub vectored_ns: f64,
    /// `per_packet_ns / vectored_ns` — the egress-batching speedup.
    pub speedup: f64,
}

/// Times `frames` frames through a port's TX ring in both styles. The same
/// `BURST_SIZE` packets cycle by move (push → drain → push), so neither
/// style allocates inside its timed loop; the difference is purely the ring
/// reservation/publication and counter traffic per frame versus per burst.
pub fn measure_tx_styles(frames: usize) -> TxStyles {
    let port = Port::with_depth(0, 2 * BURST_SIZE);
    let mut burst: Vec<Packet> = (0..BURST_SIZE as u16).map(io_packet).collect();
    let mut drained: Vec<Packet> = Vec::with_capacity(BURST_SIZE);
    let rounds = frames / BURST_SIZE;

    // Warm both paths once outside timing.
    for style in 0..2 {
        for _ in 0..2 {
            if style == 0 {
                for packet in burst.drain(..) {
                    assert!(port.tx(packet));
                }
            } else {
                port.tx_burst(&mut burst);
            }
            while port.tx_drain_into(&mut burst, BURST_SIZE) > 0 {}
        }
    }

    let start = Instant::now();
    for _ in 0..rounds {
        for packet in burst.drain(..) {
            assert!(port.tx(packet));
        }
        while port.tx_drain_into(&mut burst, BURST_SIZE) > 0 {}
    }
    let per_packet_ns = start.elapsed().as_nanos() as f64 / (rounds * BURST_SIZE) as f64;

    let start = Instant::now();
    for _ in 0..rounds {
        port.tx_burst(&mut burst);
        while port.tx_drain_into(&mut drained, BURST_SIZE) > 0 {}
        std::mem::swap(&mut burst, &mut drained);
    }
    let vectored_ns = start.elapsed().as_nanos() as f64 / (rounds * BURST_SIZE) as f64;

    TxStyles {
        per_packet_ns,
        vectored_ns,
        speedup: per_packet_ns / vectored_ns,
    }
}

/// A classifier program steering one destination port's traffic (1/16th of
/// the flows) to shard 0 — the "controller traffic pinned off the data
/// shards" deployment the README describes.
pub fn steering_classifier() -> Classifier {
    Classifier::new().rule(
        netdev::MatchSpec::any().ip_proto(6).l4_dst(1000),
        netdev::ClassifyAction::Steer(0),
    )
}
