//! # bench_harness — shared machinery for regenerating the paper's figures
//!
//! Every table and figure of the evaluation has a dedicated binary under
//! `src/bin/` (`fig03_*` … `fig20_*`, `tab_decompose_acl`); this library
//! holds what they share: a datapath abstraction covering the three switch
//! architectures under test, throughput/latency measurement loops, the
//! multi-core runner for Fig. 19, and plain-text series/table rendering so
//! every binary prints the same self-describing report format.
//!
//! The binaries honour the `ESWITCH_BENCH_QUICK=1` environment variable,
//! which shrinks packet counts and sweep ranges so the whole figure set can
//! be regenerated in seconds (CI) instead of minutes (faithful runs).

pub mod conntrack;
pub mod datapath;
pub mod fastpath;
pub mod io;
pub mod measure;
pub mod multicore;
pub mod reactive;
pub mod report;
pub mod updates;

pub use datapath::{AnySwitch, SwitchKind};
pub use io::{measure_io_throughput, measure_tx_styles, IoConfig, IoResult, TxStyles};
pub use measure::{measure_latency_cycles, measure_throughput, Measurement};
pub use multicore::{
    measure_multicore_throughput, measure_sharded_throughput, measure_skewed_throughput,
    SkewConfig, SkewResult,
};
pub use reactive::{measure_reactive_load, ReactiveLoadConfig, ReactiveLoadPoint};
pub use report::{render_series_table, Series};
pub use updates::{measure_update_load, UpdateLoadConfig, UpdateLoadPoint};

/// True when quick mode is requested (smaller packet counts and sweeps).
pub fn quick_mode() -> bool {
    std::env::var("ESWITCH_BENCH_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// Packets measured per data point (after warm-up), honouring quick mode.
pub fn packets_per_point() -> usize {
    if quick_mode() {
        20_000
    } else {
        300_000
    }
}

/// Warm-up packets per data point.
pub fn warmup_packets() -> usize {
    if quick_mode() {
        5_000
    } else {
        50_000
    }
}

/// The standard active-flow sweep, truncated in quick mode.
pub fn flow_sweep(include_million: bool) -> Vec<usize> {
    let full = workloads::traffic::active_flow_sweep(include_million && !quick_mode());
    if quick_mode() {
        full.into_iter().filter(|f| *f <= 10_000).collect()
    } else {
        full
    }
}

/// Prints the standard report header: what is being reproduced and on what
/// machine (the Table 1 analogue for this run).
pub fn print_header(figure: &str, description: &str) {
    let profile = cpumodel::SystemProfile::paper_sut();
    println!("================================================================");
    println!("{figure}: {description}");
    println!("----------------------------------------------------------------");
    println!("reference platform (paper Table 1):");
    for line in profile.render_datasheet().lines() {
        println!("  {line}");
    }
    println!(
        "this run: {} logical cores, quick_mode={}",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        quick_mode()
    );
    println!("================================================================");
}
