//! Criterion companion of the `fastpath` sweep binary: statistically solid
//! per-burst timings of the cache hierarchy at the three fixed operating
//! points the sweep records to `BENCH_fastpath.json`, plus a per-packet vs
//! batched comparison that shows what burst processing buys on its own.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bench_harness::fastpath::{build_ring, port_pipeline, port_traffic, BURST};
use openflow::NullController;
use ovsdp::{OvsConfig, OvsDatapath};

fn ovs(use_microflow: bool) -> OvsDatapath {
    OvsDatapath::with_config(
        port_pipeline(),
        OvsConfig {
            use_microflow,
            ..OvsConfig::default()
        },
        Box::new(NullController::new()),
    )
}

/// One burst through the cache hierarchy at each Fig. 14 operating point.
fn bench_fastpath_burst(c: &mut Criterion) {
    let mut group = c.benchmark_group("fastpath_burst32");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (label, use_microflow, flows) in [
        ("megaflow_hit", true, 16_384usize),
        ("microflow_hit", true, 1_024),
        ("tss_no_emc", false, 8_192),
    ] {
        let dp = ovs(use_microflow);
        let mut ring = build_ring(&port_traffic(flows));
        let mut verdicts = Vec::with_capacity(BURST);
        for chunk in ring.chunks_mut(BURST) {
            dp.process_batch_into(chunk, &mut verdicts);
        }
        let bursts = ring.len() / BURST;
        let mut next = 0usize;
        group.bench_with_input(BenchmarkId::from_parameter(label), &flows, |b, _| {
            b.iter(|| {
                let start = (next % bursts) * BURST;
                next += 1;
                dp.process_batch_into(&mut ring[start..start + BURST], &mut verdicts);
                std::hint::black_box(verdicts.len());
            })
        });
    }
    group.finish();
}

/// Per-packet `process` vs burst `process_batch_into` on the same warmed
/// datapath — the cost of per-packet lock traffic and key churn.
fn bench_batch_vs_per_packet(c: &mut Criterion) {
    let mut group = c.benchmark_group("fastpath_batch_vs_per_packet");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    let dp = ovs(false);
    let mut ring = build_ring(&port_traffic(2_048));
    let mut verdicts = Vec::with_capacity(BURST);
    for chunk in ring.chunks_mut(BURST) {
        dp.process_batch_into(chunk, &mut verdicts);
    }
    let bursts = ring.len() / BURST;

    let mut next = 0usize;
    group.bench_with_input(BenchmarkId::from_parameter("per_packet32"), &(), |b, _| {
        b.iter(|| {
            let start = (next % bursts) * BURST;
            next += 1;
            for p in &mut ring[start..start + BURST] {
                std::hint::black_box(dp.process(p));
            }
        })
    });
    let mut next = 0usize;
    group.bench_with_input(BenchmarkId::from_parameter("batch32"), &(), |b, _| {
        b.iter(|| {
            let start = (next % bursts) * BURST;
            next += 1;
            dp.process_batch_into(&mut ring[start..start + BURST], &mut verdicts);
            std::hint::black_box(verdicts.len());
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fastpath_burst, bench_batch_vs_per_packet);
criterion_main!(benches);
