//! Criterion benchmarks: per-packet cost of the three switch architectures on
//! the four evaluation use cases (the single-point companions of Figs. 10–13)
//! and of the individual table templates (the Fig. 9 companion).
//!
//! These complement the figure harness binaries in `src/bin/`: Criterion
//! gives statistically solid per-packet timings for a fixed operating point,
//! while the binaries sweep the full parameter ranges of the figures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bench_harness::{AnySwitch, SwitchKind};
use workloads::gateway::GatewayConfig;
use workloads::l2::L2Config;
use workloads::l3::L3Config;
use workloads::load_balancer::LoadBalancerConfig;
use workloads::FlowSet;

const ACTIVE_FLOWS: usize = 10_000;
const WARMUP_PACKETS: usize = 20_000;

fn bench_use_case(
    c: &mut Criterion,
    group_name: &str,
    make_pipeline: impl Fn() -> openflow::Pipeline,
    traffic: &FlowSet,
    kinds: &[SwitchKind],
) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for kind in kinds {
        let switch = AnySwitch::build(*kind, make_pipeline());
        for i in 0..WARMUP_PACKETS {
            switch.process(&mut traffic.packet(i));
        }
        let mut i = WARMUP_PACKETS;
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), kind, |b, _| {
            b.iter(|| {
                let mut packet = traffic.packet(i);
                i += 1;
                std::hint::black_box(switch.process(&mut packet))
            })
        });
    }
    group.finish();
}

/// Fig. 10 companion: L2 switching, 1K MAC entries, 10K active flows.
fn bench_l2(c: &mut Criterion) {
    let config = L2Config {
        table_size: 1_000,
        ports: 4,
        seed: 1,
    };
    let traffic = workloads::l2::build_traffic(&config, ACTIVE_FLOWS);
    bench_use_case(
        c,
        "fig10_l2_per_packet",
        || workloads::l2::build_pipeline(&config),
        &traffic,
        &[SwitchKind::Eswitch, SwitchKind::Ovs, SwitchKind::Direct],
    );
}

/// Fig. 11 companion: L3 routing, 1K prefixes, 10K active flows.
fn bench_l3(c: &mut Criterion) {
    let config = L3Config {
        prefixes: 1_000,
        next_hops: 8,
        seed: 2,
    };
    let traffic = workloads::l3::build_traffic(&config, ACTIVE_FLOWS);
    bench_use_case(
        c,
        "fig11_l3_per_packet",
        || workloads::l3::build_pipeline(&config),
        &traffic,
        &[SwitchKind::Eswitch, SwitchKind::Ovs],
    );
}

/// Fig. 12 companion: load balancer, 100 services, 10K active flows.
fn bench_load_balancer(c: &mut Criterion) {
    let config = LoadBalancerConfig {
        services: 100,
        seed: 3,
    };
    let traffic = workloads::load_balancer::build_traffic(&config, ACTIVE_FLOWS);
    bench_use_case(
        c,
        "fig12_lb_per_packet",
        || workloads::load_balancer::build_pipeline(&config),
        &traffic,
        &[SwitchKind::EswitchDecomposed, SwitchKind::Ovs],
    );
}

/// Fig. 13 companion: access gateway, 10K active flows.
fn bench_gateway(c: &mut Criterion) {
    let config = GatewayConfig {
        routing_prefixes: 10_000,
        ..GatewayConfig::default()
    };
    let traffic = workloads::gateway::build_traffic(&config, ACTIVE_FLOWS);
    bench_use_case(
        c,
        "fig13_gateway_per_packet",
        || workloads::gateway::build_pipeline(&config),
        &traffic,
        &[SwitchKind::Eswitch, SwitchKind::Ovs],
    );
}

/// Fig. 9 companion: per-lookup cost of the table templates at 1–9 entries.
fn bench_templates(c: &mut Criterion) {
    use eswitch::analysis::CompilerConfig;
    use openflow::flow_match::FlowMatch;
    use openflow::instruction::terminal_actions;
    use openflow::{Action, Field, FlowEntry, Pipeline};
    use pkt::builder::PacketBuilder;

    let mut group = c.benchmark_group("fig09_template_lookup");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for entries in [2usize, 4, 8] {
        let mut pipeline = Pipeline::with_tables(1);
        for n in 1..=entries as u16 {
            pipeline.table_mut(0).unwrap().insert(FlowEntry::new(
                FlowMatch::any()
                    .with_exact(Field::VlanVid, 3)
                    .with_exact(
                        Field::Ipv4Src,
                        u128::from(u32::from_be_bytes([10, 0, 0, 3])),
                    )
                    .with_exact(Field::IpProto, 17)
                    .with_exact(Field::UdpDst, u128::from(n)),
                100,
                terminal_actions(vec![Action::Output(1)]),
            ));
        }
        let mut packet = PacketBuilder::udp()
            .vlan(3)
            .ipv4_src([10, 0, 0, 3])
            .udp_dst(entries as u16)
            .build();
        for (label, limit) in [("direct", usize::MAX), ("hash", 0)] {
            let dp = eswitch::compile::compile(
                &pipeline,
                &CompilerConfig {
                    direct_code_limit: limit,
                    ..CompilerConfig::default()
                },
            )
            .expect("compiles");
            group.bench_with_input(BenchmarkId::new(label, entries), &entries, |b, _| {
                b.iter(|| std::hint::black_box(dp.process(&mut packet)))
            });
        }
    }
    group.finish();
}

/// Fig. 17 companion: cost of one incremental flow-mod against a compiled
/// MAC table vs the OVS path (which must invalidate its caches).
fn bench_updates(c: &mut Criterion) {
    use openflow::flow_match::FlowMatch;
    use openflow::instruction::terminal_actions;
    use openflow::{Action, Field, FlowMod};

    let mut group = c.benchmark_group("fig17_single_flow_mod");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));
    let config = L2Config {
        table_size: 1_000,
        ports: 4,
        seed: 4,
    };
    for kind in [SwitchKind::Eswitch, SwitchKind::Ovs] {
        let switch = AnySwitch::build(kind, workloads::l2::build_pipeline(&config));
        let mut next_mac: u64 = 0x0600_0000_0000;
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, _| {
            b.iter(|| {
                next_mac += 1;
                let fm = FlowMod::add(
                    0,
                    FlowMatch::any().with_exact(Field::EthDst, u128::from(next_mac)),
                    100,
                    terminal_actions(vec![Action::Output(1)]),
                );
                switch.flow_mod(&fm);
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_l2,
    bench_l3,
    bench_load_balancer,
    bench_gateway,
    bench_templates,
    bench_updates
);
criterion_main!(benches);
