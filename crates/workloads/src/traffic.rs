//! Traffic mixes: pools of flows replayed in configurable order.
//!
//! The evaluation's main knob is the number of *active flows*: how many
//! distinct transport connections the generated traffic cycles through. Few
//! active flows mean high temporal locality (flow caches stay warm); many
//! active flows remove that locality, which is exactly the regime where the
//! flow-caching architecture degrades and the compiled datapath does not.

use openflow::ct::CtTuple;
use pkt::builder::PacketBuilder;
use pkt::ipv4::Ipv4Addr4;
use pkt::parser::{parse, ParseDepth};
use pkt::{Packet, TcpFlags};
use rand::prelude::*;

/// A pool of flow prototypes plus a replay order.
///
/// Each *flow* is one fully built packet prototype (same header tuple every
/// time it is replayed). Replay visits flows in a pseudo-random but
/// deterministic order so that consecutive packets usually belong to
/// different flows — the worst realistic case for per-connection caches, as
/// in the paper's NFPA-generated traces.
#[derive(Debug, Clone)]
pub struct FlowSet {
    prototypes: Vec<Packet>,
    order: Vec<u32>,
}

impl FlowSet {
    /// Builds a flow set from prototypes, shuffling the replay order with the
    /// given seed.
    pub fn new(prototypes: Vec<Packet>, seed: u64) -> Self {
        assert!(!prototypes.is_empty(), "a flow set needs at least one flow");
        let mut order: Vec<u32> = (0..prototypes.len() as u32).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        order.shuffle(&mut rng);
        FlowSet { prototypes, order }
    }

    /// Builds a flow set replayed in exactly the given prototype order
    /// (used by the arrival-order experiments of Fig. 3).
    pub fn in_order(prototypes: Vec<Packet>) -> Self {
        assert!(!prototypes.is_empty(), "a flow set needs at least one flow");
        let order = (0..prototypes.len() as u32).collect();
        FlowSet { prototypes, order }
    }

    /// Number of distinct flows (the "active flows" axis value).
    pub fn active_flows(&self) -> usize {
        self.prototypes.len()
    }

    /// The i-th packet of the replay cycle (wraps around).
    pub fn packet(&self, i: usize) -> Packet {
        let idx = self.order[i % self.order.len()] as usize;
        self.prototypes[idx].clone()
    }

    /// Generates `count` packets following the replay order.
    pub fn burst(&self, start: usize, count: usize) -> Vec<Packet> {
        (start..start + count).map(|i| self.packet(i)).collect()
    }

    /// Iterates one full cycle over every flow exactly once.
    pub fn one_cycle(&self) -> impl Iterator<Item = Packet> + '_ {
        (0..self.active_flows()).map(|i| self.packet(i))
    }

    /// Average frame length of the prototypes in bytes.
    pub fn mean_frame_len(&self) -> f64 {
        self.prototypes.iter().map(|p| p.len() as f64).sum::<f64>() / self.prototypes.len() as f64
    }
}

/// Synthesizes the reply to a forwarded frame: same connection, opposite
/// direction, arriving on `in_port`.
///
/// This is the responder half of the bidirectional (request/reply) traffic
/// the stateful use cases need: the caller runs a request through the
/// datapath, then answers *the frame as forwarded* — so NAT and LB rewrites
/// are naturally reflected back, exactly as a real peer answers the packet
/// it received, not the packet the client sent. TCP replies carry SYN+ACK
/// (the handshake answer that moves the tracked connection to
/// `ESTABLISHED`); UDP replies are plain datagrams. Returns `None` for
/// frames conntrack cannot track (non-IPv4 or non-TCP/UDP).
pub fn reply_to(frame: &Packet, in_port: u32) -> Option<Packet> {
    let headers = parse(frame.data(), ParseDepth::L4);
    let t = CtTuple::from_frame(frame.data(), &headers)?;
    let builder = if t.proto == 6 {
        PacketBuilder::tcp()
            .tcp_src(t.dst_port)
            .tcp_dst(t.src_port)
            .tcp_flags(TcpFlags {
                syn: true,
                ack: true,
                ..Default::default()
            })
    } else {
        PacketBuilder::udp().udp_src(t.dst_port).udp_dst(t.src_port)
    };
    Some(
        builder
            .ipv4_src(Ipv4Addr4::from_u32(t.dst_ip))
            .ipv4_dst(Ipv4Addr4::from_u32(t.src_ip))
            .in_port(in_port)
            .build(),
    )
}

/// Standard sweep of active-flow counts used across the packet-rate figures
/// (1, 10, 100, 1K, 10K, 100K), optionally extended to 1M for the gateway.
pub fn active_flow_sweep(include_million: bool) -> Vec<usize> {
    let mut sweep = vec![1, 10, 100, 1_000, 10_000, 100_000];
    if include_million {
        sweep.push(1_000_000);
    }
    sweep
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkt::builder::PacketBuilder;

    fn flows(n: u16) -> Vec<Packet> {
        (0..n)
            .map(|i| PacketBuilder::udp().udp_src(1000 + i).build())
            .collect()
    }

    #[test]
    fn replay_cycles_over_all_flows() {
        let set = FlowSet::new(flows(10), 42);
        assert_eq!(set.active_flows(), 10);
        let mut seen = std::collections::HashSet::new();
        for i in 0..10 {
            seen.insert(openflow::FlowKey::extract(&set.packet(i)).udp_src);
        }
        assert_eq!(seen.len(), 10, "one cycle must visit every flow");
        // Wrap-around repeats the same sequence.
        assert_eq!(set.packet(0), set.packet(10));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = FlowSet::new(flows(32), 7);
        let b = FlowSet::new(flows(32), 7);
        let c = FlowSet::new(flows(32), 8);
        assert_eq!(a.burst(0, 16), b.burst(0, 16));
        assert_ne!(a.burst(0, 16), c.burst(0, 16));
    }

    #[test]
    fn in_order_preserves_arrival_sequence() {
        let protos = flows(5);
        let set = FlowSet::in_order(protos.clone());
        for (i, proto) in protos.iter().enumerate() {
            assert_eq!(&set.packet(i), proto);
        }
    }

    #[test]
    fn sweep_values() {
        assert_eq!(active_flow_sweep(false).len(), 6);
        assert_eq!(*active_flow_sweep(true).last().unwrap(), 1_000_000);
    }

    #[test]
    #[should_panic(expected = "at least one flow")]
    fn empty_flow_set_rejected() {
        let _ = FlowSet::new(vec![], 0);
    }
}
