//! Synthetic routing tables.
//!
//! The paper samples its L3 tables "from a real Internet router". A real
//! table cannot ship with this repository, so this module generates tables
//! with the structural properties the experiments depend on: a realistic
//! prefix-length distribution (dominated by /24s, with a fat /16–/23 band and
//! a thin tail of short prefixes and host routes), disjoint-enough prefixes
//! that the table's priority structure is LPM-consistent, and a matching
//! address sampler so generated traffic actually hits installed routes.

use pkt::ipv4::{prefix_mask, Ipv4Addr4};
use rand::prelude::*;

/// Configuration of the synthetic routing table.
#[derive(Debug, Clone, Copy)]
pub struct PrefixTableConfig {
    /// Number of prefixes to generate.
    pub prefixes: usize,
    /// RNG seed (tables are deterministic given the seed).
    pub seed: u64,
    /// Number of distinct next hops (output ports) to spread routes over.
    pub next_hops: u32,
}

impl Default for PrefixTableConfig {
    fn default() -> Self {
        PrefixTableConfig {
            prefixes: 10_000,
            seed: 0x5eed,
            next_hops: 16,
        }
    }
}

/// One route: prefix, length and the output port it forwards to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Network address (already masked to the prefix length).
    pub prefix: Ipv4Addr4,
    /// Prefix length in bits.
    pub len: u8,
    /// Output port (next hop).
    pub next_hop: u32,
}

/// Empirical-ish prefix length distribution: (length, relative weight).
/// Roughly mirrors the shape of a default-free zone table: >50% /24, a broad
/// /19–/23 band, some /16s and a small number of short prefixes.
const LENGTH_WEIGHTS: [(u8, u32); 10] = [
    (8, 1),
    (12, 2),
    (16, 10),
    (18, 5),
    (19, 6),
    (20, 8),
    (21, 8),
    (22, 12),
    (23, 10),
    (24, 55),
];

/// Samples a routing table.
///
/// Duplicate (prefix, length) pairs are discarded, so the returned table can
/// be slightly smaller than requested for very large sizes; the experiments
/// only depend on the order of magnitude.
pub fn sample_routing_table(config: &PrefixTableConfig) -> Vec<Route> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let total_weight: u32 = LENGTH_WEIGHTS.iter().map(|(_, w)| w).sum();
    let mut seen = std::collections::HashSet::new();
    let mut routes = Vec::with_capacity(config.prefixes);
    while routes.len() < config.prefixes {
        let mut pick = rng.gen_range(0..total_weight);
        let mut len = 24;
        for (l, w) in LENGTH_WEIGHTS {
            if pick < w {
                len = l;
                break;
            }
            pick -= w;
        }
        // Stay inside 1.0.0.0/8 .. 223.0.0.0/8 (unicast space).
        let addr: u32 = rng.gen_range(0x0100_0000..0xe000_0000);
        let prefix = addr & prefix_mask(len);
        if !seen.insert((prefix, len)) {
            continue;
        }
        routes.push(Route {
            prefix: Ipv4Addr4::from_u32(prefix),
            len,
            next_hop: rng.gen_range(0..config.next_hops.max(1)),
        });
    }
    routes
}

/// Samples `count` destination addresses that are covered by the given
/// routing table (each address falls inside a randomly chosen route), so the
/// generated traffic exercises the LPM rather than the table-miss path.
pub fn sample_covered_addresses(routes: &[Route], count: usize, seed: u64) -> Vec<Ipv4Addr4> {
    assert!(
        !routes.is_empty(),
        "cannot sample addresses from an empty table"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let route = routes[rng.gen_range(0..routes.len())];
            let host_bits = 32 - u32::from(route.len);
            let host: u32 = if host_bits == 0 {
                0
            } else {
                rng.gen_range(0..(1u64 << host_bits)) as u32
            };
            Ipv4Addr4::from_u32(route.prefix.to_u32() | host)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_requested_size_and_is_deterministic() {
        let config = PrefixTableConfig {
            prefixes: 2_000,
            seed: 7,
            next_hops: 8,
        };
        let a = sample_routing_table(&config);
        let b = sample_routing_table(&config);
        assert_eq!(a.len(), 2_000);
        assert_eq!(a, b);
        assert!(a.iter().all(|r| r.next_hop < 8));
        assert!(a
            .iter()
            .all(|r| r.prefix.to_u32() & prefix_mask(r.len) == r.prefix.to_u32()));
    }

    #[test]
    fn length_distribution_is_dominated_by_long_prefixes() {
        let routes = sample_routing_table(&PrefixTableConfig {
            prefixes: 5_000,
            seed: 1,
            next_hops: 4,
        });
        let slash24 = routes.iter().filter(|r| r.len == 24).count();
        let short = routes.iter().filter(|r| r.len <= 16).count();
        assert!(slash24 > routes.len() / 3, "/24 share too small: {slash24}");
        assert!(short < routes.len() / 4, "short prefixes overrepresented");
    }

    #[test]
    fn covered_addresses_fall_inside_routes() {
        let routes = sample_routing_table(&PrefixTableConfig {
            prefixes: 500,
            seed: 2,
            next_hops: 4,
        });
        let addrs = sample_covered_addresses(&routes, 1_000, 3);
        assert_eq!(addrs.len(), 1_000);
        for addr in addrs {
            assert!(
                routes.iter().any(|r| addr.in_prefix(r.prefix, r.len)),
                "{addr} not covered by any route"
            );
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_tables() {
        let a = sample_routing_table(&PrefixTableConfig {
            prefixes: 100,
            seed: 1,
            next_hops: 4,
        });
        let b = sample_routing_table(&PrefixTableConfig {
            prefixes: 100,
            seed: 2,
            next_hops: 4,
        });
        assert_ne!(a, b);
    }
}
