//! # workloads — evaluation use cases and traffic generation
//!
//! The paper evaluates ESWITCH and OVS on four use cases drawn from
//! operational OpenFlow deployments (§4.1): L2 switching, L3 routing, a web
//! load balancer and a telco access gateway (vPE). This crate builds those
//! pipelines as plain [`openflow::Pipeline`] values — consumable by every
//! datapath in the workspace — together with the matching traffic mixes
//! (parameterised by the number of *active flows*, the x-axis of most
//! figures), a synthetic routing-table sampler standing in for the paper's
//! "real Internet router" tables, and a snort-like ACL generator for the
//! table-decomposition stress test.

pub mod acl;
pub mod prefixes;
pub mod traffic;
pub mod usecases;

pub use acl::{generate_acl_table, AclConfig};
pub use prefixes::{sample_routing_table, PrefixTableConfig};
pub use traffic::{reply_to, FlowSet};
pub use usecases::gateway::{self, GatewayConfig};
pub use usecases::l2::{self, L2Config};
pub use usecases::l3::{self, L3Config};
pub use usecases::l4_lb::{self, L4LbConfig};
pub use usecases::load_balancer::{self, LoadBalancerConfig};
pub use usecases::snat_edge::{self, SnatEdgeConfig};
pub use usecases::stateful_acl_gateway::{self, StatefulAclConfig};
