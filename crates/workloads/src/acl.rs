//! Snort-like ACL generation for the table-decomposition stress test (§3.2).
//!
//! The paper feeds its decomposer "a complete firewall setup, consisting of
//! arbitrarily wildcarded five-tuple ACLs ('snort community rules v2.9',
//! stripped to OpenFlow compatible rules)": 72 active rules, extended to 369
//! with obsolete ones. The rule set itself cannot be redistributed, so this
//! generator produces structurally similar rules: five-tuple matches
//! (ip_src, ip_dst, ip_proto, src port, dst port) where every field is either
//! an exact value drawn from a small realistic pool or a full wildcard — the
//! same restricted shape the simplified decomposition algorithm of Fig. 6
//! handles.

use openflow::flow_match::FlowMatch;
use openflow::instruction::terminal_actions;
use openflow::{Action, Field, FlowEntry, FlowTable};
use rand::prelude::*;

/// Configuration of the generated ACL.
#[derive(Debug, Clone, Copy)]
pub struct AclConfig {
    /// Number of rules to generate.
    pub rules: usize,
    /// RNG seed.
    pub seed: u64,
    /// Probability that any given field of a rule is wildcarded.
    pub wildcard_probability: f64,
    /// Whether to append a final catch-all "pass" rule.
    pub with_catch_all: bool,
}

impl Default for AclConfig {
    fn default() -> Self {
        AclConfig {
            rules: 72,
            seed: 0xac1,
            wildcard_probability: 0.45,
            with_catch_all: true,
        }
    }
}

/// Well-known service ports a snort-style rule set concentrates on.
const SERVICE_PORTS: [u16; 12] = [21, 22, 23, 25, 53, 80, 110, 143, 443, 445, 3306, 8080];

/// Internal "protected network" hosts rules point at.
fn protected_host(rng: &mut StdRng) -> u32 {
    u32::from_be_bytes([192, 0, 2, rng.gen_range(1..=40)])
}

/// External hosts that appear in source positions.
fn external_host(rng: &mut StdRng) -> u32 {
    u32::from_be_bytes([198, 51, 100, rng.gen_range(1..=200)])
}

/// Generates the ACL as a single OpenFlow flow table (table id 0): higher
/// priority = earlier rule; rule actions alternate between drop (the firewall
/// blocks) and punting to the controller (the IDS alerts).
pub fn generate_acl_table(config: &AclConfig) -> FlowTable {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut table = FlowTable::named(0, "acl");
    let rules = config.rules as u16;
    for i in 0..rules {
        let mut m = FlowMatch::any();
        let wildcard = |rng: &mut StdRng| rng.gen_bool(config.wildcard_probability);
        if !wildcard(&mut rng) {
            m = m.with_exact(Field::Ipv4Src, u128::from(external_host(&mut rng)));
        }
        if !wildcard(&mut rng) {
            m = m.with_exact(Field::Ipv4Dst, u128::from(protected_host(&mut rng)));
        }
        let proto_tcp = rng.gen_bool(0.7);
        if !wildcard(&mut rng) {
            m = m.with_exact(Field::IpProto, if proto_tcp { 6 } else { 17 });
        }
        if !wildcard(&mut rng) {
            let field = if proto_tcp {
                Field::TcpSrc
            } else {
                Field::UdpSrc
            };
            m = m.with_exact(field, u128::from(rng.gen_range(1024..u16::MAX)));
        }
        if !wildcard(&mut rng) {
            let field = if proto_tcp {
                Field::TcpDst
            } else {
                Field::UdpDst
            };
            m = m.with_exact(
                field,
                u128::from(SERVICE_PORTS[rng.gen_range(0..SERVICE_PORTS.len())]),
            );
        }
        // A rule with every field wildcarded would shadow everything below
        // it; give it at least a destination host, as real rules do.
        if m.is_empty() {
            m = m.with_exact(Field::Ipv4Dst, u128::from(protected_host(&mut rng)));
        }
        let action = if rng.gen_bool(0.6) {
            vec![Action::Drop]
        } else {
            vec![Action::ToController]
        };
        table.insert(FlowEntry::new(
            m,
            1000 + (rules - i),
            terminal_actions(action),
        ));
    }
    if config.with_catch_all {
        table.insert(FlowEntry::new(
            FlowMatch::any(),
            1,
            terminal_actions(vec![Action::Output(1)]),
        ));
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_rule_count() {
        let table = generate_acl_table(&AclConfig::default());
        assert_eq!(table.len(), 72 + 1);
        let no_catch_all = generate_acl_table(&AclConfig {
            with_catch_all: false,
            ..AclConfig::default()
        });
        assert_eq!(no_catch_all.len(), 72);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate_acl_table(&AclConfig::default());
        let b = generate_acl_table(&AclConfig::default());
        assert_eq!(a.entries(), b.entries());
        let c = generate_acl_table(&AclConfig {
            seed: 999,
            ..AclConfig::default()
        });
        assert_ne!(a.entries(), c.entries());
    }

    #[test]
    fn fields_are_exact_or_wildcard_only() {
        // The simplified decomposition exposition requires exact-or-wildcard
        // rules; the generator must respect that.
        let table = generate_acl_table(&AclConfig {
            rules: 200,
            ..AclConfig::default()
        });
        for entry in table.entries() {
            for mf in entry.flow_match.fields() {
                assert!(mf.is_exact(), "rule field {mf} not exact");
            }
        }
    }

    #[test]
    fn mix_of_wildcards_present() {
        let table = generate_acl_table(&AclConfig {
            rules: 300,
            ..AclConfig::default()
        });
        // Field-count diversity: some rules match few fields, some many.
        let counts: Vec<usize> = table.entries().iter().map(|e| e.flow_match.len()).collect();
        assert!(counts.iter().any(|c| *c <= 2));
        assert!(counts.iter().any(|c| *c >= 4));
    }

    #[test]
    fn acl_table_is_not_template_friendly_as_is() {
        // The whole point of the experiment: a raw five-tuple ACL does not
        // fit the hash or LPM templates and needs decomposition.
        let table = generate_acl_table(&AclConfig::default());
        let kind = eswitch_kind(&table);
        assert_eq!(kind, "LinkedList");
    }

    /// Tiny indirection so this crate does not depend on `eswitch` (which
    /// would create a cycle for the workspace's dependency layering): the
    /// prerequisite checks are re-derived structurally.
    fn eswitch_kind(table: &FlowTable) -> &'static str {
        let entries = table.entries();
        let first_shape: Vec<_> = entries[0]
            .flow_match
            .fields()
            .iter()
            .map(|mf| (mf.field, mf.mask))
            .collect();
        let uniform = entries.iter().all(|e| {
            e.flow_match
                .fields()
                .iter()
                .map(|mf| (mf.field, mf.mask))
                .collect::<Vec<_>>()
                == first_shape
        });
        if uniform {
            "CompoundHash"
        } else {
            "LinkedList"
        }
    }
}
