//! The four evaluation use cases of §4.1.
//!
//! Each module builds the use case's OpenFlow pipeline (consumable by every
//! datapath: the direct reference interpreter, the OVS-style cache hierarchy
//! and the ESWITCH compiler) and the matching traffic mix parameterised by
//! the number of active flows.
//!
//! | module | paper use case | pipeline shape |
//! |---|---|---|
//! | [`l2`] | Layer-2 switching | single MAC table (exact match) |
//! | [`l3`] | Layer-3 routing | single IP prefix table (LPM) |
//! | [`load_balancer`] | web front-end | single heterogeneous table (Fig. 7a), decomposable into Fig. 7b |
//! | [`gateway`] | telco access gateway (vPE) | multi-stage: port/VLAN demux → per-CE NAT tables → IP routing (Fig. 8) |
//!
//! The stateful use cases exercise the conntrack subsystem with
//! bidirectional (request/reply) traffic — see [`crate::traffic::reply_to`]
//! for the responder half:
//!
//! | module | function | pipeline shape |
//! |---|---|---|
//! | [`stateful_acl_gateway`] | stateful firewall | commit on egress, established-only ingress |
//! | [`snat_edge`] | carrier-grade NAT edge | per-connection SNAT + reverse translation |
//! | [`l4_lb`] | stateful L4 load balancer | maglev backend selection pinned per connection |

pub mod gateway;
pub mod l2;
pub mod l3;
pub mod l4_lb;
pub mod load_balancer;
pub mod snat_edge;
pub mod stateful_acl_gateway;

/// Conventional port numbering shared by the use cases: port 0 faces the
/// users / internal side, port 1 faces the network / external side.
pub const PORT_USER: u32 = 0;
/// Network-facing port.
pub const PORT_NET: u32 = 1;
