//! The telco access-gateway (vPE) use case (Fig. 8).
//!
//! "Each CE is identified by a unique VLAN tag and each user is assigned a
//! per-CE unique private IP address. Table 0 separates user–network traffic
//! on a per-CE basis from network–user traffic; user–network traffic in turn
//! goes to separate per-CE tables that identify users and swap the (private)
//! source IP address with a unique public address (realizing a simple NAT)
//! and then to the Internet based on an IP routing table (Table 110). In the
//! reverse direction, packets are mapped from the public IP back to the
//! adequate combination of VLAN tag and user private address."
//!
//! Table numbering follows the paper: table 0 is the demux, tables 1..=N are
//! the per-CE NAT tables, table 110 is the IP routing table, and table 120
//! (not named in the paper) is the network→user mapping table.

use openflow::controller::FnController;
use openflow::flow_match::FlowMatch;
use openflow::instruction::{actions_then_goto, terminal_actions};
use openflow::{
    Action, Controller, ControllerDecision, Field, FlowEntry, FlowKey, FlowMod, Pipeline,
};
use pkt::builder::PacketBuilder;
use pkt::ipv4::Ipv4Addr4;
use rand::prelude::*;

use super::{PORT_NET, PORT_USER};
use crate::prefixes::{sample_covered_addresses, sample_routing_table, PrefixTableConfig, Route};
use crate::traffic::FlowSet;

/// Routing table id, as in the paper.
pub const ROUTING_TABLE: u32 = 110;
/// Network→user (downstream) mapping table id.
pub const DOWNSTREAM_TABLE: u32 = 120;

/// Configuration of the gateway use case.
#[derive(Debug, Clone, Copy)]
pub struct GatewayConfig {
    /// Number of Customer Endpoints (VLANs). The paper provisions 10.
    pub ces: usize,
    /// Users per CE. The paper provisions 20.
    pub users_per_ce: usize,
    /// Prefixes in the Internet routing table. The paper uses 10K.
    pub routing_prefixes: usize,
    /// RNG seed.
    pub seed: u64,
    /// When true, per-user NAT rules are pre-installed (proactive mode); when
    /// false they are left out and the per-CE tables punt unknown users to
    /// the controller, which installs them reactively.
    pub preinstall_users: bool,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            ces: 10,
            users_per_ce: 20,
            routing_prefixes: 10_000,
            seed: 0x6a7e,
            preinstall_users: true,
        }
    }
}

/// VLAN tag of CE `ce` (tags start at 100).
pub fn ce_vlan(ce: usize) -> u16 {
    100 + ce as u16
}

/// Private address of `user` behind CE `ce` (10.ce.user.2).
pub fn user_private_ip(ce: usize, user: usize) -> Ipv4Addr4 {
    Ipv4Addr4::new(10, ce as u8, (user / 250) as u8, (user % 250 + 2) as u8)
}

/// Public address allocated to (`ce`, `user`) (100.64.ce.user — RFC 6598
/// space standing in for the provider pool).
pub fn user_public_ip(ce: usize, user: usize) -> Ipv4Addr4 {
    Ipv4Addr4::new(
        100,
        64 + ce as u8,
        (user / 250) as u8,
        (user % 250 + 2) as u8,
    )
}

/// Per-CE NAT table id.
pub fn ce_table(ce: usize) -> u32 {
    1 + ce as u32
}

/// The gateway's routing table (exposed so traffic can target covered
/// destinations).
pub fn routes(config: &GatewayConfig) -> Vec<Route> {
    sample_routing_table(&PrefixTableConfig {
        prefixes: config.routing_prefixes,
        seed: config.seed,
        next_hops: 1, // everything leaves on the network port
    })
}

/// Installs the NAT rule pair for one user: upstream (private → public, then
/// route) and downstream (public → private, tag with the CE VLAN, out the
/// user port). Returned as flow-mods so both the proactive builder and the
/// reactive controller share the exact same rules.
pub fn user_flow_mods(ce: usize, user: usize) -> Vec<FlowMod> {
    let private = u128::from(user_private_ip(ce, user).to_u32());
    let public = u128::from(user_public_ip(ce, user).to_u32());
    vec![
        FlowMod::add(
            ce_table(ce),
            FlowMatch::any().with_exact(Field::Ipv4Src, private),
            100,
            actions_then_goto(
                vec![Action::SetField(Field::Ipv4Src, public), Action::PopVlan],
                ROUTING_TABLE,
            ),
        ),
        FlowMod::add(
            DOWNSTREAM_TABLE,
            FlowMatch::any()
                .with_exact(Field::InPort, u128::from(PORT_NET))
                .with_exact(Field::Ipv4Dst, public),
            100,
            terminal_actions(vec![
                Action::SetField(Field::Ipv4Dst, private),
                Action::PushVlan(0x8100),
                Action::SetField(Field::VlanVid, u128::from(ce_vlan(ce))),
                Action::Output(PORT_USER),
            ]),
        ),
    ]
}

/// Builds the gateway pipeline.
pub fn build_pipeline(config: &GatewayConfig) -> Pipeline {
    let mut pipeline = Pipeline::new();

    // Table 0: per-CE demux of user→network traffic, plus network→user.
    let mut t0 = openflow::FlowTable::named(0, "demux");
    for ce in 0..config.ces {
        t0.insert(FlowEntry::new(
            FlowMatch::any()
                .with_exact(Field::InPort, u128::from(PORT_USER))
                .with_exact(Field::VlanVid, u128::from(ce_vlan(ce))),
            200,
            vec![openflow::Instruction::GotoTable(ce_table(ce))],
        ));
    }
    // Everything that is not tagged user traffic of a known CE (i.e. the
    // network→user direction, plus stray frames) falls through to the
    // downstream mapping table; keeping this as the single catch-all keeps
    // table 0 uniform so it compiles to the hash template, as the paper
    // describes ("the hash template for each table except Table 110").
    t0.insert(FlowEntry::new(
        FlowMatch::any(),
        1,
        vec![openflow::Instruction::GotoTable(DOWNSTREAM_TABLE)],
    ));
    pipeline.add_table(t0);

    // Per-CE NAT tables: unknown users go to the controller for admission.
    for ce in 0..config.ces {
        let mut t = openflow::FlowTable::named(ce_table(ce), format!("ce{ce}-nat"));
        t.miss = openflow::TableMissBehavior::ToController;
        pipeline.add_table(t);
    }

    // Table 110: the Internet routing table.
    let mut routing = openflow::FlowTable::named(ROUTING_TABLE, "routing");
    for route in routes(config) {
        routing.insert(FlowEntry::new(
            FlowMatch::any().with_prefix(
                Field::Ipv4Dst,
                u128::from(route.prefix.to_u32()),
                u32::from(route.len),
            ),
            100 + u16::from(route.len),
            terminal_actions(vec![Action::DecNwTtl, Action::Output(PORT_NET)]),
        ));
    }
    routing.insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));
    pipeline.add_table(routing);

    // Downstream mapping table.
    let mut downstream = openflow::FlowTable::named(DOWNSTREAM_TABLE, "downstream");
    downstream.insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));
    pipeline.add_table(downstream);

    // Per-user NAT rules.
    if config.preinstall_users {
        for ce in 0..config.ces {
            for user in 0..config.users_per_ce {
                for fm in user_flow_mods(ce, user) {
                    openflow::flow_mod::apply_flow_mod(&mut pipeline, &fm)
                        .expect("static gateway rules apply cleanly");
                }
            }
        }
    }
    pipeline
}

/// The gateway's reactive admission controller: on a packet-in from a per-CE
/// table it allocates the user's public address and installs the NAT rule
/// pair. Used by the update-intensity experiments and the reactive example.
pub fn admission_controller(config: &GatewayConfig) -> impl Controller {
    let ces = config.ces;
    let users = config.users_per_ce;
    FnController::new(move |pi| {
        let key = FlowKey::extract(&pi.packet);
        let (Some(vid), Some(src)) = (key.vlan_vid, key.ipv4_src) else {
            return vec![ControllerDecision::Drop];
        };
        let ce = usize::from(vid.saturating_sub(100));
        if ce >= ces {
            return vec![ControllerDecision::Drop];
        }
        // Recover the user index from the private address layout.
        let octets = Ipv4Addr4::from_u32(src).octets();
        let user = usize::from(octets[2]) * 250 + usize::from(octets[3]).saturating_sub(2);
        if user >= users {
            return vec![ControllerDecision::Drop];
        }
        user_flow_mods(ce, user)
            .into_iter()
            .map(ControllerDecision::FlowMod)
            .collect()
    })
}

/// Builds the upstream (user→network) traffic mix: `active_flows` distinct
/// flows spread over the provisioned users, each targeting a destination
/// covered by the routing table, with varying ports for flow diversity.
pub fn build_traffic(config: &GatewayConfig, active_flows: usize) -> FlowSet {
    let routes = routes(config);
    let destinations = sample_covered_addresses(&routes, active_flows.max(1), config.seed ^ 0xd57);
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0x7247);
    let prototypes = destinations
        .into_iter()
        .enumerate()
        .map(|(f, dst)| {
            let ce = f % config.ces.max(1);
            let user = (f / config.ces.max(1)) % config.users_per_ce.max(1);
            PacketBuilder::tcp()
                .vlan(ce_vlan(ce))
                .ipv4_src(user_private_ip(ce, user).octets())
                .ipv4_dst(dst.octets())
                .tcp_src(rng.gen_range(1024..60_000))
                .tcp_dst([80u16, 443, 53, 8080][f % 4])
                .in_port(PORT_USER)
                .build()
        })
        .collect();
    FlowSet::new(prototypes, config.seed ^ active_flows as u64)
}

/// Builds the downstream (network→user) traffic mix: packets addressed to the
/// users' public addresses arriving on the network port.
pub fn build_downstream_traffic(config: &GatewayConfig, active_flows: usize) -> FlowSet {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xd04e);
    let prototypes = (0..active_flows.max(1))
        .map(|f| {
            let ce = f % config.ces.max(1);
            let user = (f / config.ces.max(1)) % config.users_per_ce.max(1);
            PacketBuilder::tcp()
                .ipv4_src([198, 51, 100, (f % 200) as u8 + 1])
                .ipv4_dst(user_public_ip(ce, user).octets())
                .tcp_src(80)
                .tcp_dst(rng.gen_range(1024..60_000))
                .in_port(PORT_NET)
                .build()
        })
        .collect();
    FlowSet::new(prototypes, config.seed ^ active_flows as u64 ^ 0xd)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> GatewayConfig {
        GatewayConfig {
            ces: 3,
            users_per_ce: 4,
            routing_prefixes: 200,
            seed: 1,
            preinstall_users: true,
        }
    }

    #[test]
    fn pipeline_structure_matches_fig8() {
        let config = small_config();
        let p = build_pipeline(&config);
        // demux + 3 per-CE tables + routing + downstream.
        assert_eq!(p.table_count(), 6);
        assert!(p.table(ROUTING_TABLE).is_some());
        assert!(p.table(DOWNSTREAM_TABLE).is_some());
        p.validate().unwrap();
        // Per-CE tables hold one NAT entry per user.
        assert_eq!(p.table(ce_table(0)).unwrap().len(), 4);
        // Downstream table: one entry per user overall plus the drop.
        assert_eq!(p.table(DOWNSTREAM_TABLE).unwrap().len(), 12 + 1);
    }

    #[test]
    fn upstream_packet_is_natted_and_routed() {
        let config = small_config();
        let pipeline = build_pipeline(&config);
        let traffic = build_traffic(&config, 16);
        for mut packet in traffic.one_cycle() {
            let verdict = pipeline.process(&mut packet);
            assert_eq!(
                verdict.outputs,
                vec![PORT_NET],
                "upstream must reach the network"
            );
            let key = FlowKey::extract(&packet);
            // Source rewritten into the public pool, VLAN tag removed.
            assert_eq!(Ipv4Addr4::from_u32(key.ipv4_src.unwrap()).octets()[0], 100);
            assert_eq!(key.vlan_vid, None);
        }
    }

    #[test]
    fn downstream_packet_is_mapped_back_to_the_user() {
        let config = small_config();
        let pipeline = build_pipeline(&config);
        let mut packet = PacketBuilder::tcp()
            .ipv4_src([198, 51, 100, 1])
            .ipv4_dst(user_public_ip(1, 2).octets())
            .in_port(PORT_NET)
            .build();
        let verdict = pipeline.process(&mut packet);
        assert_eq!(verdict.outputs, vec![PORT_USER]);
        let key = FlowKey::extract(&packet);
        assert_eq!(key.ipv4_dst, Some(user_private_ip(1, 2).to_u32()));
        assert_eq!(key.vlan_vid, Some(ce_vlan(1)));
    }

    #[test]
    fn unknown_user_is_punted_without_preinstall() {
        let config = GatewayConfig {
            preinstall_users: false,
            ..small_config()
        };
        let pipeline = build_pipeline(&config);
        let mut packet = PacketBuilder::tcp()
            .vlan(ce_vlan(0))
            .ipv4_src(user_private_ip(0, 0).octets())
            .ipv4_dst([8, 8, 8, 8])
            .in_port(PORT_USER)
            .build();
        let verdict = pipeline.process(&mut packet);
        assert!(verdict.to_controller);
    }

    #[test]
    fn admission_controller_installs_the_user() {
        let config = GatewayConfig {
            preinstall_users: false,
            ..small_config()
        };
        let pipeline = build_pipeline(&config);
        let dp = openflow::DirectDatapath::with_controller(
            pipeline,
            Box::new(admission_controller(&config)),
        );
        let mk_packet = || {
            PacketBuilder::tcp()
                .vlan(ce_vlan(2))
                .ipv4_src(user_private_ip(2, 3).octets())
                .ipv4_dst([198, 51, 100, 9])
                .in_port(PORT_USER)
                .build()
        };
        // First packet of the user: punted, NAT rules installed.
        let mut first = mk_packet();
        assert!(dp.process(&mut first).to_controller);
        // Second packet: handled in the dataplane. The destination may or may
        // not be covered by the synthetic routing table; what matters is that
        // the per-CE table no longer punts.
        let mut second = mk_packet();
        let verdict = dp.process(&mut second);
        assert!(!verdict.to_controller);
        assert_eq!(dp.controller_packet_ins(), 1);
    }

    #[test]
    fn traffic_spreads_over_ces_and_users() {
        let config = small_config();
        let traffic = build_traffic(&config, 60);
        let mut vlans = std::collections::HashSet::new();
        let mut sources = std::collections::HashSet::new();
        for packet in traffic.one_cycle() {
            let key = FlowKey::extract(&packet);
            vlans.insert(key.vlan_vid.unwrap());
            sources.insert(key.ipv4_src.unwrap());
        }
        assert_eq!(vlans.len(), 3);
        assert_eq!(sources.len(), 12);
    }
}
