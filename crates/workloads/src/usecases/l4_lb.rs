//! The stateful L4 load-balancer use case.
//!
//! The stateless load balancer of Fig. 7 ([`super::load_balancer`]) shards
//! clients by one source-address bit — two rules per service, no state, and
//! no stability under backend changes. This use case is its stateful
//! counterpart: a maglev-style consistent hash picks the backend for each
//! *connection* on its first packet, the choice is pinned in the conntrack
//! table, and every later packet of the connection — in both directions —
//! follows the pinned mapping, even after the backend set changes.
//!
//! Request traffic targets the VIP on the network port; the chosen backend
//! answers on the user port and the reply is rewritten back to the VIP from
//! the stored tuple.

use conntrack::{CtConfig, LbGroup};
use openflow::ct::CtVerb;
use openflow::flow_match::FlowMatch;
use openflow::instruction::terminal_actions;
use openflow::{Action, Field, FlowEntry, Pipeline};
use pkt::builder::PacketBuilder;
use pkt::ipv4::Ipv4Addr4;
use rand::prelude::*;

use super::{PORT_NET, PORT_USER};
use crate::traffic::FlowSet;

/// Configuration of the stateful L4 load balancer.
#[derive(Debug, Clone, Copy)]
pub struct L4LbConfig {
    /// Number of backend servers behind the VIP.
    pub backends: usize,
    /// RNG seed for traffic generation.
    pub seed: u64,
}

impl Default for L4LbConfig {
    fn default() -> Self {
        L4LbConfig {
            backends: 4,
            seed: 0x1b4,
        }
    }
}

/// The virtual IP the balancer fronts.
pub fn vip() -> Ipv4Addr4 {
    Ipv4Addr4::new(203, 0, 113, 80)
}

/// Backend `b`'s address.
pub fn backend_ip(b: usize) -> Ipv4Addr4 {
    Ipv4Addr4::new(10, 10, (b >> 8) as u8, (b & 0xff) as u8 + 1)
}

/// Builds the stateful LB pipeline: consistent-hash selection (pinned per
/// connection) for VIP traffic, established-only reverse path, drop rest.
pub fn build_pipeline(_config: &L4LbConfig) -> Pipeline {
    let mut pipeline = Pipeline::with_tables(1);
    let table = pipeline.table_mut(0).unwrap();
    table.name = "l4-lb".to_string();
    table.insert(FlowEntry::new(
        FlowMatch::any()
            .with_exact(Field::InPort, u128::from(PORT_NET))
            .with_exact(Field::Ipv4Dst, u128::from(vip().to_u32()))
            .with_exact(Field::TcpDst, 80),
        300,
        terminal_actions(vec![
            Action::Ct(CtVerb::Lb { group: 0 }),
            Action::Output(PORT_USER),
        ]),
    ));
    table.insert(FlowEntry::new(
        FlowMatch::any()
            .with_exact(Field::InPort, u128::from(PORT_USER))
            .with_exact(Field::TcpSrc, 80),
        200,
        terminal_actions(vec![
            Action::Ct(CtVerb::Established),
            Action::Output(PORT_NET),
        ]),
    ));
    table.insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));
    pipeline
}

/// The engine configuration this use case expects: LB group 0 is the VIP's
/// backend set (maglev table sized ≥ 100× backends, rounded odd by the
/// engine).
pub fn ct_config(config: &L4LbConfig) -> CtConfig {
    CtConfig {
        lb_groups: vec![LbGroup {
            vip: vip().to_u32(),
            backends: (0..config.backends.max(1))
                .map(|b| backend_ip(b).to_u32())
                .collect(),
            table_size: config.backends.max(1) * 128 + 1,
        }],
        ..CtConfig::default()
    }
}

/// `active_flows` client connections to the VIP, arriving on the network
/// port. Answer the forwarded (backend-addressed) frames with
/// [`crate::traffic::reply_to`]`(frame, PORT_USER)`.
pub fn build_requests(config: &L4LbConfig, active_flows: usize) -> FlowSet {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let prototypes = (0..active_flows.max(1))
        .map(|_| {
            PacketBuilder::tcp()
                .ipv4_src(Ipv4Addr4::from_u32(rng.gen::<u32>() | 0x0100_0000))
                .ipv4_dst(vip())
                .tcp_src(rng.gen_range(1024..60_000))
                .tcp_dst(80)
                .in_port(PORT_NET)
                .build()
        })
        .collect();
    FlowSet::new(prototypes, config.seed ^ active_flows as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::reply_to;
    use conntrack::CtEngine;
    use openflow::FlowKey;

    #[test]
    fn connections_pin_to_a_backend_and_replies_unmap() {
        let config = L4LbConfig::default();
        let pipeline = build_pipeline(&config);
        let mut engine = CtEngine::new(&ct_config(&config));
        let backends: Vec<u32> = (0..config.backends)
            .map(|b| backend_ip(b).to_u32())
            .collect();

        let requests = build_requests(&config, 64);
        let mut chosen = std::collections::HashSet::new();
        for i in 0..64 {
            let mut request = requests.packet(i);
            let client = FlowKey::extract(&request);
            let verdict = pipeline.process_ct(&mut request, &mut engine);
            assert_eq!(verdict.outputs, vec![PORT_USER]);

            // Forwarded to a real backend, no longer the VIP.
            let forwarded = FlowKey::extract(&request);
            let backend = forwarded.ipv4_dst.unwrap();
            assert!(backends.contains(&backend), "{backend:08x}");
            chosen.insert(backend);

            // A retransmit of the same connection hits the *same* backend.
            let mut retransmit = requests.packet(i);
            pipeline.process_ct(&mut retransmit, &mut engine);
            assert_eq!(FlowKey::extract(&retransmit).ipv4_dst, forwarded.ipv4_dst);

            // The backend's reply leaves re-sourced from the VIP.
            let mut reply = reply_to(&request, PORT_USER).unwrap();
            let verdict = pipeline.process_ct(&mut reply, &mut engine);
            assert_eq!(verdict.outputs, vec![PORT_NET]);
            let delivered = FlowKey::extract(&reply);
            assert_eq!(delivered.ipv4_src, Some(vip().to_u32()));
            assert_eq!(delivered.ipv4_dst, client.ipv4_src);
        }
        // 64 connections over 4 backends: the hash actually spreads.
        assert!(chosen.len() > 1, "all connections picked one backend");

        let snap = engine.stats().snapshot();
        assert_eq!(snap.created, 64);
        assert!(snap.identity_holds());
    }
}
