//! The L2 switching use case: exact matching on a MAC table.
//!
//! "The L2 flow tables contained random MAC addresses and the L2 destination
//! addresses in the flow mix were adequately aligned to avoid frequent table
//! misses." ESWITCH compiles this pipeline into the compound-hash template,
//! "effectively reducing into a conventional Ethernet software switch".

use openflow::flow_match::FlowMatch;
use openflow::instruction::terminal_actions;
use openflow::{Action, Field, FlowEntry, Pipeline};
use pkt::builder::PacketBuilder;
use pkt::MacAddr;
use rand::prelude::*;

use crate::traffic::FlowSet;

/// Configuration of the L2 use case.
#[derive(Debug, Clone, Copy)]
pub struct L2Config {
    /// Number of MAC table entries (the paper sweeps 1, 10, 100, 1K).
    pub table_size: usize,
    /// Number of switch ports the MACs are spread over.
    pub ports: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for L2Config {
    fn default() -> Self {
        L2Config {
            table_size: 1_000,
            ports: 4,
            seed: 0x12,
        }
    }
}

/// Deterministic pseudo-random unicast MAC for index `i` under `seed`.
fn mac_for(i: u64, seed: u64) -> MacAddr {
    let mut rng = StdRng::seed_from_u64(seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut bytes = [0u8; 6];
    rng.fill(&mut bytes);
    bytes[0] = 0x02; // locally administered, unicast
    MacAddr::new(bytes)
}

/// Builds the single-table L2 pipeline: one exact `eth_dst` entry per known
/// MAC, forwarding to a port, plus a lowest-priority drop for unknown MACs.
pub fn build_pipeline(config: &L2Config) -> Pipeline {
    let mut pipeline = Pipeline::with_tables(1);
    let table = pipeline.table_mut(0).unwrap();
    table.name = "l2-mac".to_string();
    for i in 0..config.table_size as u64 {
        table.insert(FlowEntry::new(
            FlowMatch::any()
                .with_exact(Field::EthDst, u128::from(mac_for(i, config.seed).to_u64())),
            100,
            terminal_actions(vec![Action::Output(i as u32 % config.ports.max(1))]),
        ));
    }
    table.insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));
    pipeline
}

/// Builds a traffic mix of `active_flows` distinct flows whose destination
/// MACs cycle over the installed table entries (aligned traffic, no misses);
/// flows differ in their UDP source port so they are distinct transport
/// connections for the microflow cache.
pub fn build_traffic(config: &L2Config, active_flows: usize) -> FlowSet {
    let prototypes = (0..active_flows.max(1))
        .map(|f| {
            let mac = mac_for((f % config.table_size.max(1)) as u64, config.seed);
            PacketBuilder::udp()
                .eth_dst(mac.octets())
                .eth_src([0x02, 0xaa, 0, 0, (f >> 8) as u8, f as u8])
                .udp_src(1024 + (f % 60_000) as u16)
                .udp_dst(4789)
                .in_port(0)
                .build()
        })
        .collect();
    FlowSet::new(prototypes, config.seed ^ active_flows as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_size_matches_config() {
        let p = build_pipeline(&L2Config {
            table_size: 100,
            ports: 4,
            seed: 1,
        });
        assert_eq!(p.table_count(), 1);
        assert_eq!(p.entry_count(), 101);
    }

    #[test]
    fn traffic_is_aligned_with_table() {
        let config = L2Config {
            table_size: 50,
            ports: 4,
            seed: 3,
        };
        let pipeline = build_pipeline(&config);
        let traffic = build_traffic(&config, 200);
        assert_eq!(traffic.active_flows(), 200);
        // Every generated packet hits a programmed MAC entry (no table miss).
        for mut packet in traffic.one_cycle() {
            let verdict = pipeline.process(&mut packet);
            assert!(!verdict.is_drop(), "aligned traffic must not miss");
            assert!(verdict.outputs[0] < config.ports);
        }
    }

    #[test]
    fn unknown_mac_is_dropped() {
        let config = L2Config::default();
        let pipeline = build_pipeline(&config);
        let mut stranger = PacketBuilder::udp().eth_dst([0x06, 1, 2, 3, 4, 5]).build();
        assert!(pipeline.process(&mut stranger).is_drop());
    }

    #[test]
    fn flows_are_distinct_transport_connections() {
        let config = L2Config {
            table_size: 10,
            ports: 2,
            seed: 9,
        };
        let traffic = build_traffic(&config, 100);
        let mut tuples = std::collections::HashSet::new();
        for packet in traffic.one_cycle() {
            let key = openflow::FlowKey::extract(&packet);
            tuples.insert((key.eth_src, key.eth_dst, key.udp_src));
        }
        assert_eq!(tuples.len(), 100);
    }
}
