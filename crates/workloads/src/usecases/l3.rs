//! The L3 routing use case: longest prefix match over an IP routing table.
//!
//! "For the L3 use case routing tables were randomly sampled from a real
//! Internet router and again the traces were adjusted accordingly." The
//! synthetic sampler of [`crate::prefixes`] stands in for the real table;
//! ESWITCH compiles the pipeline into the LPM template, "yielding a datapath
//! identical to that of an IP softrouter".

use openflow::flow_match::FlowMatch;
use openflow::instruction::terminal_actions;
use openflow::{Action, Field, FlowEntry, Pipeline};
use pkt::builder::PacketBuilder;
use rand::prelude::*;

use crate::prefixes::{sample_covered_addresses, sample_routing_table, PrefixTableConfig, Route};
use crate::traffic::FlowSet;

/// Configuration of the L3 use case.
#[derive(Debug, Clone, Copy)]
pub struct L3Config {
    /// Number of routes (the paper sweeps 1, 10, 1K, and uses 2K and 10K in
    /// other experiments).
    pub prefixes: usize,
    /// Number of next hops / output ports.
    pub next_hops: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for L3Config {
    fn default() -> Self {
        L3Config {
            prefixes: 1_000,
            next_hops: 8,
            seed: 0x13,
        }
    }
}

/// Builds the routing table used by the pipeline (exposed so benchmarks can
/// derive covered traffic from the very same routes).
pub fn routes(config: &L3Config) -> Vec<Route> {
    sample_routing_table(&PrefixTableConfig {
        prefixes: config.prefixes,
        seed: config.seed,
        next_hops: config.next_hops,
    })
}

/// Builds the single-table L3 pipeline: one prefix entry per route with
/// priority = prefix length (LPM-consistent), a TTL decrement and an output
/// action, plus a lowest-priority drop.
pub fn build_pipeline(config: &L3Config) -> Pipeline {
    build_pipeline_from_routes(&routes(config))
}

/// Builds the pipeline from an explicit route list.
pub fn build_pipeline_from_routes(routes: &[Route]) -> Pipeline {
    let mut pipeline = Pipeline::with_tables(1);
    let table = pipeline.table_mut(0).unwrap();
    table.name = "l3-rib".to_string();
    for route in routes {
        table.insert(FlowEntry::new(
            FlowMatch::any().with_prefix(
                Field::Ipv4Dst,
                u128::from(route.prefix.to_u32()),
                u32::from(route.len),
            ),
            100 + u16::from(route.len),
            terminal_actions(vec![Action::DecNwTtl, Action::Output(route.next_hop)]),
        ));
    }
    table.insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));
    pipeline
}

/// Builds a traffic mix of `active_flows` flows whose destinations are
/// covered by the routing table and whose transport tuples differ.
pub fn build_traffic(config: &L3Config, active_flows: usize) -> FlowSet {
    build_traffic_from_routes(&routes(config), config.seed, active_flows)
}

/// Builds the traffic mix from an explicit route list.
pub fn build_traffic_from_routes(routes: &[Route], seed: u64, active_flows: usize) -> FlowSet {
    let destinations = sample_covered_addresses(routes, active_flows.max(1), seed ^ 0xbeef);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xcafe);
    let prototypes = destinations
        .into_iter()
        .enumerate()
        .map(|(f, dst)| {
            PacketBuilder::udp()
                .ipv4_src([10, (f >> 16) as u8, (f >> 8) as u8, f as u8])
                .ipv4_dst(dst.octets())
                .udp_src(rng.gen_range(1024..60_000))
                .udp_dst(53)
                .in_port(0)
                .build()
        })
        .collect();
    FlowSet::new(prototypes, seed ^ active_flows as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_contains_all_routes() {
        let config = L3Config {
            prefixes: 200,
            next_hops: 4,
            seed: 5,
        };
        let p = build_pipeline(&config);
        assert_eq!(p.entry_count(), 201);
    }

    #[test]
    fn traffic_hits_installed_routes_and_ttl_is_decremented() {
        let config = L3Config {
            prefixes: 300,
            next_hops: 4,
            seed: 6,
        };
        let pipeline = build_pipeline(&config);
        let traffic = build_traffic(&config, 100);
        for mut packet in traffic.one_cycle() {
            let ttl_before = packet.data()[14 + 8];
            let verdict = pipeline.process(&mut packet);
            assert!(!verdict.is_drop(), "covered destination must be routed");
            assert!(verdict.outputs[0] < config.next_hops);
            assert_eq!(packet.data()[14 + 8], ttl_before - 1);
        }
    }

    #[test]
    fn longest_prefix_semantics_respected() {
        // Construct overlapping routes explicitly and check the more specific
        // one wins, matching plain LPM expectations.
        let routes = vec![
            Route {
                prefix: pkt::Ipv4Addr4::new(10, 0, 0, 0),
                len: 8,
                next_hop: 1,
            },
            Route {
                prefix: pkt::Ipv4Addr4::new(10, 7, 0, 0),
                len: 16,
                next_hop: 2,
            },
        ];
        let pipeline = build_pipeline_from_routes(&routes);
        let mut specific = PacketBuilder::udp().ipv4_dst([10, 7, 1, 1]).build();
        let mut broad = PacketBuilder::udp().ipv4_dst([10, 8, 1, 1]).build();
        assert_eq!(pipeline.process(&mut specific).outputs, vec![2]);
        assert_eq!(pipeline.process(&mut broad).outputs, vec![1]);
    }

    #[test]
    fn uncovered_destination_dropped() {
        let config = L3Config {
            prefixes: 50,
            next_hops: 2,
            seed: 8,
        };
        let pipeline = build_pipeline(&config);
        // 240.0.0.0/4 is never generated by the sampler.
        let mut pkt = PacketBuilder::udp().ipv4_dst([240, 0, 0, 1]).build();
        assert!(pipeline.process(&mut pkt).is_drop());
    }
}
