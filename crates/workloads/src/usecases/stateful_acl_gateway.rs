//! The stateful ACL gateway use case.
//!
//! The simplest stateful firewall: inside hosts may open connections to the
//! outside world; outside traffic is admitted only when it belongs to a
//! connection an inside host opened. A stateless OpenFlow pipeline cannot
//! express this — any rule permissive enough to pass the replies also passes
//! unsolicited probes — so the egress rule *commits* the connection to the
//! shard's conntrack table and the ingress rule demands `ESTABLISHED`.
//!
//! Traffic is bidirectional by construction: [`build_requests`] generates
//! the inside→outside openers and the harness answers each forwarded frame
//! with [`crate::traffic::reply_to`]; [`build_unsolicited`] generates
//! outside probes no inside host ever asked for, which the gateway must
//! drop (counted as ct denials).

use conntrack::CtConfig;
use openflow::ct::CtVerb;
use openflow::flow_match::FlowMatch;
use openflow::instruction::terminal_actions;
use openflow::{Action, Field, FlowEntry, Pipeline};
use pkt::builder::PacketBuilder;
use pkt::ipv4::Ipv4Addr4;
use rand::prelude::*;

use super::{PORT_NET, PORT_USER};
use crate::traffic::FlowSet;

/// Configuration of the stateful ACL gateway use case.
#[derive(Debug, Clone, Copy)]
pub struct StatefulAclConfig {
    /// RNG seed for traffic generation.
    pub seed: u64,
}

impl Default for StatefulAclConfig {
    fn default() -> Self {
        StatefulAclConfig { seed: 0x5a }
    }
}

/// Builds the two-rule stateful ACL pipeline: commit on egress, demand
/// `ESTABLISHED` on ingress, drop everything else.
pub fn build_pipeline(_config: &StatefulAclConfig) -> Pipeline {
    let mut pipeline = Pipeline::with_tables(1);
    let table = pipeline.table_mut(0).unwrap();
    table.name = "stateful-acl".to_string();
    table.insert(FlowEntry::new(
        FlowMatch::any().with_exact(Field::InPort, u128::from(PORT_USER)),
        300,
        terminal_actions(vec![Action::Ct(CtVerb::Commit), Action::Output(PORT_NET)]),
    ));
    table.insert(FlowEntry::new(
        FlowMatch::any().with_exact(Field::InPort, u128::from(PORT_NET)),
        200,
        terminal_actions(vec![
            Action::Ct(CtVerb::Established),
            Action::Output(PORT_USER),
        ]),
    ));
    table.insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));
    pipeline
}

/// The engine configuration this use case expects: defaults sized for the
/// generated flow counts; no NAT pools or LB groups.
pub fn ct_config() -> CtConfig {
    CtConfig::default()
}

/// Inside client of flow `f`.
fn client_ip(f: usize) -> Ipv4Addr4 {
    Ipv4Addr4::new(10, 0, (f >> 8) as u8, f as u8)
}

/// Outside server of flow `f`.
fn server_ip(f: usize) -> Ipv4Addr4 {
    Ipv4Addr4::new(198, 51, 100, (f % 200) as u8 + 1)
}

/// `active_flows` inside→outside TCP openers (one connection each), arriving
/// on the user port. Answer the forwarded frames with
/// [`crate::traffic::reply_to`]`(frame, PORT_NET)` to drive the replies.
pub fn build_requests(config: &StatefulAclConfig, active_flows: usize) -> FlowSet {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let prototypes = (0..active_flows.max(1))
        .map(|f| {
            PacketBuilder::tcp()
                .ipv4_src(client_ip(f))
                .ipv4_dst(server_ip(f))
                .tcp_src(rng.gen_range(1024..60_000))
                .tcp_dst(if f % 4 == 0 { 443 } else { 80 })
                .in_port(PORT_USER)
                .build()
        })
        .collect();
    FlowSet::new(prototypes, config.seed ^ active_flows as u64)
}

/// `count` outside probes that belong to no committed connection: the
/// gateway must deny every one of them.
pub fn build_unsolicited(config: &StatefulAclConfig, count: usize) -> FlowSet {
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xbad);
    let prototypes = (0..count.max(1))
        .map(|_| {
            PacketBuilder::tcp()
                .ipv4_src([192, 0, 2, rng.gen_range(1..250)])
                .ipv4_dst(client_ip(rng.gen_range(0..1 << 16)).octets())
                .tcp_src(80)
                .tcp_dst(rng.gen_range(1024..60_000))
                .in_port(PORT_NET)
                .build()
        })
        .collect();
    FlowSet::new(prototypes, config.seed ^ 0xbad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::reply_to;
    use conntrack::CtEngine;

    #[test]
    fn replies_pass_only_after_commit() {
        let config = StatefulAclConfig::default();
        let pipeline = build_pipeline(&config);
        let mut engine = CtEngine::new(&ct_config());

        // An unsolicited probe first: denied.
        let mut probe = build_unsolicited(&config, 1).packet(0);
        assert!(pipeline.process_ct(&mut probe, &mut engine).is_drop());

        // Opener commits; the synthesized reply then passes.
        let mut opener = build_requests(&config, 1).packet(0);
        let verdict = pipeline.process_ct(&mut opener, &mut engine);
        assert_eq!(verdict.outputs, vec![PORT_NET]);
        let mut reply = reply_to(&opener, PORT_NET).unwrap();
        let verdict = pipeline.process_ct(&mut reply, &mut engine);
        assert_eq!(verdict.outputs, vec![PORT_USER]);

        // Hits are batched per tick; flush before snapshotting.
        engine.advance_to(engine.now());
        let snap = engine.stats().snapshot();
        assert_eq!(snap.created, 1);
        assert_eq!(snap.hits, 1);
        assert_eq!(snap.denied, 1);
        assert!(snap.identity_holds());
    }
}
