//! The SNAT edge use case.
//!
//! A carrier-grade-NAT-shaped edge: private clients behind the user port
//! share one public address. Egress traffic is source-NATted (per-connection
//! public port allocated from the pool and remembered in the conntrack
//! table); ingress traffic is admitted only for established connections and
//! is reverse-translated back to the private endpoint from the stored
//! tuple. The gateway use case ([`super::gateway`]) models the *stateless*
//! half of this with per-user rewrite rules the controller pre-installs;
//! this use case is the stateful counterpart where the datapath itself owns
//! the translation table.

use conntrack::CtConfig;
use openflow::ct::{CtVerb, NatSpec};
use openflow::flow_match::FlowMatch;
use openflow::instruction::terminal_actions;
use openflow::{Action, Field, FlowEntry, Pipeline};
use pkt::builder::PacketBuilder;
use pkt::ipv4::Ipv4Addr4;
use rand::prelude::*;

use super::{PORT_NET, PORT_USER};
use crate::traffic::FlowSet;

/// Configuration of the SNAT edge use case.
#[derive(Debug, Clone, Copy)]
pub struct SnatEdgeConfig {
    /// RNG seed for traffic generation.
    pub seed: u64,
}

impl Default for SnatEdgeConfig {
    fn default() -> Self {
        SnatEdgeConfig { seed: 0x4a7 }
    }
}

/// The shared public address of the edge.
pub fn public_ip() -> Ipv4Addr4 {
    Ipv4Addr4::new(203, 0, 113, 1)
}

/// The NAT pool: the public address plus the port range per-connection
/// allocations come from. Shard-strided by the engine, so every shard
/// allocates from a disjoint slice without coordination.
pub fn nat_spec() -> NatSpec {
    NatSpec {
        snat: true,
        addr: public_ip().to_u32(),
        port_lo: 10_000,
        port_hi: 60_000,
    }
}

/// Builds the SNAT edge pipeline: source-NAT on egress, established-only
/// (with reverse translation) on ingress, drop everything else.
pub fn build_pipeline(_config: &SnatEdgeConfig) -> Pipeline {
    let mut pipeline = Pipeline::with_tables(1);
    let table = pipeline.table_mut(0).unwrap();
    table.name = "snat-edge".to_string();
    table.insert(FlowEntry::new(
        FlowMatch::any().with_exact(Field::InPort, u128::from(PORT_USER)),
        300,
        terminal_actions(vec![
            Action::Ct(CtVerb::Nat(nat_spec())),
            Action::Output(PORT_NET),
        ]),
    ));
    table.insert(FlowEntry::new(
        FlowMatch::any().with_exact(Field::InPort, u128::from(PORT_NET)),
        200,
        terminal_actions(vec![
            Action::Ct(CtVerb::Established),
            Action::Output(PORT_USER),
        ]),
    ));
    table.insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));
    pipeline
}

/// The engine configuration this use case expects. The NAT pool itself
/// travels in the pipeline's `Ct(Nat(..))` action; the engine only needs
/// table capacity for the connection (and reverse-tuple) entries.
pub fn ct_config() -> CtConfig {
    CtConfig::default()
}

/// `active_flows` private-side TCP openers through the NAT, one connection
/// each. Answer the forwarded (already-translated) frames with
/// [`crate::traffic::reply_to`]`(frame, PORT_NET)`: the reply targets the
/// allocated public endpoint, exactly as a real server answers what it saw.
pub fn build_requests(config: &SnatEdgeConfig, active_flows: usize) -> FlowSet {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let prototypes = (0..active_flows.max(1))
        .map(|f| {
            PacketBuilder::tcp()
                .ipv4_src([10, 1, (f >> 8) as u8, f as u8])
                .ipv4_dst([198, 51, 100, (f % 200) as u8 + 1])
                .tcp_src(rng.gen_range(1024..60_000))
                .tcp_dst(80)
                .in_port(PORT_USER)
                .build()
        })
        .collect();
    FlowSet::new(prototypes, config.seed ^ active_flows as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::reply_to;
    use conntrack::CtEngine;
    use openflow::FlowKey;

    #[test]
    fn egress_is_translated_and_replies_reverse_translate() {
        let config = SnatEdgeConfig::default();
        let pipeline = build_pipeline(&config);
        let mut engine = CtEngine::new(&ct_config());

        let mut opener = build_requests(&config, 1).packet(0);
        let original = FlowKey::extract(&opener);
        let verdict = pipeline.process_ct(&mut opener, &mut engine);
        assert_eq!(verdict.outputs, vec![PORT_NET]);

        // The forwarded frame leaves with the public source endpoint.
        let translated = FlowKey::extract(&opener);
        assert_eq!(translated.ipv4_src, Some(public_ip().to_u32()));
        assert_ne!(translated.tcp_src, original.tcp_src);
        let spec = nat_spec();
        let port = translated.tcp_src.unwrap();
        assert!((spec.port_lo..=spec.port_hi).contains(&port));

        // The server answers what it saw; the edge reverse-translates the
        // reply back to the private endpoint.
        let mut reply = reply_to(&opener, PORT_NET).unwrap();
        let verdict = pipeline.process_ct(&mut reply, &mut engine);
        assert_eq!(verdict.outputs, vec![PORT_USER]);
        let delivered = FlowKey::extract(&reply);
        assert_eq!(delivered.ipv4_dst, original.ipv4_src);
        assert_eq!(delivered.tcp_dst, original.tcp_src);

        // An unsolicited frame to the public address is denied.
        let mut probe = PacketBuilder::tcp()
            .ipv4_src([198, 51, 100, 7])
            .ipv4_dst(public_ip())
            .tcp_src(80)
            .tcp_dst(10_000)
            .in_port(PORT_NET)
            .build();
        assert!(pipeline.process_ct(&mut probe, &mut engine).is_drop());

        // Hits are batched per tick; flush before snapshotting.
        engine.advance_to(engine.now());
        let snap = engine.stats().snapshot();
        assert_eq!(snap.created, 1);
        assert_eq!(snap.hits, 1);
        assert_eq!(snap.denied, 1);
        assert!(snap.identity_holds());
    }
}
