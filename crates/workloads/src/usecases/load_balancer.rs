//! The load-balancer use case (Fig. 7).
//!
//! "The load balancer use case captures the functionality of a web frontend,
//! which distributes HTTP traffic for different web services, available at
//! different IP addresses, between backend servers. Load distribution happens
//! based on the first bit of the source IP address in the incoming packets.
//! In the ingress direction only web traffic is allowed, while traffic is
//! forwarded unconditionally in the other direction."
//!
//! The natural controller-emitted pipeline is a single flow table (Fig. 7a),
//! which only fits the linked-list template; the ESWITCH table-decomposition
//! pass promotes it to an equivalent multi-stage pipeline (Fig. 7b) whose
//! tables fit the direct-code/hash templates — this use case exists precisely
//! to demonstrate that promotion.

use openflow::flow_match::FlowMatch;
use openflow::instruction::terminal_actions;
use openflow::{Action, Field, FlowEntry, Pipeline};
use pkt::builder::PacketBuilder;
use pkt::ipv4::Ipv4Addr4;
use rand::prelude::*;

use super::{PORT_NET, PORT_USER};
use crate::traffic::FlowSet;

/// Configuration of the load-balancer use case.
#[derive(Debug, Clone, Copy)]
pub struct LoadBalancerConfig {
    /// Number of web services (the paper sweeps 1–100).
    pub services: usize,
    /// RNG seed for traffic generation.
    pub seed: u64,
}

impl Default for LoadBalancerConfig {
    fn default() -> Self {
        LoadBalancerConfig {
            services: 10,
            seed: 0x1b,
        }
    }
}

/// Virtual IP of web service `s`.
pub fn service_vip(s: usize) -> Ipv4Addr4 {
    Ipv4Addr4::new(203, 0, (s / 250) as u8, (s % 250 + 1) as u8)
}

/// Backend address a request for service `s` is rewritten to, picked by the
/// first bit of the client's source address.
pub fn backend_for(s: usize, src_first_bit_set: bool) -> Ipv4Addr4 {
    Ipv4Addr4::new(10, 10, s as u8, if src_first_bit_set { 2 } else { 1 })
}

/// Builds the single-table pipeline of Fig. 7a.
///
/// Per service two ingress rules (one per source-address half, rewriting the
/// destination to the chosen backend), one egress rule forwarding everything
/// from the internal port, and a final drop.
pub fn build_pipeline(config: &LoadBalancerConfig) -> Pipeline {
    let mut pipeline = Pipeline::with_tables(1);
    let table = pipeline.table_mut(0).unwrap();
    table.name = "load-balancer".to_string();
    // Egress direction: forwarded unconditionally.
    table.insert(FlowEntry::new(
        FlowMatch::any().with_exact(Field::InPort, u128::from(PORT_USER)),
        400,
        terminal_actions(vec![Action::Output(PORT_NET)]),
    ));
    for s in 0..config.services {
        let vip = u128::from(service_vip(s).to_u32());
        for first_bit in [false, true] {
            let src_match = if first_bit { 0x8000_0000u128 } else { 0 };
            let backend = backend_for(s, first_bit);
            table.insert(FlowEntry::new(
                FlowMatch::any()
                    .with_exact(Field::InPort, u128::from(PORT_NET))
                    .with_exact(Field::Ipv4Dst, vip)
                    .with_exact(Field::TcpDst, 80)
                    .with(openflow::MatchField::masked(
                        Field::Ipv4Src,
                        src_match,
                        0x8000_0000,
                    )),
                300,
                terminal_actions(vec![
                    Action::SetField(Field::Ipv4Dst, u128::from(backend.to_u32())),
                    Action::Output(PORT_USER),
                ]),
            ));
        }
    }
    table.insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));
    pipeline
}

/// Builds a traffic mix of `active_flows` flows: half the flows are HTTP
/// requests to a random service (admitted and load balanced), the other half
/// target closed ports or unknown addresses and are dropped, as in the paper
/// ("half of the packets go to a random web service and the rest of the
/// traffic be dropped").
pub fn build_traffic(config: &LoadBalancerConfig, active_flows: usize) -> FlowSet {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let prototypes = (0..active_flows.max(1))
        .map(|f| {
            let src = Ipv4Addr4::from_u32(rng.gen::<u32>() | 0x0100_0000);
            let sport = rng.gen_range(1024..60_000);
            if f % 2 == 0 {
                let s = rng.gen_range(0..config.services.max(1));
                PacketBuilder::tcp()
                    .ipv4_src(src.octets())
                    .ipv4_dst(service_vip(s).octets())
                    .tcp_src(sport)
                    .tcp_dst(80)
                    .in_port(PORT_NET)
                    .build()
            } else {
                // Not web traffic: dropped by the frontend.
                PacketBuilder::tcp()
                    .ipv4_src(src.octets())
                    .ipv4_dst([203, 0, 250, 250])
                    .tcp_src(sport)
                    .tcp_dst(8443)
                    .in_port(PORT_NET)
                    .build()
            }
        })
        .collect();
    FlowSet::new(prototypes, config.seed ^ active_flows as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_size_scales_with_services() {
        let p = build_pipeline(&LoadBalancerConfig {
            services: 10,
            seed: 0,
        });
        // 1 egress + 2 per service + 1 drop.
        assert_eq!(p.entry_count(), 1 + 20 + 1);
    }

    #[test]
    fn web_traffic_balanced_by_source_bit() {
        let config = LoadBalancerConfig {
            services: 3,
            seed: 0,
        };
        let pipeline = build_pipeline(&config);

        let mut low = PacketBuilder::tcp()
            .ipv4_src([10, 0, 0, 1]) // first bit 0
            .ipv4_dst(service_vip(1).octets())
            .tcp_dst(80)
            .in_port(PORT_NET)
            .build();
        let verdict = pipeline.process(&mut low);
        assert_eq!(verdict.outputs, vec![PORT_USER]);
        assert_eq!(
            openflow::FlowKey::extract(&low).ipv4_dst,
            Some(backend_for(1, false).to_u32())
        );

        let mut high = PacketBuilder::tcp()
            .ipv4_src([192, 0, 2, 1]) // first bit 1
            .ipv4_dst(service_vip(1).octets())
            .tcp_dst(80)
            .in_port(PORT_NET)
            .build();
        pipeline.process(&mut high);
        assert_eq!(
            openflow::FlowKey::extract(&high).ipv4_dst,
            Some(backend_for(1, true).to_u32())
        );
    }

    #[test]
    fn non_web_traffic_dropped_and_egress_forwarded() {
        let config = LoadBalancerConfig::default();
        let pipeline = build_pipeline(&config);

        let mut ssh = PacketBuilder::tcp()
            .ipv4_dst(service_vip(0).octets())
            .tcp_dst(22)
            .in_port(PORT_NET)
            .build();
        assert!(pipeline.process(&mut ssh).is_drop());

        let mut egress = PacketBuilder::tcp().in_port(PORT_USER).build();
        assert_eq!(pipeline.process(&mut egress).outputs, vec![PORT_NET]);
    }

    #[test]
    fn traffic_mix_half_admitted_half_dropped() {
        let config = LoadBalancerConfig {
            services: 5,
            seed: 3,
        };
        let pipeline = build_pipeline(&config);
        let traffic = build_traffic(&config, 400);
        let mut admitted = 0;
        let mut dropped = 0;
        for mut packet in traffic.one_cycle() {
            if pipeline.process(&mut packet).is_drop() {
                dropped += 1;
            } else {
                admitted += 1;
            }
        }
        assert_eq!(admitted + dropped, 400);
        assert_eq!(admitted, 200);
        assert_eq!(dropped, 200);
    }
}
