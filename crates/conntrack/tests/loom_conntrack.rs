//! Exhaustive model checking of the conntrack counters.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p conntrack --test loom_conntrack`.
//!
//! The ct engine itself is shard-local and never shared, so the only
//! concurrency in the subsystem is the `CtStats` counters: the owning
//! worker records, any thread (the shutdown aggregator) reads. These
//! models pin down the two properties the shutdown report relies on:
//! no lost updates, and the conservation identity holding at every
//! quiescent observation point.

#![cfg(all(loom, not(spsc_tail_relaxed_mutation)))]

use loom::sync::Arc;
use loom::thread;

use conntrack::CtStats;

/// Two shards recording into distinct stats objects, aggregated by a third
/// thread after join: the merged snapshot is exact and the conservation
/// identity holds in every schedule.
#[test]
fn merged_shutdown_report_is_exact() {
    loom::model(|| {
        let s0 = Arc::new(CtStats::new());
        let s1 = Arc::new(CtStats::new());
        let (a, b) = (Arc::clone(&s0), Arc::clone(&s1));
        let t0 = thread::spawn(move || {
            a.record_created();
            a.record_created();
            a.record_evicted_idle();
        });
        let t1 = thread::spawn(move || {
            b.record_created();
            b.record_hit();
            b.record_teardown();
        });
        t0.join().unwrap();
        t1.join().unwrap();
        let merged = s0.snapshot().merged(&s1.snapshot());
        assert_eq!(merged.created, 3);
        assert_eq!(merged.hits, 1);
        assert_eq!(merged.evicted_idle, 1);
        assert_eq!(merged.teardown, 1);
        assert_eq!(merged.live, 1);
        assert!(merged.identity_holds());
    });
}

/// A concurrent reader that observes the eviction count also observes the
/// creation that preceded it (Release increments / Acquire reads): `live`
/// never underflows from the reader's point of view.
#[test]
fn eviction_observed_implies_creation_observed() {
    loom::model(|| {
        let stats = Arc::new(CtStats::new());
        let writer = Arc::clone(&stats);
        let t = thread::spawn(move || {
            writer.record_created();
            writer.record_evicted_capacity();
        });
        // Acquire reads in program order: eviction read *first* so a stale
        // creation count cannot pair with a fresh eviction count.
        let evicted = stats.evicted_capacity();
        if evicted == 1 {
            assert_eq!(
                stats.created(),
                1,
                "eviction visible before the creation that preceded it"
            );
        }
        t.join().unwrap();
        assert!(stats.snapshot().identity_holds());
    });
}
