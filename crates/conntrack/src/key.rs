//! Packed connection key and its hash.
//!
//! The 5-tuple packs into a single `u128` (proto + two addresses + two
//! ports = 104 bits), so key compare is one wide integer compare and the
//! hash is two rounds of the same `fx_mix` the `MiniKey` EMC keys use —
//! the ct index and the EMC stay in the same hashing discipline.

use netdev::fx_mix;
use openflow::CtTuple;

/// A connection 5-tuple packed into one `u128`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConnKey(u128);

impl ConnKey {
    /// Packs a [`CtTuple`].
    #[inline]
    pub fn from_tuple(t: &CtTuple) -> ConnKey {
        ConnKey(
            u128::from(t.proto)
                | (u128::from(t.src_ip) << 8)
                | (u128::from(t.dst_ip) << 40)
                | (u128::from(t.src_port) << 72)
                | (u128::from(t.dst_port) << 88),
        )
    }

    /// 64-bit hash of the key (fx-mix over both halves).
    #[inline]
    pub fn hash(&self) -> u64 {
        fx_mix(fx_mix(0, self.0 as u64), (self.0 >> 64) as u64)
    }
}

/// Hash of a tuple's packed key — the one-liner the engine and the
/// consistent-hash LB both use, so a connection hashes identically
/// everywhere.
#[inline]
pub fn tuple_hash(t: &CtTuple) -> u64 {
    ConnKey::from_tuple(t).hash()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(proto: u8, s: u32, d: u32, sp: u16, dp: u16) -> CtTuple {
        CtTuple {
            proto,
            src_ip: s,
            dst_ip: d,
            src_port: sp,
            dst_port: dp,
        }
    }

    #[test]
    fn packing_is_injective_on_field_changes() {
        let base = t(6, 1, 2, 3, 4);
        let variants = [
            t(17, 1, 2, 3, 4),
            t(6, 9, 2, 3, 4),
            t(6, 1, 9, 3, 4),
            t(6, 1, 2, 9, 4),
            t(6, 1, 2, 3, 9),
        ];
        let k0 = ConnKey::from_tuple(&base);
        for v in &variants {
            assert_ne!(ConnKey::from_tuple(v), k0, "{v:?}");
        }
    }

    #[test]
    fn direction_matters() {
        let fwd = t(6, 1, 2, 3, 4);
        let rev = fwd.reversed();
        assert_ne!(ConnKey::from_tuple(&fwd), ConnKey::from_tuple(&rev));
        assert_ne!(tuple_hash(&fwd), tuple_hash(&rev));
    }
}
