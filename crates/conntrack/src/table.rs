//! The slab-backed, index-linked connection table.
//!
//! Declared a fast-path module (`cargo xtask lint` bans allocation
//! constructors here): all storage is allocated once in [`ConnTable::new`]
//! and the established path — lookup, LRU touch — performs no heap
//! allocation per packet.
//!
//! Layout: a fixed-capacity slab of [`Conn`] records threaded by an
//! intrusive free list, plus an open-addressed index (linear probing,
//! backward-shift deletion, ≤ 50% load by construction) holding **two**
//! entries per connection — one for the original-direction tuple, one for
//! the reply-direction tuple — so a single probe classifies a packet's
//! direction along with its connection.
//!
//! Recency is tracked second-chance (CLOCK) style: a hit sets one bit in
//! the connection record ([`ConnTable::touch`] — no list surgery on the
//! established path), and the capacity-eviction victim is found by
//! rotating the insertion-ordered list past recently-used entries,
//! clearing their bits ([`ConnTable::clock_victim`]). The result is the
//! usual approximate LRU every datapath cache uses: exact order isn't
//! kept, but anything hit since its last rotation survives over anything
//! that wasn't.

use crate::key::{tuple_hash, ConnKey};
use crate::tcp::ConnState;
use openflow::CtTuple;

/// Sentinel for "no slot" in the intrusive links and the index.
pub const NONE: u32 = u32::MAX;

/// Which direction of a connection an index entry (or a packet) matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// The tuple as first seen (the initiator's direction).
    Orig,
    /// The reverse tuple a reply carries (post-translation for NAT/LB).
    Reply,
}

/// One tracked connection.
#[derive(Debug, Clone, Copy)]
pub struct Conn {
    /// Tuple of the first packet, before any translation.
    pub orig: CtTuple,
    /// Tuple reply packets carry (the reverse of the translated forward
    /// tuple). Equal to `orig.reversed()` for untranslated connections.
    pub reply: CtTuple,
    /// Protocol state.
    pub state: ConnState,
    /// Idle deadline in virtual ticks — the timer wheel's authority. Lives
    /// here so the established-path re-arm writes a cache line the hit has
    /// already dirtied instead of touching wheel memory.
    pub deadline: u64,
    lru_prev: u32,
    lru_next: u32,
    free_next: u32,
    live: bool,
    /// Second-chance bit: set on every hit, cleared when the clock hand
    /// passes during victim selection.
    used: bool,
}

const EMPTY_TUPLE: CtTuple = CtTuple {
    proto: 0,
    src_ip: 0,
    dst_ip: 0,
    src_port: 0,
    dst_port: 0,
};

const EMPTY_CONN: Conn = Conn {
    orig: EMPTY_TUPLE,
    reply: EMPTY_TUPLE,
    state: ConnState::UdpNew,
    deadline: 0,
    lru_prev: NONE,
    lru_next: NONE,
    free_next: NONE,
    live: false,
    used: false,
};

/// One open-addressed index entry: the key hash, the slab slot it points
/// at, and which direction of that connection the entry represents.
#[derive(Debug, Clone, Copy)]
struct Slot {
    hash: u64,
    conn: u32,
    dir: Dir,
}

const EMPTY_SLOT: Slot = Slot {
    hash: 0,
    conn: NONE,
    dir: Dir::Orig,
};

/// Fixed-capacity connection table. See the module docs for the layout.
#[derive(Debug)]
pub struct ConnTable {
    slab: Vec<Conn>,
    free_head: u32,
    live: u32,
    index: Vec<Slot>,
    mask: usize,
    lru_head: u32,
    lru_tail: u32,
}

impl ConnTable {
    /// Creates a table for at most `capacity` live connections. The index
    /// is sized to 4× capacity (two entries per connection, ≤ 50% load)
    /// rounded up to a power of two; this is the only allocation the table
    /// ever performs.
    pub fn new(capacity: usize) -> ConnTable {
        assert!(capacity > 0, "conntrack capacity must be non-zero");
        assert!(capacity < NONE as usize, "conntrack capacity too large");
        let index_len = (capacity * 4).next_power_of_two();
        let mut slab = Vec::with_capacity(capacity);
        for i in 0..capacity {
            let mut c = EMPTY_CONN;
            c.free_next = if i + 1 < capacity {
                (i + 1) as u32
            } else {
                NONE
            };
            slab.push(c);
        }
        let mut index = Vec::with_capacity(index_len);
        index.resize(index_len, EMPTY_SLOT);
        ConnTable {
            slab,
            free_head: 0,
            live: 0,
            index,
            mask: index_len - 1,
            lru_head: NONE,
            lru_tail: NONE,
        }
    }

    /// Maximum number of live connections.
    pub fn capacity(&self) -> usize {
        self.slab.len()
    }

    /// Currently tracked connections.
    pub fn live(&self) -> usize {
        self.live as usize
    }

    /// True when no further connection can be inserted without eviction.
    pub fn is_full(&self) -> bool {
        self.free_head == NONE
    }

    /// Bytes held by the slab and the index — fixed at construction, the
    /// table's memory bound at any load.
    pub fn memory_bytes(&self) -> usize {
        self.slab.capacity() * std::mem::size_of::<Conn>()
            + self.index.capacity() * std::mem::size_of::<Slot>()
    }

    /// Shared view of a connection record.
    #[inline]
    pub fn conn(&self, idx: u32) -> &Conn {
        &self.slab[idx as usize]
    }

    /// Exclusive view of a connection record.
    #[inline]
    pub fn conn_mut(&mut self, idx: u32) -> &mut Conn {
        &mut self.slab[idx as usize]
    }

    /// Looks up the connection a tuple belongs to, classifying its
    /// direction. One linear probe over the index; no allocation.
    #[inline]
    pub fn lookup(&self, tuple: &CtTuple) -> Option<(u32, Dir)> {
        let hash = tuple_hash(tuple);
        let mut i = (hash as usize) & self.mask;
        loop {
            let s = self.index[i];
            if s.conn == NONE {
                return None;
            }
            if s.hash == hash {
                let c = &self.slab[s.conn as usize];
                let stored = match s.dir {
                    Dir::Orig => &c.orig,
                    Dir::Reply => &c.reply,
                };
                if stored == tuple {
                    return Some((s.conn, s.dir));
                }
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Inserts a new connection, indexing both directions. Returns the slab
    /// slot, or `None` when the table is full (callers decide the eviction
    /// policy). The new connection becomes the most-recently-used.
    pub fn insert(&mut self, orig: CtTuple, reply: CtTuple, state: ConnState) -> Option<u32> {
        let idx = self.free_head;
        if idx == NONE {
            return None;
        }
        self.free_head = self.slab[idx as usize].free_next;
        let c = &mut self.slab[idx as usize];
        c.orig = orig;
        c.reply = reply;
        c.state = state;
        c.free_next = NONE;
        c.live = true;
        c.used = false;
        self.live += 1;
        self.index_insert(ConnKey::from_tuple(&orig).hash(), idx, Dir::Orig);
        self.index_insert(ConnKey::from_tuple(&reply).hash(), idx, Dir::Reply);
        self.lru_push_tail(idx);
        Some(idx)
    }

    /// Removes a connection: both index entries, the LRU link, and the
    /// slab slot (returned to the free list). Returns the removed record.
    pub fn remove(&mut self, idx: u32) -> Conn {
        let c = self.slab[idx as usize];
        debug_assert!(c.live, "removing dead conntrack slot {idx}");
        self.index_remove(ConnKey::from_tuple(&c.orig).hash(), idx, Dir::Orig);
        self.index_remove(ConnKey::from_tuple(&c.reply).hash(), idx, Dir::Reply);
        self.lru_unlink(idx);
        let slot = &mut self.slab[idx as usize];
        slot.live = false;
        slot.free_next = self.free_head;
        self.free_head = idx;
        self.live -= 1;
        c
    }

    /// Marks a connection recently used (established-path hit): one store
    /// to a record the hit path has already written, no list surgery.
    #[inline]
    pub fn touch(&mut self, idx: u32) {
        self.slab[idx as usize].used = true;
    }

    /// Selects the capacity-eviction victim: the oldest connection whose
    /// second-chance bit is clear. Recently-used connections at the head
    /// of the rotation get their bit cleared and move to the back, so a
    /// full pass over an all-hot table still terminates (the first entry
    /// revisited has just been cleared). Amortised O(1): every rotation
    /// clears a bit some hit must pay to set again.
    pub fn clock_victim(&mut self) -> Option<u32> {
        loop {
            let head = self.lru_head;
            if head == NONE {
                return None;
            }
            if !self.slab[head as usize].used {
                return Some(head);
            }
            self.slab[head as usize].used = false;
            self.lru_unlink(head);
            self.lru_push_tail(head);
        }
    }

    /// Iterates every live connection with its slab slot, in slab order.
    /// Control-plane only: bucket export walks the whole slab once per
    /// migration; the datapath never calls this. Allocation-free.
    pub fn live_slots(&self) -> impl Iterator<Item = (u32, &Conn)> + '_ {
        self.slab
            .iter()
            .enumerate()
            .filter(|(_, c)| c.live)
            .map(|(i, c)| (i as u32, c))
    }

    fn index_insert(&mut self, hash: u64, conn: u32, dir: Dir) {
        let mut i = (hash as usize) & self.mask;
        loop {
            if self.index[i].conn == NONE {
                self.index[i] = Slot { hash, conn, dir };
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Removes the entry for (`conn`, `dir`) using backward-shift deletion,
    /// which keeps probe chains tombstone-free.
    fn index_remove(&mut self, hash: u64, conn: u32, dir: Dir) {
        let mut i = (hash as usize) & self.mask;
        loop {
            let s = self.index[i];
            if s.conn == NONE {
                debug_assert!(false, "index entry missing for conn {conn}");
                return;
            }
            if s.conn == conn && s.dir == dir {
                break;
            }
            i = (i + 1) & self.mask;
        }
        let mut hole = i;
        let mut k = (hole + 1) & self.mask;
        loop {
            let s = self.index[k];
            if s.conn == NONE {
                break;
            }
            let ideal = (s.hash as usize) & self.mask;
            // The entry at k may fill the hole only if the hole lies on its
            // probe path (cyclically between its ideal slot and k).
            if (k.wrapping_sub(ideal) & self.mask) >= (k.wrapping_sub(hole) & self.mask) {
                self.index[hole] = s;
                hole = k;
            }
            k = (k + 1) & self.mask;
        }
        self.index[hole] = EMPTY_SLOT;
    }

    fn lru_push_tail(&mut self, idx: u32) {
        let tail = self.lru_tail;
        {
            let c = &mut self.slab[idx as usize];
            c.lru_prev = tail;
            c.lru_next = NONE;
        }
        if tail != NONE {
            self.slab[tail as usize].lru_next = idx;
        } else {
            self.lru_head = idx;
        }
        self.lru_tail = idx;
    }

    fn lru_unlink(&mut self, idx: u32) {
        let (prev, next) = {
            let c = &self.slab[idx as usize];
            (c.lru_prev, c.lru_next)
        };
        if prev != NONE {
            self.slab[prev as usize].lru_next = next;
        } else {
            self.lru_head = next;
        }
        if next != NONE {
            self.slab[next as usize].lru_prev = prev;
        } else {
            self.lru_tail = prev;
        }
        let c = &mut self.slab[idx as usize];
        c.lru_prev = NONE;
        c.lru_next = NONE;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(proto: u8, s: u32, d: u32, sp: u16, dp: u16) -> CtTuple {
        CtTuple {
            proto,
            src_ip: s,
            dst_ip: d,
            src_port: sp,
            dst_port: dp,
        }
    }

    fn commit(table: &mut ConnTable, tuple: CtTuple) -> u32 {
        table
            .insert(tuple, tuple.reversed(), ConnState::TcpSynSent)
            .expect("capacity")
    }

    #[test]
    fn both_directions_resolve_to_the_same_connection() {
        let mut table = ConnTable::new(8);
        let fwd = t(6, 0x0a000001, 0x0a000002, 1000, 80);
        let idx = commit(&mut table, fwd);
        assert_eq!(table.lookup(&fwd), Some((idx, Dir::Orig)));
        assert_eq!(table.lookup(&fwd.reversed()), Some((idx, Dir::Reply)));
        assert_eq!(table.lookup(&t(17, 1, 2, 3, 4)), None);
        assert_eq!(table.live(), 1);
    }

    #[test]
    fn remove_clears_both_entries_and_recycles_the_slot() {
        let mut table = ConnTable::new(2);
        let a = t(6, 1, 2, 10, 20);
        let b = t(6, 3, 4, 30, 40);
        let ia = commit(&mut table, a);
        let _ib = commit(&mut table, b);
        assert!(table.is_full());
        table.remove(ia);
        assert_eq!(table.lookup(&a), None);
        assert_eq!(table.lookup(&a.reversed()), None);
        assert!(table.lookup(&b).is_some());
        // Freed slot is reusable.
        let c = t(17, 5, 6, 50, 60);
        let ic = commit(&mut table, c);
        assert_eq!(ic, ia);
        assert_eq!(table.live(), 2);
    }

    #[test]
    fn clock_victim_honours_second_chance() {
        let mut table = ConnTable::new(4);
        let a = commit(&mut table, t(6, 1, 1, 1, 1));
        let b = commit(&mut table, t(6, 2, 2, 2, 2));
        let c = commit(&mut table, t(6, 3, 3, 3, 3));
        assert_eq!(table.clock_victim(), Some(a));
        table.touch(a); // a is granted a second chance; b becomes the victim
        assert_eq!(table.clock_victim(), Some(b));
        table.remove(b);
        // a's bit was cleared by the rotation above, but c is older now.
        assert_eq!(table.clock_victim(), Some(c));
        table.remove(c);
        assert_eq!(table.clock_victim(), Some(a));
        table.remove(a);
        assert_eq!(table.clock_victim(), None);
    }

    #[test]
    fn clock_victim_terminates_when_everything_is_hot() {
        let mut table = ConnTable::new(4);
        let idxs: Vec<u32> = (1..=4u32)
            .map(|i| {
                let idx = commit(&mut table, t(6, i, i, 1, 1));
                table.touch(idx);
                idx
            })
            .collect();
        // All bits set: one full rotation clears them and the oldest falls.
        assert_eq!(table.clock_victim(), Some(idxs[0]));
    }

    #[test]
    fn dense_fill_and_drain_keeps_index_consistent() {
        // Exercises backward-shift deletion across long probe chains.
        let cap = 512;
        let mut table = ConnTable::new(cap);
        let tuples: Vec<CtTuple> = (0..cap as u32)
            .map(|i| t(6, 0x0a000000 + i, 0x0b000000 + i, (i % 60000) as u16, 443))
            .collect();
        let idxs: Vec<u32> = tuples.iter().map(|tp| commit(&mut table, *tp)).collect();
        assert!(table.is_full());
        assert!(table
            .insert(t(17, 9, 9, 9, 9), t(17, 9, 9, 9, 9), ConnState::UdpNew)
            .is_none());
        // Remove every other connection, then verify the survivors (both
        // directions) still resolve.
        for (i, idx) in idxs.iter().enumerate() {
            if i % 2 == 0 {
                table.remove(*idx);
            }
        }
        for (i, tp) in tuples.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(table.lookup(tp), None, "removed {i}");
            } else {
                let hit = table.lookup(tp);
                assert_eq!(hit, Some((idxs[i], Dir::Orig)), "survivor {i}");
                assert_eq!(table.lookup(&tp.reversed()), Some((idxs[i], Dir::Reply)));
            }
        }
        assert_eq!(table.live(), cap / 2);
    }
}
