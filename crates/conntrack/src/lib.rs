//! # conntrack — per-shard connection tracking for the sharded datapath
//!
//! Everything the stateless datapaths lack lives here: a slab-backed,
//! index-linked [`ConnTable`] keyed by the 5-tuple (zero-alloc on the
//! established path, fixed capacity with counted, policy-driven eviction), a
//! TCP state machine plus a UDP pseudo-state ([`tcp`]), a hashed timing
//! wheel for idle timeouts advanced at burst boundaries ([`wheel`]), NAT
//! port allocation ([`nat`]), maglev-style consistent hashing ([`maglev`]),
//! the canonical flow-bucket hash that defines the elastic-scheduling
//! migration unit ([`bucket`]), and the [`CtEngine`] tying them together
//! behind the [`openflow::ct::ConnCtx`] contract the datapath executors
//! thread. Whole buckets of connection state (plus their NAT allocators)
//! move between engines via [`CtEngine::export_bucket`] /
//! [`CtEngine::import_bucket`] when the sharded runtime rebalances.
//!
//! Ownership is strictly shard-local: each shard replica owns one
//! `CtEngine`; nothing here is shared mutably across threads. The only
//! cross-thread artifacts are the [`CtStats`] atomic counters (imported
//! through the `netdev::sync` facade so the `cfg(loom)` suite models them),
//! which the control plane aggregates into shutdown reports.

pub mod bucket;
pub mod engine;
pub mod key;
pub mod maglev;
pub mod nat;
pub mod stats;
pub mod table;
pub mod tcp;
pub mod wheel;

pub use bucket::{bucket_of, bucket_of_tuple, symmetric_tuple_hash, FLOW_BUCKETS};
pub use engine::{
    BucketExport, ConnExport, CtConfig, CtEngine, CtTimeouts, EvictionPolicy, LbGroup,
};
pub use key::ConnKey;
pub use maglev::{maglev_table, select};
pub use nat::PortAlloc;
pub use stats::{CtSnapshot, CtStats};
pub use table::{Conn, ConnTable, Dir};
pub use tcp::ConnState;
pub use wheel::TimerWheel;
