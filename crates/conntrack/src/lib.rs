//! # conntrack — per-shard connection tracking for the sharded datapath
//!
//! Everything the stateless datapaths lack lives here: a slab-backed,
//! index-linked [`ConnTable`] keyed by the 5-tuple (zero-alloc on the
//! established path, fixed capacity with counted, policy-driven eviction), a
//! TCP state machine plus a UDP pseudo-state ([`tcp`]), a hashed timing
//! wheel for idle timeouts advanced at burst boundaries ([`wheel`]), NAT
//! port allocation ([`nat`]), maglev-style consistent hashing ([`maglev`]),
//! and the [`CtEngine`] tying them together behind the
//! [`openflow::ct::ConnCtx`] contract the datapath executors thread.
//!
//! Ownership is strictly shard-local: each shard replica owns one
//! `CtEngine`; nothing here is shared mutably across threads. The only
//! cross-thread artifacts are the [`CtStats`] atomic counters (imported
//! through the `netdev::sync` facade so the `cfg(loom)` suite models them),
//! which the control plane aggregates into shutdown reports.

pub mod engine;
pub mod key;
pub mod maglev;
pub mod nat;
pub mod stats;
pub mod table;
pub mod tcp;
pub mod wheel;

pub use engine::{CtConfig, CtEngine, CtTimeouts, EvictionPolicy, LbGroup};
pub use key::ConnKey;
pub use maglev::{maglev_table, select};
pub use stats::{CtSnapshot, CtStats};
pub use table::{Conn, ConnTable, Dir};
pub use tcp::ConnState;
pub use wheel::TimerWheel;
