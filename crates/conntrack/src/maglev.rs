//! Maglev-style consistent hashing for the stateful L4 load balancer.
//!
//! The lookup table is built with Maglev's permutation-fill: each backend
//! owns a permutation of the table slots derived from two hashes of its
//! identity, and backends claim slots round-robin along their permutations
//! until the table is full. Properties the LB relies on: near-uniform slot
//! shares, and minimal disruption — removing one backend reassigns only
//! that backend's slots. Per-connection *pinning* (established flows keep
//! their backend across table rebuilds) is layered on top by the engine,
//! which stores the chosen backend in the connection record; the table is
//! consulted only on a connection's first packet.

use netdev::fx_mix;

/// Builds a Maglev lookup table of `size` slots mapping to backend
/// *indices* (`0..backends.len()`). `size` should comfortably exceed the
/// backend count (Maglev uses ≥ 100×); it is rounded up to the next odd
/// number so permutation skips stay coprime more often.
pub fn maglev_table(backends: &[u32], size: usize) -> Vec<u16> {
    assert!(
        backends.len() <= u16::MAX as usize,
        "too many backends for u16 table"
    );
    let m = if size.is_multiple_of(2) {
        size + 1
    } else {
        size
    };
    let mut table = vec![u16::MAX; m];
    if backends.is_empty() {
        return table;
    }
    let m64 = m as u64;
    // offset/skip per backend, as in the Maglev paper (§3.4).
    let params: Vec<(u64, u64)> = backends
        .iter()
        .map(|b| {
            let h1 = fx_mix(0x6d61_676c, u64::from(*b));
            let h2 = fx_mix(0x6576_5f68, u64::from(*b));
            (h1 % m64, (h2 % (m64 - 1)) + 1)
        })
        .collect();
    let mut next = vec![0u64; backends.len()];
    let mut filled = 0usize;
    while filled < m {
        for (i, (offset, skip)) in params.iter().enumerate() {
            // Walk backend i's permutation until it finds a free slot. When
            // `skip` shares a factor with a composite `m`, the walk is a
            // sub-cycle that may be fully claimed already — bound it at `m`
            // steps and claim the next free slot directly, so the fill
            // terminates for every table size (the Maglev paper sidesteps
            // this by requiring a prime `m`; we only round to odd).
            let mut attempts = 0u64;
            loop {
                if attempts >= m64 {
                    let pos = table
                        .iter()
                        .position(|s| *s == u16::MAX)
                        .expect("free slot exists while filled < m");
                    table[pos] = i as u16;
                    filled += 1;
                    break;
                }
                let pos = ((offset + next[i] * skip) % m64) as usize;
                next[i] += 1;
                attempts += 1;
                if table[pos] == u16::MAX {
                    table[pos] = i as u16;
                    filled += 1;
                    break;
                }
            }
            if filled == m {
                break;
            }
        }
    }
    table
}

/// Selects a backend index for a connection hash.
#[inline]
pub fn select(table: &[u16], hash: u64) -> u16 {
    table[(hash % table.len() as u64) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_are_near_uniform() {
        let backends: Vec<u32> = (1..=8).collect();
        let table = maglev_table(&backends, 1009);
        let mut counts = vec![0usize; backends.len()];
        for slot in &table {
            counts[*slot as usize] += 1;
        }
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(min > 0);
        // Maglev guarantees tight balance; allow a generous 2x bound.
        assert!(max <= min * 2, "min={min} max={max}");
    }

    #[test]
    fn removal_is_minimally_disruptive() {
        let full: Vec<u32> = (1..=8).collect();
        let reduced: Vec<u32> = (1..=7).collect();
        let t_full = maglev_table(&full, 1009);
        let t_red = maglev_table(&reduced, 1009);
        let mut moved = 0usize;
        for (a, b) in t_full.iter().zip(t_red.iter()) {
            // Slots owned by a surviving backend should mostly keep it.
            if *a != 7 && a != b {
                moved += 1;
            }
        }
        // Fewer than 20% of surviving-backend slots may move.
        assert!(
            moved * 5 < t_full.len(),
            "moved {moved} of {}",
            t_full.len()
        );
    }

    #[test]
    fn composite_table_size_terminates_and_fills() {
        // 513 = 27 * 19: skips sharing a factor with m walk sub-cycles.
        // Regression: this exact backend set + size used to hang the fill.
        let backends = [0x0a0a_0001u32, 0x0a0a_0002, 0x0a0a_0003, 0x0a0a_0004];
        let table = maglev_table(&backends, 513);
        assert_eq!(table.len(), 513);
        assert!(table.iter().all(|s| (*s as usize) < backends.len()));
        for b in 0..backends.len() as u16 {
            assert!(table.contains(&b), "backend {b} owns no slot");
        }
    }

    #[test]
    fn selection_is_deterministic_and_in_range() {
        let table = maglev_table(&[10, 20, 30], 101);
        for h in 0..1000u64 {
            let b = select(&table, fx_mix(0, h));
            assert!(b < 3);
            assert_eq!(b, select(&table, fx_mix(0, h)));
        }
    }
}
