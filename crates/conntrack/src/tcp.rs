//! Connection state machine: TCP states plus a UDP pseudo-state.
//!
//! Deliberately lenient ("pickup" tracking, as conntrack implementations
//! call it): any reply-direction packet promotes a new connection to
//! established — the tracker polices *direction*, not sequence numbers.
//! That is the property the stateful ACL gateway needs (only replies to
//! committed connections pass) and it keeps the per-packet work to a
//! two-branch table.

/// TCP flag bits (byte 13 of the TCP header).
pub const FIN: u8 = 0x01;
/// SYN bit.
pub const SYN: u8 = 0x02;
/// RST bit.
pub const RST: u8 = 0x04;
/// ACK bit.
pub const ACK: u8 = 0x10;

/// Protocol state of a tracked connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConnState {
    /// TCP connection seen in the original direction only.
    TcpSynSent,
    /// TCP connection with traffic in both directions.
    TcpEstablished,
    /// FIN observed (either direction); short teardown timeout.
    TcpFin,
    /// RST observed: the connection is dead and is removed immediately.
    TcpClosed,
    /// UDP flow seen in the original direction only.
    UdpNew,
    /// UDP flow with traffic in both directions.
    UdpEstablished,
}

impl ConnState {
    /// Initial state for a connection's first packet.
    pub fn initial(proto: u8) -> ConnState {
        if proto == 6 {
            ConnState::TcpSynSent
        } else {
            ConnState::UdpNew
        }
    }

    /// True for the states that carry bidirectional traffic.
    pub fn is_established(self) -> bool {
        matches!(self, ConnState::TcpEstablished | ConnState::UdpEstablished)
    }

    /// Advances the state for one packet. `reply_dir` is true when the
    /// packet travels against the original direction.
    #[inline]
    pub fn advance(self, reply_dir: bool, tcp_flags: u8) -> ConnState {
        match self {
            ConnState::UdpNew => {
                if reply_dir {
                    ConnState::UdpEstablished
                } else {
                    ConnState::UdpNew
                }
            }
            ConnState::UdpEstablished => ConnState::UdpEstablished,
            tcp => {
                if tcp_flags & RST != 0 {
                    return ConnState::TcpClosed;
                }
                if tcp_flags & FIN != 0 {
                    return ConnState::TcpFin;
                }
                match tcp {
                    ConnState::TcpSynSent => {
                        if reply_dir {
                            ConnState::TcpEstablished
                        } else {
                            ConnState::TcpSynSent
                        }
                    }
                    other => other,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tcp_handshake_path() {
        let s = ConnState::initial(6);
        assert_eq!(s, ConnState::TcpSynSent);
        // Retransmitted SYN stays new.
        assert_eq!(s.advance(false, SYN), ConnState::TcpSynSent);
        // SYN-ACK from the responder establishes.
        let s = s.advance(true, SYN | ACK);
        assert_eq!(s, ConnState::TcpEstablished);
        assert!(s.is_established());
        // Data in either direction keeps it established.
        assert_eq!(s.advance(false, ACK), ConnState::TcpEstablished);
        assert_eq!(s.advance(true, ACK), ConnState::TcpEstablished);
    }

    #[test]
    fn fin_and_rst_teardown() {
        let est = ConnState::TcpEstablished;
        assert_eq!(est.advance(false, FIN | ACK), ConnState::TcpFin);
        assert_eq!(
            ConnState::TcpFin.advance(true, FIN | ACK),
            ConnState::TcpFin
        );
        assert_eq!(est.advance(true, RST), ConnState::TcpClosed);
        assert_eq!(
            ConnState::TcpSynSent.advance(false, RST),
            ConnState::TcpClosed
        );
        // RST wins over FIN if both are set.
        assert_eq!(est.advance(false, FIN | RST), ConnState::TcpClosed);
    }

    #[test]
    fn udp_pseudo_state() {
        let s = ConnState::initial(17);
        assert_eq!(s, ConnState::UdpNew);
        assert_eq!(s.advance(false, 0), ConnState::UdpNew);
        let s = s.advance(true, 0);
        assert_eq!(s, ConnState::UdpEstablished);
        assert!(s.is_established());
    }
}
