//! NAT port allocation.
//!
//! Ports are handed out sequentially from the configured range, partitioned
//! by stride: partition *k* of *n* allocates `lo + k`, `lo + k + n`,
//! `lo + k + 2n`, … so disjoint partitions never hand out the same source
//! port for the same SNAT address without any coordination — the
//! shared-nothing discipline the rest of the runtime follows. The engine
//! keys partitions by *flow bucket* (the elastic-scheduling unit), not by
//! shard: a port is then a pure function of the connection's bucket and its
//! creation order within it, so migrating the bucket — allocator state and
//! all — to another shard reproduces the exact translation sequence the old
//! owner would have produced.
//!
//! Allocation wraps when the partition is exhausted; the engine bounds live
//! connections well below the port span in practice, and a wrapped port
//! whose previous connection is still live simply aliases the reply tuple
//! (looked up first-come). Exhaustion accounting is the capacity
//! eviction's job, not the allocator's.

/// Sequential, stride-partitioned port allocator for one NAT range.
#[derive(Debug, Clone)]
pub struct PortAlloc {
    lo: u16,
    span: u32,
    offset: u32,
    stride: u32,
    next: u32,
}

impl PortAlloc {
    /// Creates an allocator over `[lo, hi]` for partition `index` of
    /// `count` (the engine passes the flow bucket and the bucket count).
    pub fn new(lo: u16, hi: u16, index: u32, count: u32) -> PortAlloc {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        PortAlloc {
            lo,
            span: u32::from(hi - lo) + 1,
            offset: index,
            stride: count.max(1),
            next: 0,
        }
    }

    /// Allocates the next port of this partition.
    #[inline]
    pub fn alloc(&mut self) -> u16 {
        let slot = (self.offset + self.next.wrapping_mul(self.stride)) % self.span;
        self.next = self.next.wrapping_add(1);
        self.lo + slot as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_within_a_shard() {
        let mut a = PortAlloc::new(1000, 1009, 0, 1);
        let got: Vec<u16> = (0..12).map(|_| a.alloc()).collect();
        assert_eq!(got[..10], (1000..1010).collect::<Vec<u16>>()[..]);
        // Wraps after the span.
        assert_eq!(&got[10..], &[1000, 1001]);
    }

    #[test]
    fn shards_partition_the_range() {
        let mut s0 = PortAlloc::new(2000, 2009, 0, 2);
        let mut s1 = PortAlloc::new(2000, 2009, 1, 2);
        let p0: Vec<u16> = (0..5).map(|_| s0.alloc()).collect();
        let p1: Vec<u16> = (0..5).map(|_| s1.alloc()).collect();
        assert_eq!(p0, vec![2000, 2002, 2004, 2006, 2008]);
        assert_eq!(p1, vec![2001, 2003, 2005, 2007, 2009]);
        for p in &p0 {
            assert!(!p1.contains(p));
        }
    }
}
