//! Flow buckets: the unit of elastic shard scheduling.
//!
//! The sharded runtime steers packets through a NIC-style RSS *indirection
//! table*: the flow hash indexes a fixed power-of-two array of
//! [`FLOW_BUCKETS`] buckets and the table entry names the owning shard.
//! Remapping a bucket moves every flow that hashes into it — and, for
//! stateful pipelines, every connection and NAT allocator the bucket owns —
//! so the bucket id must be computable from *both* a frame (dispatch time)
//! and a stored connection tuple (migration time). That is why the canonical
//! hash lives here, in the conntrack crate, below both users: the shard
//! crate's `rss_hash_symmetric` delegates to [`symmetric_tuple_hash`], and
//! [`CtEngine::export_bucket`](crate::CtEngine::export_bucket) applies the
//! same function to each connection's original tuple.
//!
//! NAT port allocation is striped by bucket (not by shard) for the same
//! reason: a port must remain a pure function of the connection's bucket and
//! its creation order within that bucket, so a connection keeps — and a
//! replayed trace reproduces — the exact same translation no matter which
//! shard the bucket happens to live on.

use netdev::fx_mix;
use openflow::ct::CtTuple;

/// Number of indirection-table buckets. A power of two, comfortably larger
/// than any realistic shard count (NIC RETAs are 128–512 entries), so the
/// rebalancer has fine-grained units to move while the table stays one cache
/// line per 32 entries.
pub const FLOW_BUCKETS: usize = 256;

/// Direction-insensitive hash of a connection tuple: both directions of one
/// connection collapse to the same value (endpoints are ordered canonically
/// before mixing, mirroring symmetric-Toeplitz NIC configurations). This is
/// the canonical definition; `shard::rss_hash_symmetric` must produce
/// exactly this value for a parsed frame so that dispatch-time steering and
/// migration-time bucket membership agree.
pub fn symmetric_tuple_hash(t: &CtTuple) -> u64 {
    let a = (u64::from(t.src_ip) << 16) | u64::from(t.src_port);
    let b = (u64::from(t.dst_ip) << 16) | u64::from(t.dst_port);
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    fx_mix(fx_mix(fx_mix(0, lo), hi), u64::from(t.proto))
}

/// Maps an RSS hash onto a bucket index. Multiply-shift on the high bits,
/// like the hash→shard reduction it replaces: the grouping hash mixes its
/// entropy into the high word, and the reduction stays bias-free.
#[inline]
pub fn bucket_of(hash: u64) -> usize {
    ((u128::from(hash) * FLOW_BUCKETS as u128) >> 64) as usize
}

/// The bucket a connection belongs to: the bucket of its original-direction
/// tuple's symmetric hash. Replies of untranslated connections hash to the
/// same value; NAT'd replies carry a rewritten tuple and may hash elsewhere
/// (the documented symmetric-RSS limitation), so bucket membership is always
/// defined by `orig`.
#[inline]
pub fn bucket_of_tuple(t: &CtTuple) -> usize {
    bucket_of(symmetric_tuple_hash(t))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(proto: u8, s: u32, d: u32, sp: u16, dp: u16) -> CtTuple {
        CtTuple {
            proto,
            src_ip: s,
            dst_ip: d,
            src_port: sp,
            dst_port: dp,
        }
    }

    #[test]
    fn both_directions_share_a_bucket() {
        for i in 0..512u32 {
            let fwd = t(6, 0x0a000001 + i, 0x0a00ff01, 1024 + (i % 1000) as u16, 80);
            assert_eq!(
                symmetric_tuple_hash(&fwd),
                symmetric_tuple_hash(&fwd.reversed()),
                "i={i}"
            );
            assert_eq!(bucket_of_tuple(&fwd), bucket_of_tuple(&fwd.reversed()));
        }
    }

    #[test]
    fn buckets_spread() {
        let mut counts = [0usize; FLOW_BUCKETS];
        for i in 0..8192u32 {
            let tuple = t(
                6,
                0x0a000000 + i,
                0x0b000000 + (i % 7),
                1024 + (i % 60000) as u16,
                443,
            );
            let b = bucket_of_tuple(&tuple);
            assert!(b < FLOW_BUCKETS);
            counts[b] += 1;
        }
        let occupied = counts.iter().filter(|&&c| c > 0).count();
        // 8192 flows over 256 buckets: essentially every bucket is hit.
        assert!(
            occupied > FLOW_BUCKETS * 9 / 10,
            "only {occupied} buckets hit"
        );
        let max = counts.iter().max().copied().unwrap_or(0);
        assert!(max < 8192 / FLOW_BUCKETS * 4, "hottest bucket holds {max}");
    }
}
