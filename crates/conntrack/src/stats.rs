//! Per-shard connection-tracking counters.
//!
//! One `CtStats` per shard engine, `Arc`-shared with the control plane so
//! shutdown reports can aggregate without touching the engine itself.
//! Orderings follow the `netdev::stats::Counters` discipline: increments
//! are `Release`, reads `Acquire` — free on x86-TSO, and it makes the
//! counters usable as progress signals (a reader that observes a count
//! also observes the table mutations that preceded it). Imported through
//! the `netdev::sync` facade so the `loom_conntrack` suite model-checks
//! exactly this code.
//!
//! The counters satisfy a conservation identity the shutdown path asserts:
//! `created + migrated_in == live + evicted_idle + evicted_capacity +
//! teardown + migrated_out` — every connection this shard ever admitted
//! (created here, or imported by a bucket migration) is either still live or
//! left for exactly one counted reason. `refused` counts admissions declined
//! *before* creation and is outside the identity by construction. Merged
//! across shards, `migrated_in` and `migrated_out` cancel (every export has
//! exactly one import), so the aggregate identity reduces to the original
//! created-based form.

use netdev::sync::atomic::{AtomicU64, Ordering};

/// Atomic per-shard ct counters. All increments happen on the owning
/// shard's worker; any thread may read.
#[derive(Debug, Default)]
pub struct CtStats {
    created: AtomicU64,
    hits: AtomicU64,
    denied: AtomicU64,
    refused: AtomicU64,
    evicted_idle: AtomicU64,
    evicted_capacity: AtomicU64,
    teardown: AtomicU64,
    migrated_in: AtomicU64,
    migrated_out: AtomicU64,
    live: AtomicU64,
}

impl CtStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// A connection was created (any verb).
    pub fn record_created(&self) {
        self.created.fetch_add(1, Ordering::Release);
        self.live.fetch_add(1, Ordering::Release);
    }

    /// A packet hit an existing connection.
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Release);
    }

    /// `n` packets hit existing connections. The engine batches hits per
    /// tick and flushes them here, keeping the per-packet path free of
    /// locked read-modify-writes; `hits` therefore lags the truth by at
    /// most one burst until the next tick (or engine drop) flushes.
    pub fn record_hits(&self, n: u64) {
        self.hits.fetch_add(n, Ordering::Release);
    }

    /// A packet was denied by a stateful verb (no matching connection).
    pub fn record_denied(&self) {
        self.denied.fetch_add(1, Ordering::Release);
    }

    /// An admission was refused because the table was full (refuse-new
    /// policy). No connection was created.
    pub fn record_refused(&self) {
        self.refused.fetch_add(1, Ordering::Release);
    }

    /// A connection was reclaimed by the idle-timeout wheel.
    pub fn record_evicted_idle(&self) {
        self.evicted_idle.fetch_add(1, Ordering::Release);
        self.live.fetch_sub(1, Ordering::Release);
    }

    /// A connection was evicted to make room (LRU policy).
    pub fn record_evicted_capacity(&self) {
        self.evicted_capacity.fetch_add(1, Ordering::Release);
        self.live.fetch_sub(1, Ordering::Release);
    }

    /// A connection was torn down by protocol (TCP RST).
    pub fn record_teardown(&self) {
        self.teardown.fetch_add(1, Ordering::Release);
        self.live.fetch_sub(1, Ordering::Release);
    }

    /// A connection arrived via bucket migration (imported from another
    /// shard).
    pub fn record_migrated_in(&self) {
        self.migrated_in.fetch_add(1, Ordering::Release);
        self.live.fetch_add(1, Ordering::Release);
    }

    /// A connection left via bucket migration (exported to another shard).
    pub fn record_migrated_out(&self) {
        self.migrated_out.fetch_add(1, Ordering::Release);
        self.live.fetch_sub(1, Ordering::Release);
    }

    /// Connections created so far.
    pub fn created(&self) -> u64 {
        self.created.load(Ordering::Acquire)
    }

    /// Established-path hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Acquire)
    }

    /// Stateful denials so far.
    pub fn denied(&self) -> u64 {
        self.denied.load(Ordering::Acquire)
    }

    /// Refused admissions so far.
    pub fn refused(&self) -> u64 {
        self.refused.load(Ordering::Acquire)
    }

    /// Idle-timeout reclamations so far.
    pub fn evicted_idle(&self) -> u64 {
        self.evicted_idle.load(Ordering::Acquire)
    }

    /// Capacity evictions so far.
    pub fn evicted_capacity(&self) -> u64 {
        self.evicted_capacity.load(Ordering::Acquire)
    }

    /// Protocol teardowns so far.
    pub fn teardown(&self) -> u64 {
        self.teardown.load(Ordering::Acquire)
    }

    /// Connections imported by bucket migration so far.
    pub fn migrated_in(&self) -> u64 {
        self.migrated_in.load(Ordering::Acquire)
    }

    /// Connections exported by bucket migration so far.
    pub fn migrated_out(&self) -> u64 {
        self.migrated_out.load(Ordering::Acquire)
    }

    /// Currently live connections (gauge).
    pub fn live(&self) -> u64 {
        self.live.load(Ordering::Acquire)
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> CtSnapshot {
        CtSnapshot {
            created: self.created(),
            hits: self.hits(),
            denied: self.denied(),
            refused: self.refused(),
            evicted_idle: self.evicted_idle(),
            evicted_capacity: self.evicted_capacity(),
            teardown: self.teardown(),
            migrated_in: self.migrated_in(),
            migrated_out: self.migrated_out(),
            live: self.live(),
        }
    }
}

/// Plain-data copy of [`CtStats`] at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CtSnapshot {
    /// Connections created.
    pub created: u64,
    /// Established-path hits.
    pub hits: u64,
    /// Stateful denials.
    pub denied: u64,
    /// Refused admissions (table full, refuse-new policy).
    pub refused: u64,
    /// Idle-timeout reclamations.
    pub evicted_idle: u64,
    /// Capacity (LRU) evictions.
    pub evicted_capacity: u64,
    /// Protocol (RST) teardowns.
    pub teardown: u64,
    /// Connections imported by bucket migration.
    pub migrated_in: u64,
    /// Connections exported by bucket migration.
    pub migrated_out: u64,
    /// Live connections at snapshot time.
    pub live: u64,
}

impl CtSnapshot {
    /// The conservation identity: every connection this shard admitted
    /// (created or migrated in) is live or left for exactly one counted
    /// reason. Holds whenever the engine is quiescent (between bursts / at
    /// shutdown). Merged across shards the migration terms cancel, so the
    /// aggregate identity matches the single-shard created-based form.
    pub fn identity_holds(&self) -> bool {
        self.created + self.migrated_in
            == self.live
                + self.evicted_idle
                + self.evicted_capacity
                + self.teardown
                + self.migrated_out
    }

    /// Field-wise sum of two snapshots (cross-shard aggregation).
    pub fn merged(&self, other: &CtSnapshot) -> CtSnapshot {
        CtSnapshot {
            created: self.created + other.created,
            hits: self.hits + other.hits,
            denied: self.denied + other.denied,
            refused: self.refused + other.refused,
            evicted_idle: self.evicted_idle + other.evicted_idle,
            evicted_capacity: self.evicted_capacity + other.evicted_capacity,
            teardown: self.teardown + other.teardown,
            migrated_in: self.migrated_in + other.migrated_in,
            migrated_out: self.migrated_out + other.migrated_out,
            live: self.live + other.live,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_identity() {
        let s = CtStats::new();
        for _ in 0..10 {
            s.record_created();
        }
        s.record_evicted_idle();
        s.record_evicted_capacity();
        s.record_teardown();
        s.record_refused();
        s.record_hit();
        let snap = s.snapshot();
        assert_eq!(snap.live, 7);
        assert!(snap.identity_holds());
        let double = snap.merged(&snap);
        assert_eq!(double.created, 20);
        assert!(double.identity_holds());
    }

    #[test]
    fn migration_balances_the_identity() {
        let src = CtStats::new();
        let dst = CtStats::new();
        for _ in 0..4 {
            src.record_created();
        }
        // Two connections migrate src → dst.
        for _ in 0..2 {
            src.record_migrated_out();
            dst.record_migrated_in();
        }
        dst.record_teardown();
        let (s, d) = (src.snapshot(), dst.snapshot());
        assert_eq!(s.live, 2);
        assert_eq!(d.live, 1);
        assert!(s.identity_holds(), "exporter identity");
        assert!(d.identity_holds(), "importer identity");
        let merged = s.merged(&d);
        assert!(merged.identity_holds());
        // Merged, the migration terms cancel against each other.
        assert_eq!(merged.created, merged.live + merged.teardown);
    }
}
