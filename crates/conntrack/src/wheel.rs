//! Hashed timing wheel for idle timeouts.
//!
//! Declared a fast-path module (`cargo xtask lint` bans allocation
//! constructors here). One node per connection slab slot, intrusively
//! doubly-linked into `slots` buckets by deadline tick. Time is virtual:
//! the worker loop advances one tick per processed burst, so timeouts are
//! deterministic and need no clock syscalls on the datapath.
//!
//! The wheel does not store deadlines: the owner keeps the authoritative
//! deadline (the engine stores it in the connection record — a cache line
//! the established path already writes, so a re-arm touches **zero**
//! wheel memory). A node is scheduled into the bucket of its *initial*
//! deadline; when that bucket is swept, [`TimerWheel::advance_to`] asks
//! the owner whether the node is due — `None` expires it, `Some(later)`
//! re-buckets it ("lazy re-arm"). Consequence: a deadline that was
//! *shortened* after scheduling can fire up to `slots - 1` ticks late —
//! idle timeouts are deliberately approximate, as in every hashed-wheel
//! implementation.

/// Sentinel for "no node"/"not linked".
const NONE: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct WheelNode {
    prev: u32,
    next: u32,
    /// Bucket the node is currently linked into, or `NONE`.
    bucket: u32,
}

const EMPTY_NODE: WheelNode = WheelNode {
    prev: NONE,
    next: NONE,
    bucket: NONE,
};

/// The wheel: per-slot bucket heads plus one node per connection slot.
#[derive(Debug)]
pub struct TimerWheel {
    buckets: Vec<u32>,
    nodes: Vec<WheelNode>,
    now: u64,
}

impl TimerWheel {
    /// Creates a wheel covering `capacity` connection slots with `slots`
    /// buckets (rounded up to a power of two). The only allocations the
    /// wheel ever performs happen here.
    pub fn new(capacity: usize, slots: usize) -> TimerWheel {
        let slots = slots.max(2).next_power_of_two();
        let mut buckets = Vec::with_capacity(slots);
        buckets.resize(slots, NONE);
        let mut nodes = Vec::with_capacity(capacity);
        nodes.resize(capacity, EMPTY_NODE);
        TimerWheel {
            buckets,
            nodes,
            now: 0,
        }
    }

    /// Current virtual tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Bytes held by the buckets and nodes — fixed at construction.
    pub fn memory_bytes(&self) -> usize {
        self.buckets.capacity() * std::mem::size_of::<u32>()
            + self.nodes.capacity() * std::mem::size_of::<WheelNode>()
    }

    /// Schedules (or re-schedules) node `idx` into the bucket of
    /// `deadline`, linking it into the wheel. Connection-setup path; the
    /// caller remains the authority on the actual deadline value.
    pub fn schedule(&mut self, idx: u32, deadline: u64) {
        if self.nodes[idx as usize].bucket != NONE {
            self.unlink(idx);
        }
        self.link(idx, deadline);
    }

    /// Unlinks node `idx` (connection removed by teardown or eviction).
    pub fn cancel(&mut self, idx: u32) {
        if self.nodes[idx as usize].bucket != NONE {
            self.unlink(idx);
        }
    }

    /// Advances virtual time to `target`, sweeping due buckets. For every
    /// node in a swept bucket, `decide` reports its fate: `None` means the
    /// node is due — it stays unlinked (the caller reclaims it inside
    /// `decide`); `Some(later)` means activity pushed its deadline out —
    /// the node is re-bucketed for `later`. At most one full rotation is
    /// swept regardless of how large the jump is.
    pub fn advance_to(&mut self, target: u64, mut decide: impl FnMut(u32) -> Option<u64>) {
        if target <= self.now {
            return;
        }
        let slots = self.buckets.len() as u64;
        let steps = (target - self.now).min(slots);
        for t in self.now + 1..=self.now + steps {
            let b = (t % slots) as usize;
            // Detach the whole bucket, then re-link survivors, so the
            // traversal never sees its own re-insertions.
            let mut i = self.buckets[b];
            self.buckets[b] = NONE;
            while i != NONE {
                let node = self.nodes[i as usize];
                self.nodes[i as usize] = EMPTY_NODE;
                if let Some(later) = decide(i) {
                    self.link(i, later);
                }
                i = node.next;
            }
        }
        self.now = target;
    }

    fn link(&mut self, idx: u32, deadline: u64) {
        let slots = self.buckets.len() as u64;
        let b = (deadline % slots) as usize;
        let head = self.buckets[b];
        {
            let n = &mut self.nodes[idx as usize];
            n.prev = NONE;
            n.next = head;
            n.bucket = b as u32;
        }
        if head != NONE {
            self.nodes[head as usize].prev = idx;
        }
        self.buckets[b] = idx;
    }

    fn unlink(&mut self, idx: u32) {
        let node = self.nodes[idx as usize];
        if node.prev != NONE {
            self.nodes[node.prev as usize].next = node.next;
        } else {
            self.buckets[node.bucket as usize] = node.next;
        }
        if node.next != NONE {
            self.nodes[node.next as usize].prev = node.prev;
        }
        let n = &mut self.nodes[idx as usize];
        n.prev = NONE;
        n.next = NONE;
        n.bucket = NONE;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Advances to `target` against an owner-side deadline table, returning
    /// the nodes that expired — the engine's usage pattern in miniature.
    fn drain(wheel: &mut TimerWheel, deadlines: &[u64], target: u64) -> Vec<u32> {
        let mut out = Vec::new();
        wheel.advance_to(target, |i| {
            let d = deadlines[i as usize];
            if d <= target {
                out.push(i);
                None
            } else {
                Some(d)
            }
        });
        out.sort_unstable();
        out
    }

    #[test]
    fn expires_at_deadline() {
        let mut w = TimerWheel::new(8, 16);
        let deadlines = [5u64, 7, 0, 0, 0, 0, 0, 0];
        w.schedule(0, 5);
        w.schedule(1, 7);
        assert_eq!(drain(&mut w, &deadlines, 4), vec![]);
        assert_eq!(drain(&mut w, &deadlines, 5), vec![0]);
        assert_eq!(drain(&mut w, &deadlines, 10), vec![1]);
        assert_eq!(w.now(), 10);
    }

    #[test]
    fn lazy_rearm_defers_expiry() {
        let mut w = TimerWheel::new(4, 8);
        let mut deadlines = [0u64; 4];
        deadlines[2] = 3;
        w.schedule(2, 3);
        deadlines[2] = 20; // activity: owner extends, wheel untouched
        assert_eq!(drain(&mut w, &deadlines, 10), vec![]);
        assert_eq!(drain(&mut w, &deadlines, 20), vec![2]);
    }

    #[test]
    fn cancel_prevents_expiry() {
        let mut w = TimerWheel::new(4, 8);
        w.schedule(1, 2);
        w.cancel(1);
        assert_eq!(drain(&mut w, &[0, 2, 0, 0], 100), vec![]);
    }

    #[test]
    fn large_jump_sweeps_whole_rotation_once() {
        let mut w = TimerWheel::new(64, 8);
        let deadlines: Vec<u64> = (0..64u64).map(|i| 1 + i).collect();
        for i in 0..64u32 {
            w.schedule(i, deadlines[i as usize]);
        }
        // Jump far past every deadline in one call.
        let fired = drain(&mut w, &deadlines, 1_000_000);
        assert_eq!(fired, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn deadlines_beyond_one_rotation_survive_sweeps() {
        let mut w = TimerWheel::new(2, 8);
        w.schedule(0, 100); // 12+ rotations out
        for t in (10..100).step_by(10) {
            assert_eq!(drain(&mut w, &[100, 0], t), vec![], "tick {t}");
        }
        assert_eq!(drain(&mut w, &[100, 0], 100), vec![0]);
    }
}
