//! The per-shard connection-tracking engine.
//!
//! Owns the [`ConnTable`], the [`TimerWheel`], the NAT port allocators and
//! the maglev LB state, and implements [`ConnCtx`] so datapath executors
//! can thread it through ct actions. Exactly one engine exists per shard;
//! nothing in here is shared across threads except the [`CtStats`]
//! counters (facade atomics, `Arc`-shared for shutdown aggregation).
//!
//! Time is virtual: the worker loop calls [`CtEngine::tick`] once per
//! processed burst, which advances the wheel and reclaims idle
//! connections. All timeouts are expressed in ticks.

use netdev::sync::Arc;
use openflow::ct::{ConnCtx, CtOutcome, CtTuple, CtVerb, NatSpec};
use openflow::Field;

use crate::bucket::{bucket_of_tuple, FLOW_BUCKETS};
use crate::key::tuple_hash;
use crate::maglev::{maglev_table, select};
use crate::nat::PortAlloc;
use crate::stats::CtStats;
use crate::table::{ConnTable, Dir};
use crate::tcp::ConnState;
use crate::wheel::TimerWheel;

/// What to do when a new connection arrives and the table is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Refuse the new connection (counted as `refused`). Commit verbs pass
    /// the packet untracked; NAT/LB verbs — which cannot forward without
    /// state — drop it.
    RefuseNew,
    /// Evict the least-recently-used connection to make room (counted as
    /// `evicted_capacity`). Recency is approximate — second-chance (CLOCK)
    /// order, so the established path pays one bit-store per hit instead
    /// of list surgery.
    Lru,
}

/// Idle timeouts in virtual ticks (one tick per processed burst), by state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtTimeouts {
    /// TCP connection not yet answered.
    pub tcp_syn: u64,
    /// TCP connection with bidirectional traffic.
    pub tcp_established: u64,
    /// TCP connection after a FIN.
    pub tcp_fin: u64,
    /// UDP flow not yet answered.
    pub udp_new: u64,
    /// UDP flow with bidirectional traffic.
    pub udp_established: u64,
}

impl Default for CtTimeouts {
    fn default() -> Self {
        CtTimeouts {
            tcp_syn: 32,
            tcp_established: 2048,
            tcp_fin: 16,
            udp_new: 64,
            udp_established: 512,
        }
    }
}

impl CtTimeouts {
    fn for_state(&self, state: ConnState) -> u64 {
        match state {
            ConnState::TcpSynSent => self.tcp_syn,
            ConnState::TcpEstablished => self.tcp_established,
            ConnState::TcpFin | ConnState::TcpClosed => self.tcp_fin,
            ConnState::UdpNew => self.udp_new,
            ConnState::UdpEstablished => self.udp_established,
        }
    }
}

/// One load-balancer backend group: a virtual IP fronting a backend set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LbGroup {
    /// The virtual IP the group serves (informational; the pipeline's match
    /// decides which traffic reaches the Lb verb).
    pub vip: u32,
    /// Backend addresses.
    pub backends: Vec<u32>,
    /// Maglev table size (rounded up to odd; ≥ 100× backends recommended).
    pub table_size: usize,
}

/// Engine configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtConfig {
    /// Maximum live connections per shard (slab capacity; fixed).
    pub capacity: usize,
    /// Timer-wheel bucket count (rounded up to a power of two).
    pub wheel_slots: usize,
    /// Full-table admission policy.
    pub eviction: EvictionPolicy,
    /// Idle timeouts by state, in ticks.
    pub timeouts: CtTimeouts,
    /// LB groups, indexed by the `group` id of [`CtVerb::Lb`].
    pub lb_groups: Vec<LbGroup>,
}

impl Default for CtConfig {
    fn default() -> Self {
        CtConfig {
            capacity: 4096,
            wheel_slots: 256,
            eviction: EvictionPolicy::Lru,
            timeouts: CtTimeouts::default(),
            lb_groups: Vec::new(),
        }
    }
}

#[derive(Debug)]
struct LbState {
    vip: u32,
    backends: Vec<u32>,
    table: Vec<u16>,
}

/// The per-shard connection-tracking engine. See the module docs.
#[derive(Debug)]
pub struct CtEngine {
    table: ConnTable,
    wheel: TimerWheel,
    stats: Arc<CtStats>,
    timeouts: CtTimeouts,
    eviction: EvictionPolicy,
    /// One allocator per (SNAT spec, flow bucket) pair, created lazily.
    /// Bucket-striped (not shard-striped) so a connection's translation is a
    /// pure function of its bucket and creation order — independent of
    /// which shard the bucket currently lives on — and so the allocator
    /// state can travel with the bucket on migration.
    nat_allocs: Vec<(NatSpec, usize, PortAlloc)>,
    lb: Vec<LbState>,
    /// Established-path hits since the last flush. Batched into the shared
    /// atomic on every tick (and on drop) so the hot path pays a plain
    /// increment instead of a locked read-modify-write per packet.
    pending_hits: u64,
}

impl CtEngine {
    /// Creates an engine with fresh stats. Engines carry no shard identity:
    /// NAT striping is per flow bucket, so any shard can own any bucket and
    /// produce identical translations.
    pub fn new(config: &CtConfig) -> CtEngine {
        Self::with_stats(config, Arc::new(CtStats::new()))
    }

    /// Like [`CtEngine::new`] but recording into caller-owned counters
    /// (the sharded runtime creates them at launch so reports survive the
    /// engine).
    pub fn with_stats(config: &CtConfig, stats: Arc<CtStats>) -> CtEngine {
        let lb = config
            .lb_groups
            .iter()
            .map(|g| LbState {
                vip: g.vip,
                backends: g.backends.clone(),
                table: maglev_table(&g.backends, g.table_size),
            })
            .collect();
        CtEngine {
            table: ConnTable::new(config.capacity),
            wheel: TimerWheel::new(config.capacity, config.wheel_slots),
            stats,
            timeouts: config.timeouts,
            eviction: config.eviction,
            nat_allocs: Vec::new(),
            lb,
            pending_hits: 0,
        }
    }

    /// The shared counters.
    pub fn stats(&self) -> &Arc<CtStats> {
        &self.stats
    }

    /// Live connections right now.
    pub fn live(&self) -> usize {
        self.table.live()
    }

    /// Slab capacity (the memory bound: no load grows the table past it).
    pub fn capacity(&self) -> usize {
        self.table.capacity()
    }

    /// Bytes held by the connection table and timer wheel. All of it is
    /// allocated in the constructor; no packet load grows it.
    pub fn memory_bytes(&self) -> usize {
        self.table.memory_bytes() + self.wheel.memory_bytes()
    }

    /// Current virtual tick.
    pub fn now(&self) -> u64 {
        self.wheel.now()
    }

    /// Advances one tick (call once per processed burst) and reclaims
    /// idle connections.
    pub fn tick(&mut self) {
        self.advance_to(self.wheel.now() + 1);
    }

    /// Advances virtual time to `target`, reclaiming every connection whose
    /// idle deadline passed, and flushes batched hit counts to the shared
    /// stats.
    pub fn advance_to(&mut self, target: u64) {
        let CtEngine {
            wheel,
            table,
            stats,
            pending_hits,
            ..
        } = self;
        if *pending_hits > 0 {
            stats.record_hits(std::mem::take(pending_hits));
        }
        wheel.advance_to(target, |idx| {
            let deadline = table.conn(idx).deadline;
            if deadline <= target {
                table.remove(idx);
                stats.record_evicted_idle();
                None
            } else {
                Some(deadline)
            }
        });
    }

    /// Replaces LB group `group`'s backend set and rebuilds its maglev
    /// table. Established connections keep their pinned backend: the table
    /// is consulted only on a connection's first packet.
    pub fn set_lb_group(&mut self, group: u16, vip: u32, backends: Vec<u32>, table_size: usize) {
        let g = group as usize;
        while self.lb.len() <= g {
            self.lb.push(LbState {
                vip: 0,
                backends: Vec::new(),
                table: Vec::new(),
            });
        }
        self.lb[g] = LbState {
            vip,
            backends: backends.clone(),
            table: maglev_table(&backends, table_size),
        };
    }

    /// The VIP configured for `group` (tests and workload generators).
    pub fn lb_vip(&self, group: u16) -> Option<u32> {
        self.lb.get(group as usize).map(|g| g.vip)
    }

    fn hit(&mut self, idx: u32, dir: Dir, tuple: &CtTuple, tcp_flags: u8) -> CtOutcome {
        let reply_dir = dir == Dir::Reply;
        let (want, closed) = {
            let now = self.wheel.now();
            let timeouts = self.timeouts;
            let conn = self.table.conn_mut(idx);
            conn.state = conn.state.advance(reply_dir, tcp_flags);
            let want = if reply_dir {
                conn.orig.reversed()
            } else {
                conn.reply.reversed()
            };
            let closed = conn.state == ConnState::TcpClosed;
            if !closed {
                // Re-arm in place: the wheel re-buckets from this field
                // when the connection's bucket is next swept.
                conn.deadline = now + timeouts.for_state(conn.state);
            }
            (want, closed)
        };
        self.pending_hits += 1;
        if closed {
            // RST: forward this packet (translated), then drop the state.
            self.wheel.cancel(idx);
            self.table.remove(idx);
            self.stats.record_teardown();
        } else {
            self.table.touch(idx);
        }
        let mut out = CtOutcome::pass();
        push_diffs(&mut out, tuple, &want);
        out
    }

    /// Creates a connection (evicting per policy if full). Returns `false`
    /// when nothing was created: table full under refuse-new, or the first
    /// packet already carries RST (stillborn — nothing worth tracking).
    fn create(&mut self, orig: CtTuple, reply: CtTuple, tcp_flags: u8) -> bool {
        let state = ConnState::initial(orig.proto).advance(false, tcp_flags);
        if state == ConnState::TcpClosed {
            return false;
        }
        if self.table.is_full() {
            match self.eviction {
                EvictionPolicy::RefuseNew => {
                    self.stats.record_refused();
                    return false;
                }
                EvictionPolicy::Lru => {
                    if let Some(victim) = self.table.clock_victim() {
                        self.wheel.cancel(victim);
                        self.table.remove(victim);
                        self.stats.record_evicted_capacity();
                    }
                }
            }
        }
        let idx = self
            .table
            .insert(orig, reply, state)
            .expect("slot free after eviction");
        let deadline = self.wheel.now() + self.timeouts.for_state(state);
        self.table.conn_mut(idx).deadline = deadline;
        self.wheel.schedule(idx, deadline);
        self.stats.record_created();
        true
    }

    fn miss(&mut self, verb: &CtVerb, tuple: &CtTuple, tcp_flags: u8) -> CtOutcome {
        match verb {
            CtVerb::Commit => {
                // Admit-and-track; if untrackable (full, refuse-new) the
                // packet still passes — commit polices nothing by itself.
                self.create(*tuple, tuple.reversed(), tcp_flags);
                CtOutcome::pass()
            }
            CtVerb::Established => {
                self.stats.record_denied();
                CtOutcome::halt()
            }
            CtVerb::Nat(spec) => {
                let translated = self.translate_nat(spec, tuple);
                if self.create(*tuple, translated.reversed(), tcp_flags) {
                    let mut out = CtOutcome::pass();
                    push_diffs(&mut out, tuple, &translated);
                    out
                } else {
                    // NAT cannot forward without state.
                    CtOutcome::halt()
                }
            }
            CtVerb::Lb { group } => {
                let Some(backend) = self.pick_backend(*group, tuple) else {
                    self.stats.record_denied();
                    return CtOutcome::halt();
                };
                let translated = CtTuple {
                    dst_ip: backend,
                    ..*tuple
                };
                if self.create(*tuple, translated.reversed(), tcp_flags) {
                    let mut out = CtOutcome::pass();
                    push_diffs(&mut out, tuple, &translated);
                    out
                } else {
                    CtOutcome::halt()
                }
            }
        }
    }

    fn translate_nat(&mut self, spec: &NatSpec, tuple: &CtTuple) -> CtTuple {
        if spec.snat {
            let port = self.alloc_port(spec, bucket_of_tuple(tuple));
            CtTuple {
                src_ip: spec.addr,
                src_port: port,
                ..*tuple
            }
        } else {
            CtTuple {
                dst_ip: spec.addr,
                dst_port: spec.port_lo,
                ..*tuple
            }
        }
    }

    fn alloc_port(&mut self, spec: &NatSpec, bucket: usize) -> u16 {
        if let Some((_, _, alloc)) = self
            .nat_allocs
            .iter_mut()
            .find(|(s, b, _)| s == spec && *b == bucket)
        {
            return alloc.alloc();
        }
        let mut alloc = PortAlloc::new(
            spec.port_lo,
            spec.port_hi,
            bucket as u32,
            FLOW_BUCKETS as u32,
        );
        let port = alloc.alloc();
        self.nat_allocs.push((*spec, bucket, alloc));
        port
    }

    fn pick_backend(&self, group: u16, tuple: &CtTuple) -> Option<u32> {
        let g = self.lb.get(group as usize)?;
        if g.backends.is_empty() {
            return None;
        }
        let slot = select(&g.table, tuple_hash(tuple));
        g.backends.get(slot as usize).copied()
    }

    /// Drains every connection (and NAT allocator) belonging to flow bucket
    /// `bucket` out of this engine, for transfer to the shard that now owns
    /// the bucket. Deadlines are exported as *remaining* idle ticks because
    /// each shard's virtual clock is independent; the importer re-arms
    /// relative to its own clock. Control-plane cost: one walk of the slab.
    ///
    /// The caller (the dispatcher's quiesce handshake) guarantees no packet
    /// of this bucket is in flight to this shard when it runs.
    pub fn export_bucket(&mut self, bucket: usize) -> BucketExport {
        let now = self.wheel.now();
        let slots: Vec<u32> = self
            .table
            .live_slots()
            .filter(|(_, c)| bucket_of_tuple(&c.orig) == bucket)
            .map(|(i, _)| i)
            .collect();
        let mut conns = Vec::with_capacity(slots.len());
        for idx in slots {
            self.wheel.cancel(idx);
            let c = self.table.remove(idx);
            self.stats.record_migrated_out();
            conns.push(ConnExport {
                orig: c.orig,
                reply: c.reply,
                state: c.state,
                ticks_left: c.deadline.saturating_sub(now),
            });
        }
        let mut nat = Vec::new();
        let mut i = 0;
        while i < self.nat_allocs.len() {
            if self.nat_allocs[i].1 == bucket {
                let (spec, _, alloc) = self.nat_allocs.swap_remove(i);
                nat.push((spec, alloc));
            } else {
                i += 1;
            }
        }
        BucketExport { bucket, conns, nat }
    }

    /// Installs a [`BucketExport`] drained from the bucket's previous owner.
    /// Admission evicts LRU victims if the table is full *regardless of the
    /// eviction policy*: the imported connections already exist — refusing
    /// them would silently drop established state, which is exactly what a
    /// migration must not do.
    pub fn import_bucket(&mut self, export: BucketExport) {
        let now = self.wheel.now();
        for ce in export.conns {
            debug_assert!(
                self.table.lookup(&ce.orig).is_none(),
                "bucket {} imported while this shard still tracks it",
                export.bucket
            );
            while self.table.is_full() {
                let Some(victim) = self.table.clock_victim() else {
                    break;
                };
                self.wheel.cancel(victim);
                self.table.remove(victim);
                self.stats.record_evicted_capacity();
            }
            let Some(idx) = self.table.insert(ce.orig, ce.reply, ce.state) else {
                continue;
            };
            let deadline = now + ce.ticks_left;
            self.table.conn_mut(idx).deadline = deadline;
            self.wheel.schedule(idx, deadline);
            self.stats.record_migrated_in();
        }
        for (spec, alloc) in export.nat {
            self.nat_allocs
                .retain(|(s, b, _)| !(*b == export.bucket && s == &spec));
            self.nat_allocs.push((spec, export.bucket, alloc));
        }
    }
}

/// One connection's transferable state (see [`CtEngine::export_bucket`]).
#[derive(Debug, Clone, Copy)]
pub struct ConnExport {
    /// Tuple of the connection's first packet.
    pub orig: CtTuple,
    /// Tuple reply packets carry (post-translation).
    pub reply: CtTuple,
    /// Protocol state at export.
    pub state: ConnState,
    /// Idle ticks remaining at export, re-armed against the importer's
    /// clock.
    pub ticks_left: u64,
}

/// Everything shard-local that one flow bucket owns: its tracked
/// connections and its NAT allocators (whose `next` cursors must travel with
/// the bucket so ports stay a pure function of allocation order).
#[derive(Debug, Clone, Default)]
pub struct BucketExport {
    /// The bucket this state belongs to.
    pub bucket: usize,
    /// Drained connections.
    pub conns: Vec<ConnExport>,
    /// Drained NAT allocators, one per SNAT spec the bucket has used.
    pub nat: Vec<(NatSpec, PortAlloc)>,
}

impl BucketExport {
    /// True when the bucket owned no state at all (nothing to transfer).
    pub fn is_empty(&self) -> bool {
        self.conns.is_empty() && self.nat.is_empty()
    }
}

impl Drop for CtEngine {
    /// Flushes hit counts batched since the last tick, so shutdown
    /// aggregation (which reads the `Arc`-shared stats after the worker's
    /// engine is gone) sees every hit.
    fn drop(&mut self) {
        if self.pending_hits > 0 {
            self.stats
                .record_hits(std::mem::take(&mut self.pending_hits));
        }
    }
}

impl ConnCtx for CtEngine {
    fn ct_execute(&mut self, verb: &CtVerb, tuple: &CtTuple, tcp_flags: u8) -> CtOutcome {
        match self.table.lookup(tuple) {
            Some((idx, dir)) => self.hit(idx, dir, tuple, tcp_flags),
            None => self.miss(verb, tuple, tcp_flags),
        }
    }
}

/// Pushes the field rewrites that turn `cur` into `want` (at most four:
/// two addresses, two ports — exactly [`openflow::ct::CT_MAX_REWRITES`]).
fn push_diffs(out: &mut CtOutcome, cur: &CtTuple, want: &CtTuple) {
    if cur.src_ip != want.src_ip {
        out.push_rewrite(Field::Ipv4Src, want.src_ip);
    }
    if cur.dst_ip != want.dst_ip {
        out.push_rewrite(Field::Ipv4Dst, want.dst_ip);
    }
    let tcp = cur.proto == 6;
    if cur.src_port != want.src_port {
        let field = if tcp { Field::TcpSrc } else { Field::UdpSrc };
        out.push_rewrite(field, u32::from(want.src_port));
    }
    if cur.dst_port != want.dst_port {
        let field = if tcp { Field::TcpDst } else { Field::UdpDst };
        out.push_rewrite(field, u32::from(want.dst_port));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::{ACK, RST, SYN};

    fn tcp_tuple(src: u32, sport: u16, dst: u32, dport: u16) -> CtTuple {
        CtTuple {
            proto: 6,
            src_ip: src,
            dst_ip: dst,
            src_port: sport,
            dst_port: dport,
        }
    }

    fn small_engine(eviction: EvictionPolicy, capacity: usize) -> CtEngine {
        CtEngine::new(&CtConfig {
            capacity,
            eviction,
            ..CtConfig::default()
        })
    }

    fn rewritten(tuple: &CtTuple, out: &CtOutcome) -> CtTuple {
        let mut t = *tuple;
        for (f, v) in out.rewrites() {
            match f {
                Field::Ipv4Src => t.src_ip = *v,
                Field::Ipv4Dst => t.dst_ip = *v,
                Field::TcpSrc | Field::UdpSrc => t.src_port = *v as u16,
                Field::TcpDst | Field::UdpDst => t.dst_port = *v as u16,
                other => panic!("unexpected rewrite field {other:?}"),
            }
        }
        t
    }

    #[test]
    fn acl_commit_then_established_reply() {
        let mut e = small_engine(EvictionPolicy::Lru, 16);
        let fwd = tcp_tuple(0x0a000001, 1234, 0x0a000002, 80);
        // Untracked reply direction is denied.
        assert!(e
            .ct_execute(&CtVerb::Established, &fwd.reversed(), SYN | ACK)
            .halted());
        // Commit the original direction, then the reply passes.
        assert!(!e.ct_execute(&CtVerb::Commit, &fwd, SYN).halted());
        let reply = e.ct_execute(&CtVerb::Established, &fwd.reversed(), SYN | ACK);
        assert!(!reply.halted());
        assert!(reply.rewrites().is_empty());
        // The connection is now established.
        let (idx, _) = e.table.lookup(&fwd).unwrap();
        assert_eq!(e.table.conn(idx).state, ConnState::TcpEstablished);
        // An unrelated tuple is still denied.
        let other = tcp_tuple(0x0a000009, 999, 0x0a000002, 80);
        assert!(e.ct_execute(&CtVerb::Established, &other, ACK).halted());
        assert_eq!(e.stats().denied(), 2);
    }

    #[test]
    fn snat_allocates_and_reverses() {
        let mut e = small_engine(EvictionPolicy::Lru, 16);
        let spec = NatSpec {
            snat: true,
            addr: 0xc0a80001,
            port_lo: 40000,
            port_hi: 40999,
        };
        let fwd = tcp_tuple(0x0a000001, 1234, 0x08080808, 443);
        let out = e.ct_execute(&CtVerb::Nat(spec), &fwd, SYN);
        assert!(!out.halted());
        let translated = rewritten(&fwd, &out);
        assert_eq!(translated.src_ip, spec.addr);
        // Bucket-striped allocation: the first port of a connection's bucket
        // is `lo + (bucket % span)` — a pure function of the tuple, not of
        // any shard identity.
        let bucket = bucket_of_tuple(&fwd) as u16;
        assert_eq!(translated.src_port, 40000 + bucket % 1000);
        assert_eq!(translated.dst_ip, fwd.dst_ip);
        // Reply to the translated tuple maps back to the original client.
        let reply_in = translated.reversed();
        let back = e.ct_execute(&CtVerb::Established, &reply_in, SYN | ACK);
        assert!(!back.halted());
        let untranslated = rewritten(&reply_in, &back);
        assert_eq!(untranslated, fwd.reversed());
        // A second connection gets a distinct port, wherever its bucket
        // starts the stride.
        let fwd2 = tcp_tuple(0x0a000002, 1234, 0x08080808, 443);
        let out2 = e.ct_execute(&CtVerb::Nat(spec), &fwd2, SYN);
        let port2 = rewritten(&fwd2, &out2).src_port;
        assert_ne!(port2, translated.src_port);
        assert!((40000..=40999).contains(&port2));
        // A fresh engine replays the identical allocation sequence.
        let mut e2 = small_engine(EvictionPolicy::Lru, 16);
        let replay = e2.ct_execute(&CtVerb::Nat(spec), &fwd, SYN);
        assert_eq!(rewritten(&fwd, &replay).src_port, translated.src_port);
    }

    #[test]
    fn lb_pins_backend_across_reshuffle() {
        let mut e = CtEngine::new(&CtConfig {
            capacity: 64,
            lb_groups: vec![LbGroup {
                vip: 0x0a00ff01,
                backends: vec![0x0a000101, 0x0a000102, 0x0a000103],
                table_size: 101,
            }],
            ..CtConfig::default()
        });
        let fwd = tcp_tuple(0x0a000001, 5555, 0x0a00ff01, 80);
        let out = e.ct_execute(&CtVerb::Lb { group: 0 }, &fwd, SYN);
        let pinned = rewritten(&fwd, &out).dst_ip;
        assert!([0x0a000101u32, 0x0a000102, 0x0a000103].contains(&pinned));
        // Reply from the backend is un-rewritten to the VIP.
        let reply_in = CtTuple {
            dst_ip: pinned,
            ..fwd
        }
        .reversed();
        let back = e.ct_execute(&CtVerb::Established, &reply_in, SYN | ACK);
        assert_eq!(rewritten(&reply_in, &back).src_ip, 0x0a00ff01);
        // Shrink the backend set: the established flow keeps its backend.
        e.set_lb_group(0, 0x0a00ff01, vec![0x0a000101], 101);
        let again = e.ct_execute(&CtVerb::Lb { group: 0 }, &fwd, ACK);
        assert_eq!(rewritten(&fwd, &again).dst_ip, pinned);
    }

    #[test]
    fn rst_teardown_and_identity() {
        let mut e = small_engine(EvictionPolicy::Lru, 16);
        let fwd = tcp_tuple(1, 1, 2, 2);
        e.ct_execute(&CtVerb::Commit, &fwd, SYN);
        assert_eq!(e.live(), 1);
        // RST passes (it informs the peer) but tears the state down.
        assert!(!e.ct_execute(&CtVerb::Commit, &fwd, RST).halted());
        assert_eq!(e.live(), 0);
        let snap = e.stats().snapshot();
        assert_eq!(snap.teardown, 1);
        assert!(snap.identity_holds());
    }

    #[test]
    fn idle_timeout_reclaims() {
        let mut e = CtEngine::new(&CtConfig {
            capacity: 8,
            timeouts: CtTimeouts {
                tcp_syn: 4,
                ..CtTimeouts::default()
            },
            wheel_slots: 8,
            ..CtConfig::default()
        });
        let fwd = tcp_tuple(1, 1, 2, 2);
        e.ct_execute(&CtVerb::Commit, &fwd, SYN);
        // Activity at tick 3 re-arms the deadline lazily.
        e.advance_to(3);
        e.ct_execute(&CtVerb::Commit, &fwd, SYN);
        e.advance_to(6);
        assert_eq!(
            e.live(),
            1,
            "re-armed connection survives original deadline"
        );
        // Long idle: reclaimed (allow a full wheel rotation of slack).
        e.advance_to(6 + 4 + 8);
        assert_eq!(e.live(), 0);
        let snap = e.stats().snapshot();
        assert_eq!(snap.evicted_idle, 1);
        assert!(snap.identity_holds());
    }

    #[test]
    fn bucket_migration_preserves_nat_and_identity() {
        let stats_a = Arc::new(CtStats::new());
        let stats_b = Arc::new(CtStats::new());
        let cfg = CtConfig {
            capacity: 32,
            ..CtConfig::default()
        };
        let mut a = CtEngine::with_stats(&cfg, Arc::clone(&stats_a));
        let mut b = CtEngine::with_stats(&cfg, Arc::clone(&stats_b));
        let spec = NatSpec {
            snat: true,
            addr: 0xc0a80001,
            port_lo: 40000,
            port_hi: 40999,
        };
        let fwd = tcp_tuple(0x0a000001, 1234, 0x08080808, 443);
        let out = a.ct_execute(&CtVerb::Nat(spec), &fwd, SYN);
        let translated = rewritten(&fwd, &out);
        // Advance the exporter's clock so the relative-deadline transfer is
        // exercised (the importer's clock is still at zero).
        a.advance_to(5);
        let bucket = bucket_of_tuple(&fwd);
        let export = a.export_bucket(bucket);
        assert_eq!(export.conns.len(), 1);
        assert_eq!(export.nat.len(), 1, "allocator travels with the bucket");
        assert_eq!(a.live(), 0);
        b.import_bucket(export);
        assert_eq!(b.live(), 1);
        // The established reply un-rewrites to the client on the new owner.
        let reply_in = translated.reversed();
        let back = b.ct_execute(&CtVerb::Established, &reply_in, SYN | ACK);
        assert!(!back.halted());
        assert_eq!(rewritten(&reply_in, &back), fwd.reversed());
        // The migrated allocator continues the bucket's stride: the next
        // connection in this bucket gets the port it would have gotten had
        // the bucket never moved.
        let mut src = 2u32;
        let fwd2 = loop {
            let t = tcp_tuple(0x0a000000 + src, 1234, 0x08080808, 443);
            if bucket_of_tuple(&t) == bucket {
                break t;
            }
            src += 1;
        };
        let out2 = b.ct_execute(&CtVerb::Nat(spec), &fwd2, SYN);
        let expected = 40000 + ((bucket + FLOW_BUCKETS) % 1000) as u16;
        assert_eq!(rewritten(&fwd2, &out2).src_port, expected);
        drop(a);
        drop(b);
        let (sa, sb) = (stats_a.snapshot(), stats_b.snapshot());
        assert_eq!(sa.migrated_out, 1);
        assert_eq!(sb.migrated_in, 1);
        assert!(sa.identity_holds(), "exporter identity");
        assert!(sb.identity_holds(), "importer identity");
        assert!(sa.merged(&sb).identity_holds(), "merged identity");
    }

    #[test]
    fn capacity_policies() {
        // Refuse-new: commits pass untracked, NAT drops.
        let mut e = small_engine(EvictionPolicy::RefuseNew, 2);
        for i in 0..2u32 {
            e.ct_execute(&CtVerb::Commit, &tcp_tuple(i + 1, 1, 99, 2), SYN);
        }
        assert!(!e
            .ct_execute(&CtVerb::Commit, &tcp_tuple(50, 1, 99, 2), SYN)
            .halted());
        let spec = NatSpec {
            snat: true,
            addr: 7,
            port_lo: 1000,
            port_hi: 2000,
        };
        assert!(e
            .ct_execute(&CtVerb::Nat(spec), &tcp_tuple(51, 1, 99, 2), SYN)
            .halted());
        let snap = e.stats().snapshot();
        assert_eq!(snap.refused, 2);
        assert_eq!(snap.live, 2);
        assert!(snap.identity_holds());

        // LRU: the oldest connection is evicted to admit the new one.
        let mut e = small_engine(EvictionPolicy::Lru, 2);
        let a = tcp_tuple(1, 1, 99, 2);
        let b = tcp_tuple(2, 1, 99, 2);
        e.ct_execute(&CtVerb::Commit, &a, SYN);
        e.ct_execute(&CtVerb::Commit, &b, SYN);
        e.ct_execute(&CtVerb::Commit, &a, SYN); // touch a; b is now LRU
        e.ct_execute(&CtVerb::Commit, &tcp_tuple(3, 1, 99, 2), SYN);
        assert!(e.table.lookup(&a).is_some());
        assert!(e.table.lookup(&b).is_none(), "LRU victim evicted");
        let snap = e.stats().snapshot();
        assert_eq!(snap.evicted_capacity, 1);
        assert!(snap.identity_holds());
    }
}
