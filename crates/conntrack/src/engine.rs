//! The per-shard connection-tracking engine.
//!
//! Owns the [`ConnTable`], the [`TimerWheel`], the NAT port allocators and
//! the maglev LB state, and implements [`ConnCtx`] so datapath executors
//! can thread it through ct actions. Exactly one engine exists per shard;
//! nothing in here is shared across threads except the [`CtStats`]
//! counters (facade atomics, `Arc`-shared for shutdown aggregation).
//!
//! Time is virtual: the worker loop calls [`CtEngine::tick`] once per
//! processed burst, which advances the wheel and reclaims idle
//! connections. All timeouts are expressed in ticks.

use netdev::sync::Arc;
use openflow::ct::{ConnCtx, CtOutcome, CtTuple, CtVerb, NatSpec};
use openflow::Field;

use crate::key::tuple_hash;
use crate::maglev::{maglev_table, select};
use crate::nat::PortAlloc;
use crate::stats::CtStats;
use crate::table::{ConnTable, Dir};
use crate::tcp::ConnState;
use crate::wheel::TimerWheel;

/// What to do when a new connection arrives and the table is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Refuse the new connection (counted as `refused`). Commit verbs pass
    /// the packet untracked; NAT/LB verbs — which cannot forward without
    /// state — drop it.
    RefuseNew,
    /// Evict the least-recently-used connection to make room (counted as
    /// `evicted_capacity`). Recency is approximate — second-chance (CLOCK)
    /// order, so the established path pays one bit-store per hit instead
    /// of list surgery.
    Lru,
}

/// Idle timeouts in virtual ticks (one tick per processed burst), by state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtTimeouts {
    /// TCP connection not yet answered.
    pub tcp_syn: u64,
    /// TCP connection with bidirectional traffic.
    pub tcp_established: u64,
    /// TCP connection after a FIN.
    pub tcp_fin: u64,
    /// UDP flow not yet answered.
    pub udp_new: u64,
    /// UDP flow with bidirectional traffic.
    pub udp_established: u64,
}

impl Default for CtTimeouts {
    fn default() -> Self {
        CtTimeouts {
            tcp_syn: 32,
            tcp_established: 2048,
            tcp_fin: 16,
            udp_new: 64,
            udp_established: 512,
        }
    }
}

impl CtTimeouts {
    fn for_state(&self, state: ConnState) -> u64 {
        match state {
            ConnState::TcpSynSent => self.tcp_syn,
            ConnState::TcpEstablished => self.tcp_established,
            ConnState::TcpFin | ConnState::TcpClosed => self.tcp_fin,
            ConnState::UdpNew => self.udp_new,
            ConnState::UdpEstablished => self.udp_established,
        }
    }
}

/// One load-balancer backend group: a virtual IP fronting a backend set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LbGroup {
    /// The virtual IP the group serves (informational; the pipeline's match
    /// decides which traffic reaches the Lb verb).
    pub vip: u32,
    /// Backend addresses.
    pub backends: Vec<u32>,
    /// Maglev table size (rounded up to odd; ≥ 100× backends recommended).
    pub table_size: usize,
}

/// Engine configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtConfig {
    /// Maximum live connections per shard (slab capacity; fixed).
    pub capacity: usize,
    /// Timer-wheel bucket count (rounded up to a power of two).
    pub wheel_slots: usize,
    /// Full-table admission policy.
    pub eviction: EvictionPolicy,
    /// Idle timeouts by state, in ticks.
    pub timeouts: CtTimeouts,
    /// LB groups, indexed by the `group` id of [`CtVerb::Lb`].
    pub lb_groups: Vec<LbGroup>,
}

impl Default for CtConfig {
    fn default() -> Self {
        CtConfig {
            capacity: 4096,
            wheel_slots: 256,
            eviction: EvictionPolicy::Lru,
            timeouts: CtTimeouts::default(),
            lb_groups: Vec::new(),
        }
    }
}

#[derive(Debug)]
struct LbState {
    vip: u32,
    backends: Vec<u32>,
    table: Vec<u16>,
}

/// The per-shard connection-tracking engine. See the module docs.
#[derive(Debug)]
pub struct CtEngine {
    table: ConnTable,
    wheel: TimerWheel,
    stats: Arc<CtStats>,
    timeouts: CtTimeouts,
    eviction: EvictionPolicy,
    shard_index: u32,
    shard_count: u32,
    nat_allocs: Vec<(NatSpec, PortAlloc)>,
    lb: Vec<LbState>,
    /// Established-path hits since the last flush. Batched into the shared
    /// atomic on every tick (and on drop) so the hot path pays a plain
    /// increment instead of a locked read-modify-write per packet.
    pending_hits: u64,
}

impl CtEngine {
    /// Creates an engine for shard `shard_index` of `shard_count` with
    /// fresh stats. Single-switch (unsharded) callers use `(0, 1)`.
    pub fn new(config: &CtConfig, shard_index: u32, shard_count: u32) -> CtEngine {
        Self::with_stats(config, shard_index, shard_count, Arc::new(CtStats::new()))
    }

    /// Like [`CtEngine::new`] but recording into caller-owned counters
    /// (the sharded runtime creates them at launch so reports survive the
    /// engine).
    pub fn with_stats(
        config: &CtConfig,
        shard_index: u32,
        shard_count: u32,
        stats: Arc<CtStats>,
    ) -> CtEngine {
        let lb = config
            .lb_groups
            .iter()
            .map(|g| LbState {
                vip: g.vip,
                backends: g.backends.clone(),
                table: maglev_table(&g.backends, g.table_size),
            })
            .collect();
        CtEngine {
            table: ConnTable::new(config.capacity),
            wheel: TimerWheel::new(config.capacity, config.wheel_slots),
            stats,
            timeouts: config.timeouts,
            eviction: config.eviction,
            shard_index,
            shard_count,
            nat_allocs: Vec::new(),
            lb,
            pending_hits: 0,
        }
    }

    /// The shared counters.
    pub fn stats(&self) -> &Arc<CtStats> {
        &self.stats
    }

    /// Live connections right now.
    pub fn live(&self) -> usize {
        self.table.live()
    }

    /// Slab capacity (the memory bound: no load grows the table past it).
    pub fn capacity(&self) -> usize {
        self.table.capacity()
    }

    /// Bytes held by the connection table and timer wheel. All of it is
    /// allocated in the constructor; no packet load grows it.
    pub fn memory_bytes(&self) -> usize {
        self.table.memory_bytes() + self.wheel.memory_bytes()
    }

    /// Current virtual tick.
    pub fn now(&self) -> u64 {
        self.wheel.now()
    }

    /// Advances one tick (call once per processed burst) and reclaims
    /// idle connections.
    pub fn tick(&mut self) {
        self.advance_to(self.wheel.now() + 1);
    }

    /// Advances virtual time to `target`, reclaiming every connection whose
    /// idle deadline passed, and flushes batched hit counts to the shared
    /// stats.
    pub fn advance_to(&mut self, target: u64) {
        let CtEngine {
            wheel,
            table,
            stats,
            pending_hits,
            ..
        } = self;
        if *pending_hits > 0 {
            stats.record_hits(std::mem::take(pending_hits));
        }
        wheel.advance_to(target, |idx| {
            let deadline = table.conn(idx).deadline;
            if deadline <= target {
                table.remove(idx);
                stats.record_evicted_idle();
                None
            } else {
                Some(deadline)
            }
        });
    }

    /// Replaces LB group `group`'s backend set and rebuilds its maglev
    /// table. Established connections keep their pinned backend: the table
    /// is consulted only on a connection's first packet.
    pub fn set_lb_group(&mut self, group: u16, vip: u32, backends: Vec<u32>, table_size: usize) {
        let g = group as usize;
        while self.lb.len() <= g {
            self.lb.push(LbState {
                vip: 0,
                backends: Vec::new(),
                table: Vec::new(),
            });
        }
        self.lb[g] = LbState {
            vip,
            backends: backends.clone(),
            table: maglev_table(&backends, table_size),
        };
    }

    /// The VIP configured for `group` (tests and workload generators).
    pub fn lb_vip(&self, group: u16) -> Option<u32> {
        self.lb.get(group as usize).map(|g| g.vip)
    }

    fn hit(&mut self, idx: u32, dir: Dir, tuple: &CtTuple, tcp_flags: u8) -> CtOutcome {
        let reply_dir = dir == Dir::Reply;
        let (want, closed) = {
            let now = self.wheel.now();
            let timeouts = self.timeouts;
            let conn = self.table.conn_mut(idx);
            conn.state = conn.state.advance(reply_dir, tcp_flags);
            let want = if reply_dir {
                conn.orig.reversed()
            } else {
                conn.reply.reversed()
            };
            let closed = conn.state == ConnState::TcpClosed;
            if !closed {
                // Re-arm in place: the wheel re-buckets from this field
                // when the connection's bucket is next swept.
                conn.deadline = now + timeouts.for_state(conn.state);
            }
            (want, closed)
        };
        self.pending_hits += 1;
        if closed {
            // RST: forward this packet (translated), then drop the state.
            self.wheel.cancel(idx);
            self.table.remove(idx);
            self.stats.record_teardown();
        } else {
            self.table.touch(idx);
        }
        let mut out = CtOutcome::pass();
        push_diffs(&mut out, tuple, &want);
        out
    }

    /// Creates a connection (evicting per policy if full). Returns `false`
    /// when nothing was created: table full under refuse-new, or the first
    /// packet already carries RST (stillborn — nothing worth tracking).
    fn create(&mut self, orig: CtTuple, reply: CtTuple, tcp_flags: u8) -> bool {
        let state = ConnState::initial(orig.proto).advance(false, tcp_flags);
        if state == ConnState::TcpClosed {
            return false;
        }
        if self.table.is_full() {
            match self.eviction {
                EvictionPolicy::RefuseNew => {
                    self.stats.record_refused();
                    return false;
                }
                EvictionPolicy::Lru => {
                    if let Some(victim) = self.table.clock_victim() {
                        self.wheel.cancel(victim);
                        self.table.remove(victim);
                        self.stats.record_evicted_capacity();
                    }
                }
            }
        }
        let idx = self
            .table
            .insert(orig, reply, state)
            .expect("slot free after eviction");
        let deadline = self.wheel.now() + self.timeouts.for_state(state);
        self.table.conn_mut(idx).deadline = deadline;
        self.wheel.schedule(idx, deadline);
        self.stats.record_created();
        true
    }

    fn miss(&mut self, verb: &CtVerb, tuple: &CtTuple, tcp_flags: u8) -> CtOutcome {
        match verb {
            CtVerb::Commit => {
                // Admit-and-track; if untrackable (full, refuse-new) the
                // packet still passes — commit polices nothing by itself.
                self.create(*tuple, tuple.reversed(), tcp_flags);
                CtOutcome::pass()
            }
            CtVerb::Established => {
                self.stats.record_denied();
                CtOutcome::halt()
            }
            CtVerb::Nat(spec) => {
                let translated = self.translate_nat(spec, tuple);
                if self.create(*tuple, translated.reversed(), tcp_flags) {
                    let mut out = CtOutcome::pass();
                    push_diffs(&mut out, tuple, &translated);
                    out
                } else {
                    // NAT cannot forward without state.
                    CtOutcome::halt()
                }
            }
            CtVerb::Lb { group } => {
                let Some(backend) = self.pick_backend(*group, tuple) else {
                    self.stats.record_denied();
                    return CtOutcome::halt();
                };
                let translated = CtTuple {
                    dst_ip: backend,
                    ..*tuple
                };
                if self.create(*tuple, translated.reversed(), tcp_flags) {
                    let mut out = CtOutcome::pass();
                    push_diffs(&mut out, tuple, &translated);
                    out
                } else {
                    CtOutcome::halt()
                }
            }
        }
    }

    fn translate_nat(&mut self, spec: &NatSpec, tuple: &CtTuple) -> CtTuple {
        if spec.snat {
            let port = self.alloc_port(spec);
            CtTuple {
                src_ip: spec.addr,
                src_port: port,
                ..*tuple
            }
        } else {
            CtTuple {
                dst_ip: spec.addr,
                dst_port: spec.port_lo,
                ..*tuple
            }
        }
    }

    fn alloc_port(&mut self, spec: &NatSpec) -> u16 {
        if let Some((_, alloc)) = self.nat_allocs.iter_mut().find(|(s, _)| s == spec) {
            return alloc.alloc();
        }
        let mut alloc = PortAlloc::new(
            spec.port_lo,
            spec.port_hi,
            self.shard_index,
            self.shard_count,
        );
        let port = alloc.alloc();
        self.nat_allocs.push((*spec, alloc));
        port
    }

    fn pick_backend(&self, group: u16, tuple: &CtTuple) -> Option<u32> {
        let g = self.lb.get(group as usize)?;
        if g.backends.is_empty() {
            return None;
        }
        let slot = select(&g.table, tuple_hash(tuple));
        g.backends.get(slot as usize).copied()
    }
}

impl Drop for CtEngine {
    /// Flushes hit counts batched since the last tick, so shutdown
    /// aggregation (which reads the `Arc`-shared stats after the worker's
    /// engine is gone) sees every hit.
    fn drop(&mut self) {
        if self.pending_hits > 0 {
            self.stats
                .record_hits(std::mem::take(&mut self.pending_hits));
        }
    }
}

impl ConnCtx for CtEngine {
    fn ct_execute(&mut self, verb: &CtVerb, tuple: &CtTuple, tcp_flags: u8) -> CtOutcome {
        match self.table.lookup(tuple) {
            Some((idx, dir)) => self.hit(idx, dir, tuple, tcp_flags),
            None => self.miss(verb, tuple, tcp_flags),
        }
    }
}

/// Pushes the field rewrites that turn `cur` into `want` (at most four:
/// two addresses, two ports — exactly [`openflow::ct::CT_MAX_REWRITES`]).
fn push_diffs(out: &mut CtOutcome, cur: &CtTuple, want: &CtTuple) {
    if cur.src_ip != want.src_ip {
        out.push_rewrite(Field::Ipv4Src, want.src_ip);
    }
    if cur.dst_ip != want.dst_ip {
        out.push_rewrite(Field::Ipv4Dst, want.dst_ip);
    }
    let tcp = cur.proto == 6;
    if cur.src_port != want.src_port {
        let field = if tcp { Field::TcpSrc } else { Field::UdpSrc };
        out.push_rewrite(field, u32::from(want.src_port));
    }
    if cur.dst_port != want.dst_port {
        let field = if tcp { Field::TcpDst } else { Field::UdpDst };
        out.push_rewrite(field, u32::from(want.dst_port));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::{ACK, RST, SYN};

    fn tcp_tuple(src: u32, sport: u16, dst: u32, dport: u16) -> CtTuple {
        CtTuple {
            proto: 6,
            src_ip: src,
            dst_ip: dst,
            src_port: sport,
            dst_port: dport,
        }
    }

    fn small_engine(eviction: EvictionPolicy, capacity: usize) -> CtEngine {
        CtEngine::new(
            &CtConfig {
                capacity,
                eviction,
                ..CtConfig::default()
            },
            0,
            1,
        )
    }

    fn rewritten(tuple: &CtTuple, out: &CtOutcome) -> CtTuple {
        let mut t = *tuple;
        for (f, v) in out.rewrites() {
            match f {
                Field::Ipv4Src => t.src_ip = *v,
                Field::Ipv4Dst => t.dst_ip = *v,
                Field::TcpSrc | Field::UdpSrc => t.src_port = *v as u16,
                Field::TcpDst | Field::UdpDst => t.dst_port = *v as u16,
                other => panic!("unexpected rewrite field {other:?}"),
            }
        }
        t
    }

    #[test]
    fn acl_commit_then_established_reply() {
        let mut e = small_engine(EvictionPolicy::Lru, 16);
        let fwd = tcp_tuple(0x0a000001, 1234, 0x0a000002, 80);
        // Untracked reply direction is denied.
        assert!(e
            .ct_execute(&CtVerb::Established, &fwd.reversed(), SYN | ACK)
            .halted());
        // Commit the original direction, then the reply passes.
        assert!(!e.ct_execute(&CtVerb::Commit, &fwd, SYN).halted());
        let reply = e.ct_execute(&CtVerb::Established, &fwd.reversed(), SYN | ACK);
        assert!(!reply.halted());
        assert!(reply.rewrites().is_empty());
        // The connection is now established.
        let (idx, _) = e.table.lookup(&fwd).unwrap();
        assert_eq!(e.table.conn(idx).state, ConnState::TcpEstablished);
        // An unrelated tuple is still denied.
        let other = tcp_tuple(0x0a000009, 999, 0x0a000002, 80);
        assert!(e.ct_execute(&CtVerb::Established, &other, ACK).halted());
        assert_eq!(e.stats().denied(), 2);
    }

    #[test]
    fn snat_allocates_and_reverses() {
        let mut e = small_engine(EvictionPolicy::Lru, 16);
        let spec = NatSpec {
            snat: true,
            addr: 0xc0a80001,
            port_lo: 40000,
            port_hi: 40999,
        };
        let fwd = tcp_tuple(0x0a000001, 1234, 0x08080808, 443);
        let out = e.ct_execute(&CtVerb::Nat(spec), &fwd, SYN);
        assert!(!out.halted());
        let translated = rewritten(&fwd, &out);
        assert_eq!(translated.src_ip, spec.addr);
        assert_eq!(translated.src_port, 40000);
        assert_eq!(translated.dst_ip, fwd.dst_ip);
        // Reply to the translated tuple maps back to the original client.
        let reply_in = translated.reversed();
        let back = e.ct_execute(&CtVerb::Established, &reply_in, SYN | ACK);
        assert!(!back.halted());
        let untranslated = rewritten(&reply_in, &back);
        assert_eq!(untranslated, fwd.reversed());
        // A second connection gets a distinct port.
        let fwd2 = tcp_tuple(0x0a000002, 1234, 0x08080808, 443);
        let out2 = e.ct_execute(&CtVerb::Nat(spec), &fwd2, SYN);
        assert_eq!(rewritten(&fwd2, &out2).src_port, 40001);
    }

    #[test]
    fn lb_pins_backend_across_reshuffle() {
        let mut e = CtEngine::new(
            &CtConfig {
                capacity: 64,
                lb_groups: vec![LbGroup {
                    vip: 0x0a00ff01,
                    backends: vec![0x0a000101, 0x0a000102, 0x0a000103],
                    table_size: 101,
                }],
                ..CtConfig::default()
            },
            0,
            1,
        );
        let fwd = tcp_tuple(0x0a000001, 5555, 0x0a00ff01, 80);
        let out = e.ct_execute(&CtVerb::Lb { group: 0 }, &fwd, SYN);
        let pinned = rewritten(&fwd, &out).dst_ip;
        assert!([0x0a000101u32, 0x0a000102, 0x0a000103].contains(&pinned));
        // Reply from the backend is un-rewritten to the VIP.
        let reply_in = CtTuple {
            dst_ip: pinned,
            ..fwd
        }
        .reversed();
        let back = e.ct_execute(&CtVerb::Established, &reply_in, SYN | ACK);
        assert_eq!(rewritten(&reply_in, &back).src_ip, 0x0a00ff01);
        // Shrink the backend set: the established flow keeps its backend.
        e.set_lb_group(0, 0x0a00ff01, vec![0x0a000101], 101);
        let again = e.ct_execute(&CtVerb::Lb { group: 0 }, &fwd, ACK);
        assert_eq!(rewritten(&fwd, &again).dst_ip, pinned);
    }

    #[test]
    fn rst_teardown_and_identity() {
        let mut e = small_engine(EvictionPolicy::Lru, 16);
        let fwd = tcp_tuple(1, 1, 2, 2);
        e.ct_execute(&CtVerb::Commit, &fwd, SYN);
        assert_eq!(e.live(), 1);
        // RST passes (it informs the peer) but tears the state down.
        assert!(!e.ct_execute(&CtVerb::Commit, &fwd, RST).halted());
        assert_eq!(e.live(), 0);
        let snap = e.stats().snapshot();
        assert_eq!(snap.teardown, 1);
        assert!(snap.identity_holds());
    }

    #[test]
    fn idle_timeout_reclaims() {
        let mut e = CtEngine::new(
            &CtConfig {
                capacity: 8,
                timeouts: CtTimeouts {
                    tcp_syn: 4,
                    ..CtTimeouts::default()
                },
                wheel_slots: 8,
                ..CtConfig::default()
            },
            0,
            1,
        );
        let fwd = tcp_tuple(1, 1, 2, 2);
        e.ct_execute(&CtVerb::Commit, &fwd, SYN);
        // Activity at tick 3 re-arms the deadline lazily.
        e.advance_to(3);
        e.ct_execute(&CtVerb::Commit, &fwd, SYN);
        e.advance_to(6);
        assert_eq!(
            e.live(),
            1,
            "re-armed connection survives original deadline"
        );
        // Long idle: reclaimed (allow a full wheel rotation of slack).
        e.advance_to(6 + 4 + 8);
        assert_eq!(e.live(), 0);
        let snap = e.stats().snapshot();
        assert_eq!(snap.evicted_idle, 1);
        assert!(snap.identity_holds());
    }

    #[test]
    fn capacity_policies() {
        // Refuse-new: commits pass untracked, NAT drops.
        let mut e = small_engine(EvictionPolicy::RefuseNew, 2);
        for i in 0..2u32 {
            e.ct_execute(&CtVerb::Commit, &tcp_tuple(i + 1, 1, 99, 2), SYN);
        }
        assert!(!e
            .ct_execute(&CtVerb::Commit, &tcp_tuple(50, 1, 99, 2), SYN)
            .halted());
        let spec = NatSpec {
            snat: true,
            addr: 7,
            port_lo: 1000,
            port_hi: 2000,
        };
        assert!(e
            .ct_execute(&CtVerb::Nat(spec), &tcp_tuple(51, 1, 99, 2), SYN)
            .halted());
        let snap = e.stats().snapshot();
        assert_eq!(snap.refused, 2);
        assert_eq!(snap.live, 2);
        assert!(snap.identity_holds());

        // LRU: the oldest connection is evicted to admit the new one.
        let mut e = small_engine(EvictionPolicy::Lru, 2);
        let a = tcp_tuple(1, 1, 99, 2);
        let b = tcp_tuple(2, 1, 99, 2);
        e.ct_execute(&CtVerb::Commit, &a, SYN);
        e.ct_execute(&CtVerb::Commit, &b, SYN);
        e.ct_execute(&CtVerb::Commit, &a, SYN); // touch a; b is now LRU
        e.ct_execute(&CtVerb::Commit, &tcp_tuple(3, 1, 99, 2), SYN);
        assert!(e.table.lookup(&a).is_some());
        assert!(e.table.lookup(&b).is_none(), "LRU victim evicted");
        let snap = e.stats().snapshot();
        assert_eq!(snap.evicted_capacity, 1);
        assert!(snap.identity_holds());
    }
}
