//! ARP (IPv4-over-Ethernet) packet handling.

use crate::ipv4::Ipv4Addr4;
use crate::mac::MacAddr;

/// Length of an Ethernet/IPv4 ARP packet body.
pub const ARP_LEN: usize = 28;

/// ARP operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArpOp {
    /// Request (1).
    Request,
    /// Reply (2).
    Reply,
    /// Any other opcode.
    Other(u16),
}

impl ArpOp {
    /// Decodes the 16-bit opcode.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => ArpOp::Request,
            2 => ArpOp::Reply,
            other => ArpOp::Other(other),
        }
    }

    /// Encodes back to the 16-bit opcode.
    pub fn to_u16(self) -> u16 {
        match self {
            ArpOp::Request => 1,
            ArpOp::Reply => 2,
            ArpOp::Other(v) => v,
        }
    }
}

/// Decoded view of an Ethernet/IPv4 ARP packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArpPacket {
    /// Operation (request/reply). OpenFlow `arp_op`.
    pub op: ArpOp,
    /// Sender hardware address (`arp_sha`).
    pub sender_mac: MacAddr,
    /// Sender protocol address (`arp_spa`).
    pub sender_ip: Ipv4Addr4,
    /// Target hardware address (`arp_tha`).
    pub target_mac: MacAddr,
    /// Target protocol address (`arp_tpa`).
    pub target_ip: Ipv4Addr4,
}

impl ArpPacket {
    /// Parses an Ethernet/IPv4 ARP body from the start of `data`.
    ///
    /// Returns `None` if the buffer is too short or the hardware/protocol
    /// types are not Ethernet/IPv4.
    pub fn parse(data: &[u8]) -> Option<Self> {
        if data.len() < ARP_LEN {
            return None;
        }
        let htype = u16::from_be_bytes([data[0], data[1]]);
        let ptype = u16::from_be_bytes([data[2], data[3]]);
        if htype != 1 || ptype != 0x0800 || data[4] != 6 || data[5] != 4 {
            return None;
        }
        Some(ArpPacket {
            op: ArpOp::from_u16(u16::from_be_bytes([data[6], data[7]])),
            sender_mac: MacAddr::from_slice(&data[8..14]),
            sender_ip: Ipv4Addr4([data[14], data[15], data[16], data[17]]),
            target_mac: MacAddr::from_slice(&data[18..24]),
            target_ip: Ipv4Addr4([data[24], data[25], data[26], data[27]]),
        })
    }

    /// Serialises the packet into the first 28 bytes of `out`.
    ///
    /// # Panics
    /// Panics if `out` is shorter than [`ARP_LEN`].
    pub fn write(&self, out: &mut [u8]) {
        out[0..2].copy_from_slice(&1u16.to_be_bytes());
        out[2..4].copy_from_slice(&0x0800u16.to_be_bytes());
        out[4] = 6;
        out[5] = 4;
        out[6..8].copy_from_slice(&self.op.to_u16().to_be_bytes());
        out[8..14].copy_from_slice(&self.sender_mac.octets());
        out[14..18].copy_from_slice(&self.sender_ip.octets());
        out[18..24].copy_from_slice(&self.target_mac.octets());
        out[24..28].copy_from_slice(&self.target_ip.octets());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let arp = ArpPacket {
            op: ArpOp::Request,
            sender_mac: MacAddr::new([1, 2, 3, 4, 5, 6]),
            sender_ip: Ipv4Addr4::new(10, 0, 0, 1),
            target_mac: MacAddr::ZERO,
            target_ip: Ipv4Addr4::new(10, 0, 0, 2),
        };
        let mut buf = [0u8; ARP_LEN];
        arp.write(&mut buf);
        assert_eq!(ArpPacket::parse(&buf), Some(arp));
    }

    #[test]
    fn rejects_non_ethernet_ipv4() {
        let arp = ArpPacket {
            op: ArpOp::Reply,
            sender_mac: MacAddr::ZERO,
            sender_ip: Ipv4Addr4::UNSPECIFIED,
            target_mac: MacAddr::ZERO,
            target_ip: Ipv4Addr4::UNSPECIFIED,
        };
        let mut buf = [0u8; ARP_LEN];
        arp.write(&mut buf);
        buf[0] = 0x12; // bogus hardware type
        assert!(ArpPacket::parse(&buf).is_none());
        assert!(ArpPacket::parse(&buf[..20]).is_none());
    }
}
