//! Layered packet parsing.
//!
//! This module is the Rust analogue of the ESWITCH *parser templates* (§3.1 of
//! the paper): a packet is parsed incrementally, layer by layer, into a
//! [`ParsedHeaders`] record holding a protocol bitmask (the paper stores it in
//! `r15`) and the byte offset of each protocol layer (`r12`–`r14`). Field
//! values are *not* decoded eagerly; matcher templates load them straight from
//! the frame through the offset accessors, exactly as the generated machine
//! code would (`mov eax, [r13+0x10]`).

use crate::ethernet::{EtherType, ETHERNET_HEADER_LEN};
use crate::ipv4::{IpProto, Ipv4Addr4};
use crate::mac::MacAddr;
use crate::vlan::VLAN_TAG_LEN;

/// Bitmask of protocol headers found in a packet.
///
/// Mirrors the "protocol bitmask in `r15`" of the parser template: the direct
/// code template's prologue checks this mask before touching any field
/// (`mov eax, IP|TCP; or eax, r15d; cmp eax, r15d`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct ProtoMask(pub u32);

impl ProtoMask {
    /// Ethernet header present (always set for a parsed packet).
    pub const ETH: ProtoMask = ProtoMask(1 << 0);
    /// One or more 802.1Q tags present.
    pub const VLAN: ProtoMask = ProtoMask(1 << 1);
    /// IPv4 header present.
    pub const IPV4: ProtoMask = ProtoMask(1 << 2);
    /// IPv6 header present.
    pub const IPV6: ProtoMask = ProtoMask(1 << 3);
    /// ARP body present.
    pub const ARP: ProtoMask = ProtoMask(1 << 4);
    /// TCP header present.
    pub const TCP: ProtoMask = ProtoMask(1 << 5);
    /// UDP header present.
    pub const UDP: ProtoMask = ProtoMask(1 << 6);
    /// ICMP header present.
    pub const ICMP: ProtoMask = ProtoMask(1 << 7);

    /// The empty mask.
    pub const NONE: ProtoMask = ProtoMask(0);

    /// Returns the union of two masks.
    pub const fn or(self, other: ProtoMask) -> ProtoMask {
        ProtoMask(self.0 | other.0)
    }

    /// True if every bit of `required` is present in `self`.
    /// This is the template prologue check.
    pub const fn contains(self, required: ProtoMask) -> bool {
        self.0 & required.0 == required.0
    }

    /// True if any bit of `other` is present in `self`.
    pub const fn intersects(self, other: ProtoMask) -> bool {
        self.0 & other.0 != 0
    }
}

impl std::ops::BitOr for ProtoMask {
    type Output = ProtoMask;
    fn bitor(self, rhs: ProtoMask) -> ProtoMask {
        self.or(rhs)
    }
}

impl std::ops::BitOrAssign for ProtoMask {
    fn bitor_assign(&mut self, rhs: ProtoMask) {
        self.0 |= rhs.0;
    }
}

/// How deep to parse.
///
/// The paper's parser templates are composed incrementally: pure L2 MAC
/// forwarding never pays for L3/L4 parsing, L3 routing skips L4, and so on.
/// The ESWITCH compiler picks the depth from the deepest field any table in
/// the pipeline matches on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ParseDepth {
    /// Ethernet + VLAN tags only.
    L2,
    /// Plus IPv4/IPv6/ARP network headers.
    L3,
    /// Plus TCP/UDP/ICMP transport headers.
    L4,
}

/// Result of parsing a frame: the protocol bitmask plus per-layer offsets.
///
/// Offsets are `u16` because frames are bounded by [`crate::MAX_FRAME_LEN`];
/// `u16::MAX` marks "layer absent" internally (checked through the mask).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ParsedHeaders {
    /// Protocol presence bitmask (the template prologue operand).
    pub mask: ProtoMask,
    /// Offset of the Ethernet header (always 0 for a full frame).
    pub l2_offset: u16,
    /// Offset of the L3 header (IPv4/IPv6/ARP), if present.
    pub l3_offset: u16,
    /// Offset of the L4 header (TCP/UDP/ICMP), if present.
    pub l4_offset: u16,
    /// VLAN VID of the outermost tag, if present.
    pub vlan_vid: u16,
    /// VLAN PCP of the outermost tag, if present.
    pub vlan_pcp: u8,
    /// Raw EtherType of the payload after any VLAN tags.
    pub ethertype: u16,
    /// IP protocol number, if an IPv4/IPv6 header is present.
    pub ip_proto: u8,
    /// How deep the parse went (parsing to L3 leaves L4 fields unset even if
    /// a transport header exists in the frame).
    pub depth_parsed: ParseDepthTag,
}

/// Internal record of how deep [`parse`] actually went; distinct from
/// [`ParseDepth`] so `ParsedHeaders` can derive `Default`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ParseDepthTag {
    /// Nothing parsed yet.
    #[default]
    None,
    /// Parsed through L2.
    L2,
    /// Parsed through L3.
    L3,
    /// Parsed through L4.
    L4,
}

impl ParsedHeaders {
    /// True if an IPv4 header was found.
    pub fn has_ipv4(&self) -> bool {
        self.mask.contains(ProtoMask::IPV4)
    }

    /// True if a TCP header was found.
    pub fn has_tcp(&self) -> bool {
        self.mask.contains(ProtoMask::TCP)
    }

    /// True if a UDP header was found.
    pub fn has_udp(&self) -> bool {
        self.mask.contains(ProtoMask::UDP)
    }

    /// True if at least one VLAN tag was found.
    pub fn has_vlan(&self) -> bool {
        self.mask.contains(ProtoMask::VLAN)
    }

    /// Destination MAC, loaded from the frame.
    pub fn eth_dst(&self, frame: &[u8]) -> Option<MacAddr> {
        let off = usize::from(self.l2_offset);
        frame.get(off..off + 6).map(MacAddr::from_slice)
    }

    /// Source MAC, loaded from the frame.
    pub fn eth_src(&self, frame: &[u8]) -> Option<MacAddr> {
        let off = usize::from(self.l2_offset) + 6;
        frame.get(off..off + 6).map(MacAddr::from_slice)
    }

    /// IPv4 source address, loaded from the frame.
    pub fn ipv4_src(&self, frame: &[u8]) -> Option<Ipv4Addr4> {
        if !self.has_ipv4() {
            return None;
        }
        crate::ipv4::ip_src_at(frame, usize::from(self.l3_offset))
    }

    /// IPv4 destination address, loaded from the frame.
    pub fn ipv4_dst(&self, frame: &[u8]) -> Option<Ipv4Addr4> {
        if !self.has_ipv4() {
            return None;
        }
        crate::ipv4::ip_dst_at(frame, usize::from(self.l3_offset))
    }

    /// TCP destination port, loaded from the frame.
    pub fn tcp_dst(&self, frame: &[u8]) -> Option<u16> {
        if !self.has_tcp() {
            return None;
        }
        crate::tcp::tcp_dst_at(frame, usize::from(self.l4_offset))
    }

    /// TCP source port, loaded from the frame.
    pub fn tcp_src(&self, frame: &[u8]) -> Option<u16> {
        if !self.has_tcp() {
            return None;
        }
        crate::tcp::tcp_src_at(frame, usize::from(self.l4_offset))
    }

    /// UDP destination port, loaded from the frame.
    pub fn udp_dst(&self, frame: &[u8]) -> Option<u16> {
        if !self.has_udp() {
            return None;
        }
        crate::udp::udp_dst_at(frame, usize::from(self.l4_offset))
    }

    /// UDP source port, loaded from the frame.
    pub fn udp_src(&self, frame: &[u8]) -> Option<u16> {
        if !self.has_udp() {
            return None;
        }
        crate::udp::udp_src_at(frame, usize::from(self.l4_offset))
    }

    /// Generic L4 destination port (TCP or UDP).
    pub fn l4_dst(&self, frame: &[u8]) -> Option<u16> {
        if self.has_tcp() {
            self.tcp_dst(frame)
        } else if self.has_udp() {
            self.udp_dst(frame)
        } else {
            None
        }
    }

    /// Generic L4 source port (TCP or UDP).
    pub fn l4_src(&self, frame: &[u8]) -> Option<u16> {
        if self.has_tcp() {
            self.tcp_src(frame)
        } else if self.has_udp() {
            self.udp_src(frame)
        } else {
            None
        }
    }
}

/// L2 parser template: records the Ethernet offset, walks any VLAN tags and
/// notes the effective EtherType.
fn parse_l2(frame: &[u8], out: &mut ParsedHeaders) -> Option<usize> {
    if frame.len() < ETHERNET_HEADER_LEN {
        return None;
    }
    out.mask |= ProtoMask::ETH;
    out.l2_offset = 0;
    let mut ethertype = u16::from_be_bytes([frame[12], frame[13]]);
    let mut offset = ETHERNET_HEADER_LEN;
    // Walk at most two tags (802.1ad QinQ outer + 802.1Q inner).
    for _ in 0..2 {
        if !EtherType::from_u16(ethertype).is_vlan() {
            break;
        }
        let tag = frame.get(offset..offset + VLAN_TAG_LEN)?;
        let tci = u16::from_be_bytes([tag[0], tag[1]]);
        if !out.mask.contains(ProtoMask::VLAN) {
            out.vlan_vid = tci & 0x0fff;
            out.vlan_pcp = (tci >> 13) as u8;
        }
        out.mask |= ProtoMask::VLAN;
        ethertype = u16::from_be_bytes([tag[2], tag[3]]);
        offset += VLAN_TAG_LEN;
    }
    out.ethertype = ethertype;
    out.depth_parsed = ParseDepthTag::L2;
    Some(offset)
}

/// L3 parser template: composes the L2 parser and records the network-layer
/// offset and protocol.
fn parse_l3(frame: &[u8], out: &mut ParsedHeaders) -> Option<(usize, IpProto)> {
    let l3_offset = parse_l2(frame, out)?;
    out.depth_parsed = ParseDepthTag::L3;
    match EtherType::from_u16(out.ethertype) {
        EtherType::Ipv4 => {
            let hdr = frame.get(l3_offset..)?;
            if hdr.len() < crate::ipv4::IPV4_MIN_HEADER_LEN || hdr[0] >> 4 != 4 {
                return None;
            }
            let ihl = usize::from(hdr[0] & 0x0f) * 4;
            if ihl < crate::ipv4::IPV4_MIN_HEADER_LEN || hdr.len() < ihl {
                return None;
            }
            out.mask |= ProtoMask::IPV4;
            out.l3_offset = l3_offset as u16;
            out.ip_proto = hdr[9];
            Some((l3_offset + ihl, IpProto::from_u8(hdr[9])))
        }
        EtherType::Ipv6 => {
            let hdr = frame.get(l3_offset..)?;
            if hdr.len() < crate::ipv6::IPV6_HEADER_LEN || hdr[0] >> 4 != 6 {
                return None;
            }
            out.mask |= ProtoMask::IPV6;
            out.l3_offset = l3_offset as u16;
            out.ip_proto = hdr[6];
            Some((
                l3_offset + crate::ipv6::IPV6_HEADER_LEN,
                IpProto::from_u8(hdr[6]),
            ))
        }
        EtherType::Arp => {
            if frame.len() >= l3_offset + crate::arp::ARP_LEN {
                out.mask |= ProtoMask::ARP;
                out.l3_offset = l3_offset as u16;
            }
            None
        }
        _ => None,
    }
}

/// L4 parser template: composes L2 and L3 and records the transport offset.
fn parse_l4(frame: &[u8], out: &mut ParsedHeaders) {
    let Some((l4_offset, proto)) = parse_l3(frame, out) else {
        return;
    };
    out.depth_parsed = ParseDepthTag::L4;
    match proto {
        IpProto::Tcp => {
            if frame.len() >= l4_offset + crate::tcp::TCP_MIN_HEADER_LEN {
                out.mask |= ProtoMask::TCP;
                out.l4_offset = l4_offset as u16;
            }
        }
        IpProto::Udp => {
            if frame.len() >= l4_offset + crate::udp::UDP_HEADER_LEN {
                out.mask |= ProtoMask::UDP;
                out.l4_offset = l4_offset as u16;
            }
        }
        IpProto::Icmp => {
            if frame.len() >= l4_offset + 4 {
                out.mask |= ProtoMask::ICMP;
                out.l4_offset = l4_offset as u16;
            }
        }
        IpProto::Other(_) => {}
    }
}

/// Parses a frame to the requested depth.
///
/// Never fails: malformed or truncated layers simply leave the corresponding
/// bits unset in the protocol mask, so match templates requiring those layers
/// fall through to the next flow entry — the same behaviour as the generated
/// code of the paper.
pub fn parse(frame: &[u8], depth: ParseDepth) -> ParsedHeaders {
    let mut out = ParsedHeaders::default();
    match depth {
        ParseDepth::L2 => {
            let _ = parse_l2(frame, &mut out);
        }
        ParseDepth::L3 => {
            let _ = parse_l3(frame, &mut out);
        }
        ParseDepth::L4 => parse_l4(frame, &mut out),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketBuilder;

    #[test]
    fn l2_only_parse_skips_upper_layers() {
        let pkt = PacketBuilder::tcp().tcp_dst(443).build();
        let h = parse(pkt.data(), ParseDepth::L2);
        assert!(h.mask.contains(ProtoMask::ETH));
        assert!(!h.has_ipv4());
        assert!(!h.has_tcp());
        assert_eq!(h.ethertype, 0x0800);
        assert_eq!(h.depth_parsed, ParseDepthTag::L2);
    }

    #[test]
    fn l4_parse_exposes_ports() {
        let pkt = PacketBuilder::tcp()
            .ipv4_src([10, 1, 2, 3])
            .ipv4_dst([192, 0, 2, 1])
            .tcp_src(50000)
            .tcp_dst(80)
            .build();
        let h = parse(pkt.data(), ParseDepth::L4);
        assert!(h.has_ipv4() && h.has_tcp());
        assert_eq!(h.ipv4_dst(pkt.data()).unwrap().to_string(), "192.0.2.1");
        assert_eq!(h.tcp_dst(pkt.data()), Some(80));
        assert_eq!(h.tcp_src(pkt.data()), Some(50000));
        assert_eq!(h.l4_dst(pkt.data()), Some(80));
    }

    #[test]
    fn vlan_tagged_udp() {
        let pkt = PacketBuilder::udp().vlan(3).udp_dst(4739).build();
        let h = parse(pkt.data(), ParseDepth::L4);
        assert!(h.has_vlan());
        assert_eq!(h.vlan_vid, 3);
        assert!(h.has_udp());
        assert_eq!(h.udp_dst(pkt.data()), Some(4739));
        // l3 offset shifted by the 4-byte tag
        assert_eq!(h.l3_offset, 18);
    }

    #[test]
    fn truncated_ip_header_clears_upper_bits() {
        let pkt = PacketBuilder::tcp().build();
        let frame = &pkt.data()[..20]; // cut inside the IP header
        let h = parse(frame, ParseDepth::L4);
        assert!(h.mask.contains(ProtoMask::ETH));
        assert!(!h.has_ipv4());
        assert!(!h.has_tcp());
    }

    #[test]
    fn non_ip_frame_has_no_l3() {
        let mut frame = vec![0u8; 60];
        frame[12] = 0x88;
        frame[13] = 0xb5; // local experimental EtherType
        let h = parse(&frame, ParseDepth::L4);
        assert!(h.mask.contains(ProtoMask::ETH));
        assert!(!h.has_ipv4());
        assert_eq!(h.ethertype, 0x88b5);
    }

    #[test]
    fn proto_mask_contains_semantics() {
        let m = ProtoMask::ETH | ProtoMask::IPV4 | ProtoMask::TCP;
        assert!(m.contains(ProtoMask::IPV4 | ProtoMask::TCP));
        assert!(!m.contains(ProtoMask::UDP));
        assert!(m.intersects(ProtoMask::TCP | ProtoMask::UDP));
        assert!(!m.intersects(ProtoMask::UDP | ProtoMask::ICMP));
    }
}
