//! 802.1Q VLAN tagging.

use crate::ethernet::EtherType;

/// Length of one 802.1Q tag (TCI + inner EtherType).
pub const VLAN_TAG_LEN: usize = 4;

/// Decoded 802.1Q tag.
///
/// The tag sits between the source MAC and the (inner) EtherType and carries
/// the Tag Control Information word: 3 bits of priority (PCP), the DEI bit and
/// a 12-bit VLAN identifier. OpenFlow exposes the VID as `vlan_vid` and the
/// PCP as `vlan_pcp`; both are matchable fields in the access-gateway use case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VlanTag {
    /// Priority Code Point (0..=7).
    pub pcp: u8,
    /// Drop Eligible Indicator.
    pub dei: bool,
    /// VLAN identifier (0..=4095).
    pub vid: u16,
    /// EtherType of the payload following the tag.
    pub inner_ethertype: EtherType,
}

impl VlanTag {
    /// Parses a tag from `data`, which must start right after the outer
    /// EtherType (i.e. at the TCI word).
    pub fn parse(data: &[u8]) -> Option<Self> {
        if data.len() < VLAN_TAG_LEN {
            return None;
        }
        let tci = u16::from_be_bytes([data[0], data[1]]);
        Some(VlanTag {
            pcp: (tci >> 13) as u8,
            dei: tci & 0x1000 != 0,
            vid: tci & 0x0fff,
            inner_ethertype: EtherType::from_u16(u16::from_be_bytes([data[2], data[3]])),
        })
    }

    /// Serialises the tag into the first four bytes of `out`.
    ///
    /// # Panics
    /// Panics if `out` is shorter than [`VLAN_TAG_LEN`] or if `vid > 4095` /
    /// `pcp > 7` (invalid tags must not be constructed).
    pub fn write(&self, out: &mut [u8]) {
        assert!(self.vid <= 0x0fff, "VLAN VID out of range");
        assert!(self.pcp <= 7, "VLAN PCP out of range");
        let tci = (u16::from(self.pcp) << 13) | (u16::from(self.dei) << 12) | self.vid;
        out[0..2].copy_from_slice(&tci.to_be_bytes());
        out[2..4].copy_from_slice(&self.inner_ethertype.to_u16().to_be_bytes());
    }

    /// Convenience constructor for a plain data tag with the given VID.
    pub fn with_vid(vid: u16, inner: EtherType) -> Self {
        VlanTag {
            pcp: 0,
            dei: false,
            vid,
            inner_ethertype: inner,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let tag = VlanTag {
            pcp: 5,
            dei: true,
            vid: 1234,
            inner_ethertype: EtherType::Ipv4,
        };
        let mut buf = [0u8; VLAN_TAG_LEN];
        tag.write(&mut buf);
        assert_eq!(VlanTag::parse(&buf), Some(tag));
    }

    #[test]
    fn short_buffer_is_none() {
        assert_eq!(VlanTag::parse(&[0u8; 3]), None);
    }

    #[test]
    #[should_panic(expected = "VID out of range")]
    fn oversized_vid_panics() {
        let tag = VlanTag::with_vid(5000, EtherType::Ipv4);
        let mut buf = [0u8; VLAN_TAG_LEN];
        tag.write(&mut buf);
    }

    #[test]
    fn vid_masking_on_parse() {
        // PCP and DEI bits must not leak into the VID.
        let mut buf = [0u8; 4];
        VlanTag {
            pcp: 7,
            dei: true,
            vid: 0x0fff,
            inner_ethertype: EtherType::Arp,
        }
        .write(&mut buf);
        let parsed = VlanTag::parse(&buf).unwrap();
        assert_eq!(parsed.vid, 0x0fff);
        assert_eq!(parsed.pcp, 7);
        assert!(parsed.dei);
    }
}
