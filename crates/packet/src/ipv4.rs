//! IPv4 header handling.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::checksum;

/// Minimum IPv4 header length (no options): 20 bytes.
pub const IPV4_MIN_HEADER_LEN: usize = 20;

/// IPv4 address newtype used as a match key.
///
/// Kept separate from `std::net::Ipv4Addr` so that prefix/mask arithmetic,
/// wire serialisation and hashing stay explicit and allocation free; the
/// LPM substrate and the IP matcher templates work on the `u32` host-order
/// representation exposed by [`Ipv4Addr4::to_u32`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct Ipv4Addr4(pub [u8; 4]);

impl Ipv4Addr4 {
    /// Builds an address from four dotted-quad bytes.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr4([a, b, c, d])
    }

    /// The unspecified address `0.0.0.0`.
    pub const UNSPECIFIED: Ipv4Addr4 = Ipv4Addr4([0; 4]);

    /// Returns the host-order `u32` representation.
    pub const fn to_u32(self) -> u32 {
        u32::from_be_bytes(self.0)
    }

    /// Builds an address from a host-order `u32`.
    pub const fn from_u32(v: u32) -> Self {
        Ipv4Addr4(v.to_be_bytes())
    }

    /// Returns the raw bytes in network order.
    pub const fn octets(self) -> [u8; 4] {
        self.0
    }

    /// Applies a prefix mask of the given length (0..=32).
    pub fn masked(self, prefix_len: u8) -> Self {
        Ipv4Addr4::from_u32(self.to_u32() & prefix_mask(prefix_len))
    }

    /// True if `self` lies inside `prefix/len`.
    pub fn in_prefix(self, prefix: Ipv4Addr4, len: u8) -> bool {
        self.masked(len) == prefix.masked(len)
    }
}

/// Returns the `u32` mask corresponding to a prefix length (0..=32).
pub const fn prefix_mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else if len >= 32 {
        u32::MAX
    } else {
        u32::MAX << (32 - len)
    }
}

impl From<[u8; 4]> for Ipv4Addr4 {
    fn from(b: [u8; 4]) -> Self {
        Ipv4Addr4(b)
    }
}

impl fmt::Display for Ipv4Addr4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}.{}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

impl fmt::Debug for Ipv4Addr4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Error returned when parsing a textual IPv4 address fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4ParseError(pub String);

impl fmt::Display for Ipv4ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid IPv4 address: {}", self.0)
    }
}

impl std::error::Error for Ipv4ParseError {}

impl FromStr for Ipv4Addr4 {
    type Err = Ipv4ParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split('.').collect();
        if parts.len() != 4 {
            return Err(Ipv4ParseError(s.to_string()));
        }
        let mut bytes = [0u8; 4];
        for (i, p) in parts.iter().enumerate() {
            bytes[i] = p.parse().map_err(|_| Ipv4ParseError(s.to_string()))?;
        }
        Ok(Ipv4Addr4(bytes))
    }
}

/// IP protocol numbers used by the parser and the `ip_proto` matcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProto {
    /// ICMP, protocol 1.
    Icmp,
    /// TCP, protocol 6.
    Tcp,
    /// UDP, protocol 17.
    Udp,
    /// Any other protocol number.
    Other(u8),
}

impl IpProto {
    /// Decodes the 8-bit protocol number.
    pub fn from_u8(v: u8) -> Self {
        match v {
            1 => IpProto::Icmp,
            6 => IpProto::Tcp,
            17 => IpProto::Udp,
            other => IpProto::Other(other),
        }
    }

    /// Encodes back to the 8-bit protocol number.
    pub fn to_u8(self) -> u8 {
        match self {
            IpProto::Icmp => 1,
            IpProto::Tcp => 6,
            IpProto::Udp => 17,
            IpProto::Other(v) => v,
        }
    }
}

/// Decoded view of an IPv4 header (options are preserved only as a length).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv4Header {
    /// Internet Header Length in bytes (20..=60).
    pub header_len: usize,
    /// Differentiated Services Code Point (upper 6 bits of the TOS byte).
    pub dscp: u8,
    /// Explicit Congestion Notification (lower 2 bits of the TOS byte).
    pub ecn: u8,
    /// Total length of the IP packet in bytes.
    pub total_len: u16,
    /// Identification field.
    pub identification: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol.
    pub proto: IpProto,
    /// Header checksum as found on the wire.
    pub checksum: u16,
    /// Source address.
    pub src: Ipv4Addr4,
    /// Destination address.
    pub dst: Ipv4Addr4,
}

impl Ipv4Header {
    /// Parses the header from the start of `data`.
    ///
    /// Returns `None` if the buffer is too short, the version is not 4, or the
    /// IHL is inconsistent with the buffer length.
    pub fn parse(data: &[u8]) -> Option<Self> {
        if data.len() < IPV4_MIN_HEADER_LEN {
            return None;
        }
        let version = data[0] >> 4;
        if version != 4 {
            return None;
        }
        let header_len = usize::from(data[0] & 0x0f) * 4;
        if header_len < IPV4_MIN_HEADER_LEN || data.len() < header_len {
            return None;
        }
        Some(Ipv4Header {
            header_len,
            dscp: data[1] >> 2,
            ecn: data[1] & 0x03,
            total_len: u16::from_be_bytes([data[2], data[3]]),
            identification: u16::from_be_bytes([data[4], data[5]]),
            ttl: data[8],
            proto: IpProto::from_u8(data[9]),
            checksum: u16::from_be_bytes([data[10], data[11]]),
            src: Ipv4Addr4([data[12], data[13], data[14], data[15]]),
            dst: Ipv4Addr4([data[16], data[17], data[18], data[19]]),
        })
    }

    /// Serialises a 20-byte (option-free) header into `out`, computing the
    /// checksum. `self.header_len` must be 20.
    ///
    /// # Panics
    /// Panics if `out` is shorter than 20 bytes or `header_len != 20`.
    pub fn write(&self, out: &mut [u8]) {
        assert_eq!(
            self.header_len, IPV4_MIN_HEADER_LEN,
            "options not supported on write"
        );
        out[0] = 0x45;
        out[1] = (self.dscp << 2) | (self.ecn & 0x03);
        out[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        out[4..6].copy_from_slice(&self.identification.to_be_bytes());
        out[6..8].copy_from_slice(&[0x40, 0x00]); // don't fragment, offset 0
        out[8] = self.ttl;
        out[9] = self.proto.to_u8();
        out[10..12].copy_from_slice(&[0, 0]);
        out[12..16].copy_from_slice(&self.src.octets());
        out[16..20].copy_from_slice(&self.dst.octets());
        let csum = checksum::ones_complement(&out[..IPV4_MIN_HEADER_LEN]);
        out[10..12].copy_from_slice(&csum.to_be_bytes());
    }

    /// Verifies the header checksum over `data[..header_len]`.
    pub fn verify_checksum(data: &[u8]) -> bool {
        if data.len() < IPV4_MIN_HEADER_LEN {
            return false;
        }
        let header_len = usize::from(data[0] & 0x0f) * 4;
        if data.len() < header_len {
            return false;
        }
        checksum::ones_complement(&data[..header_len]) == 0
    }
}

/// Reads the destination address at `offset` (start of the IPv4 header)
/// without full parsing. Mirrors the `IP_DST_ADDR_MATCHER` template's
/// `mov eax,[r13+0x10]` load.
pub fn ip_dst_at(frame: &[u8], offset: usize) -> Option<Ipv4Addr4> {
    let bytes = frame.get(offset + 16..offset + 20)?;
    Some(Ipv4Addr4([bytes[0], bytes[1], bytes[2], bytes[3]]))
}

/// Reads the source address at `offset` without full parsing.
pub fn ip_src_at(frame: &[u8], offset: usize) -> Option<Ipv4Addr4> {
    let bytes = frame.get(offset + 12..offset + 16)?;
    Some(Ipv4Addr4([bytes[0], bytes[1], bytes[2], bytes[3]]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Header {
        Ipv4Header {
            header_len: IPV4_MIN_HEADER_LEN,
            dscp: 0,
            ecn: 0,
            total_len: 60,
            identification: 0x1234,
            ttl: 64,
            proto: IpProto::Tcp,
            checksum: 0,
            src: Ipv4Addr4::new(10, 0, 0, 1),
            dst: Ipv4Addr4::new(192, 0, 2, 1),
        }
    }

    #[test]
    fn roundtrip_and_checksum() {
        let hdr = sample();
        let mut buf = [0u8; IPV4_MIN_HEADER_LEN];
        hdr.write(&mut buf);
        assert!(Ipv4Header::verify_checksum(&buf));
        let parsed = Ipv4Header::parse(&buf).unwrap();
        assert_eq!(parsed.src, hdr.src);
        assert_eq!(parsed.dst, hdr.dst);
        assert_eq!(parsed.proto, IpProto::Tcp);
        assert_eq!(parsed.ttl, 64);
    }

    #[test]
    fn corrupted_checksum_detected() {
        let hdr = sample();
        let mut buf = [0u8; IPV4_MIN_HEADER_LEN];
        hdr.write(&mut buf);
        buf[8] ^= 0xff; // flip the TTL
        assert!(!Ipv4Header::verify_checksum(&buf));
    }

    #[test]
    fn rejects_wrong_version_and_short_buffers() {
        let mut buf = [0u8; IPV4_MIN_HEADER_LEN];
        sample().write(&mut buf);
        buf[0] = 0x65; // version 6
        assert!(Ipv4Header::parse(&buf).is_none());
        assert!(Ipv4Header::parse(&buf[..10]).is_none());
    }

    #[test]
    fn prefix_math() {
        let addr = Ipv4Addr4::new(192, 0, 2, 123);
        assert_eq!(addr.masked(24), Ipv4Addr4::new(192, 0, 2, 0));
        assert_eq!(addr.masked(0), Ipv4Addr4::UNSPECIFIED);
        assert_eq!(addr.masked(32), addr);
        assert!(addr.in_prefix(Ipv4Addr4::new(192, 0, 2, 0), 24));
        assert!(!addr.in_prefix(Ipv4Addr4::new(192, 0, 3, 0), 24));
        assert_eq!(prefix_mask(8), 0xff00_0000);
    }

    #[test]
    fn display_and_parse() {
        let addr: Ipv4Addr4 = "198.51.100.7".parse().unwrap();
        assert_eq!(addr, Ipv4Addr4::new(198, 51, 100, 7));
        assert_eq!(addr.to_string(), "198.51.100.7");
        assert!("198.51.100".parse::<Ipv4Addr4>().is_err());
        assert!("a.b.c.d".parse::<Ipv4Addr4>().is_err());
    }

    #[test]
    fn raw_field_loads() {
        let hdr = sample();
        let mut frame = vec![0u8; 34];
        hdr.write(&mut frame[14..34]);
        assert_eq!(ip_dst_at(&frame, 14), Some(hdr.dst));
        assert_eq!(ip_src_at(&frame, 14), Some(hdr.src));
        assert_eq!(ip_dst_at(&frame, 30), None);
    }
}
