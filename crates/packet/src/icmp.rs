//! ICMP (v4) header handling.

/// ICMP header length (type, code, checksum, rest-of-header): 8 bytes.
pub const ICMP_HEADER_LEN: usize = 8;

/// ICMP message types the switch cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IcmpType {
    /// Echo reply (0).
    EchoReply,
    /// Destination unreachable (3).
    DestUnreachable,
    /// Echo request (8).
    EchoRequest,
    /// Time exceeded (11).
    TimeExceeded,
    /// Any other type.
    Other(u8),
}

impl IcmpType {
    /// Decodes the 8-bit type value.
    pub fn from_u8(v: u8) -> Self {
        match v {
            0 => IcmpType::EchoReply,
            3 => IcmpType::DestUnreachable,
            8 => IcmpType::EchoRequest,
            11 => IcmpType::TimeExceeded,
            other => IcmpType::Other(other),
        }
    }

    /// Encodes back to the 8-bit type value.
    pub fn to_u8(self) -> u8 {
        match self {
            IcmpType::EchoReply => 0,
            IcmpType::DestUnreachable => 3,
            IcmpType::EchoRequest => 8,
            IcmpType::TimeExceeded => 11,
            IcmpType::Other(v) => v,
        }
    }
}

/// Decoded view of an ICMP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IcmpHeader {
    /// Message type.
    pub icmp_type: IcmpType,
    /// Message code (OpenFlow `icmpv4_code`).
    pub code: u8,
    /// Checksum as found on the wire.
    pub checksum: u16,
}

impl IcmpHeader {
    /// Parses the header from the start of `data`.
    pub fn parse(data: &[u8]) -> Option<Self> {
        if data.len() < 4 {
            return None;
        }
        Some(IcmpHeader {
            icmp_type: IcmpType::from_u8(data[0]),
            code: data[1],
            checksum: u16::from_be_bytes([data[2], data[3]]),
        })
    }

    /// Serialises type/code/checksum into the first four bytes of `out`.
    ///
    /// # Panics
    /// Panics if `out` is shorter than four bytes.
    pub fn write(&self, out: &mut [u8]) {
        out[0] = self.icmp_type.to_u8();
        out[1] = self.code;
        out[2..4].copy_from_slice(&self.checksum.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let hdr = IcmpHeader {
            icmp_type: IcmpType::EchoRequest,
            code: 0,
            checksum: 0x1234,
        };
        let mut buf = [0u8; ICMP_HEADER_LEN];
        hdr.write(&mut buf);
        assert_eq!(IcmpHeader::parse(&buf), Some(hdr));
    }

    #[test]
    fn type_codec() {
        for v in [0u8, 3, 8, 11, 42] {
            assert_eq!(IcmpType::from_u8(v).to_u8(), v);
        }
    }

    #[test]
    fn short_buffer_is_none() {
        assert!(IcmpHeader::parse(&[0u8; 3]).is_none());
    }
}
