//! TCP header handling.

/// Minimum TCP header length (no options): 20 bytes.
pub const TCP_MIN_HEADER_LEN: usize = 20;

/// TCP flag bits (the low 6 bits of byte 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TcpFlags {
    /// FIN — no more data from sender.
    pub fin: bool,
    /// SYN — synchronise sequence numbers.
    pub syn: bool,
    /// RST — reset the connection.
    pub rst: bool,
    /// PSH — push buffered data.
    pub psh: bool,
    /// ACK — acknowledgement field significant.
    pub ack: bool,
    /// URG — urgent pointer field significant.
    pub urg: bool,
}

impl TcpFlags {
    /// Decodes the flag byte.
    pub fn from_u8(v: u8) -> Self {
        TcpFlags {
            fin: v & 0x01 != 0,
            syn: v & 0x02 != 0,
            rst: v & 0x04 != 0,
            psh: v & 0x08 != 0,
            ack: v & 0x10 != 0,
            urg: v & 0x20 != 0,
        }
    }

    /// Encodes back to the flag byte.
    pub fn to_u8(self) -> u8 {
        u8::from(self.fin)
            | u8::from(self.syn) << 1
            | u8::from(self.rst) << 2
            | u8::from(self.psh) << 3
            | u8::from(self.ack) << 4
            | u8::from(self.urg) << 5
    }

    /// A bare SYN, as sent by the traffic generators for new flows.
    pub fn syn_only() -> Self {
        TcpFlags {
            syn: true,
            ..Default::default()
        }
    }
}

/// Decoded view of a TCP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgement number.
    pub ack: u32,
    /// Data offset in bytes (20..=60).
    pub header_len: usize,
    /// Flag bits.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
    /// Checksum as found on the wire.
    pub checksum: u16,
}

impl TcpHeader {
    /// Parses the header from the start of `data`.
    pub fn parse(data: &[u8]) -> Option<Self> {
        if data.len() < TCP_MIN_HEADER_LEN {
            return None;
        }
        let header_len = usize::from(data[12] >> 4) * 4;
        if header_len < TCP_MIN_HEADER_LEN {
            return None;
        }
        Some(TcpHeader {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            seq: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
            ack: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
            header_len,
            flags: TcpFlags::from_u8(data[13]),
            window: u16::from_be_bytes([data[14], data[15]]),
            checksum: u16::from_be_bytes([data[16], data[17]]),
        })
    }

    /// Serialises a 20-byte (option-free) header into `out`. The checksum is
    /// written as-is; use [`crate::checksum::pseudo_header_checksum`] to fill
    /// it in when a valid segment is needed.
    ///
    /// # Panics
    /// Panics if `out` is shorter than 20 bytes.
    pub fn write(&self, out: &mut [u8]) {
        out[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        out[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        out[4..8].copy_from_slice(&self.seq.to_be_bytes());
        out[8..12].copy_from_slice(&self.ack.to_be_bytes());
        out[12] = 5 << 4;
        out[13] = self.flags.to_u8();
        out[14..16].copy_from_slice(&self.window.to_be_bytes());
        out[16..18].copy_from_slice(&self.checksum.to_be_bytes());
        out[18..20].copy_from_slice(&[0, 0]);
    }
}

/// Reads the destination port at `offset` (start of the TCP header) without
/// full parsing — the `cmp [r14+0x2],PORT` load of the matcher template.
pub fn tcp_dst_at(frame: &[u8], offset: usize) -> Option<u16> {
    let b = frame.get(offset + 2..offset + 4)?;
    Some(u16::from_be_bytes([b[0], b[1]]))
}

/// Reads the source port at `offset` without full parsing.
pub fn tcp_src_at(frame: &[u8], offset: usize) -> Option<u16> {
    let b = frame.get(offset..offset + 2)?;
    Some(u16::from_be_bytes([b[0], b[1]]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let hdr = TcpHeader {
            src_port: 49152,
            dst_port: 80,
            seq: 0xdead_beef,
            ack: 0x0102_0304,
            header_len: TCP_MIN_HEADER_LEN,
            flags: TcpFlags::syn_only(),
            window: 65535,
            checksum: 0xabcd,
        };
        let mut buf = [0u8; TCP_MIN_HEADER_LEN];
        hdr.write(&mut buf);
        assert_eq!(TcpHeader::parse(&buf), Some(hdr));
        assert_eq!(tcp_dst_at(&buf, 0), Some(80));
        assert_eq!(tcp_src_at(&buf, 0), Some(49152));
    }

    #[test]
    fn flags_roundtrip_all_combinations() {
        for v in 0u8..64 {
            assert_eq!(TcpFlags::from_u8(v).to_u8(), v);
        }
    }

    #[test]
    fn short_buffer_is_none() {
        assert!(TcpHeader::parse(&[0u8; 19]).is_none());
        assert!(tcp_dst_at(&[0u8; 3], 0).is_none());
    }

    #[test]
    fn bogus_data_offset_rejected() {
        let mut buf = [0u8; TCP_MIN_HEADER_LEN];
        buf[12] = 4 << 4; // data offset 16 bytes < minimum
        assert!(TcpHeader::parse(&buf).is_none());
    }
}
