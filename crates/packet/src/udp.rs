//! UDP header handling.

/// UDP header length: 8 bytes.
pub const UDP_HEADER_LEN: usize = 8;

/// Decoded view of a UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length of the UDP header plus payload.
    pub length: u16,
    /// Checksum as found on the wire (0 means "not computed" in IPv4).
    pub checksum: u16,
}

impl UdpHeader {
    /// Parses the header from the start of `data`.
    pub fn parse(data: &[u8]) -> Option<Self> {
        if data.len() < UDP_HEADER_LEN {
            return None;
        }
        Some(UdpHeader {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            length: u16::from_be_bytes([data[4], data[5]]),
            checksum: u16::from_be_bytes([data[6], data[7]]),
        })
    }

    /// Serialises the header into the first eight bytes of `out`.
    ///
    /// # Panics
    /// Panics if `out` is shorter than [`UDP_HEADER_LEN`].
    pub fn write(&self, out: &mut [u8]) {
        out[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        out[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        out[4..6].copy_from_slice(&self.length.to_be_bytes());
        out[6..8].copy_from_slice(&self.checksum.to_be_bytes());
    }
}

/// Reads the destination port at `offset` (start of the UDP header) without
/// full parsing.
pub fn udp_dst_at(frame: &[u8], offset: usize) -> Option<u16> {
    let b = frame.get(offset + 2..offset + 4)?;
    Some(u16::from_be_bytes([b[0], b[1]]))
}

/// Reads the source port at `offset` without full parsing.
pub fn udp_src_at(frame: &[u8], offset: usize) -> Option<u16> {
    let b = frame.get(offset..offset + 2)?;
    Some(u16::from_be_bytes([b[0], b[1]]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let hdr = UdpHeader {
            src_port: 1234,
            dst_port: 53,
            length: 40,
            checksum: 0,
        };
        let mut buf = [0u8; UDP_HEADER_LEN];
        hdr.write(&mut buf);
        assert_eq!(UdpHeader::parse(&buf), Some(hdr));
        assert_eq!(udp_dst_at(&buf, 0), Some(53));
        assert_eq!(udp_src_at(&buf, 0), Some(1234));
    }

    #[test]
    fn short_buffer_is_none() {
        assert!(UdpHeader::parse(&[0u8; 7]).is_none());
        assert!(udp_dst_at(&[0u8; 3], 0).is_none());
    }
}
