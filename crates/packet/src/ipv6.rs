//! Minimal IPv6 header handling.
//!
//! The evaluation use cases of the paper are IPv4-only, but the OpenFlow
//! match-field set (and the parser templates) cover IPv6 addresses, so the
//! fixed 40-byte base header is supported here for completeness.

use std::fmt;

use crate::ipv4::IpProto;

/// IPv6 base header length: 40 bytes.
pub const IPV6_HEADER_LEN: usize = 40;

/// A 128-bit IPv6 address.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Ipv6Addr16(pub [u8; 16]);

impl Ipv6Addr16 {
    /// Builds an address from 16 network-order bytes.
    pub const fn new(bytes: [u8; 16]) -> Self {
        Ipv6Addr16(bytes)
    }

    /// Returns the raw bytes in network order.
    pub const fn octets(self) -> [u8; 16] {
        self.0
    }

    /// Returns the address as a pair of host-order 64-bit halves, the
    /// representation used when an IPv6 address participates in a hash key.
    pub fn to_u64_pair(self) -> (u64, u64) {
        let hi = u64::from_be_bytes(self.0[0..8].try_into().expect("8 bytes"));
        let lo = u64::from_be_bytes(self.0[8..16].try_into().expect("8 bytes"));
        (hi, lo)
    }
}

impl fmt::Display for Ipv6Addr16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut groups = [0u16; 8];
        for (i, g) in groups.iter_mut().enumerate() {
            *g = u16::from_be_bytes([self.0[2 * i], self.0[2 * i + 1]]);
        }
        let text: Vec<String> = groups.iter().map(|g| format!("{g:x}")).collect();
        write!(f, "{}", text.join(":"))
    }
}

impl fmt::Debug for Ipv6Addr16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Decoded view of the fixed IPv6 base header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ipv6Header {
    /// Traffic class.
    pub traffic_class: u8,
    /// Flow label (20 bits).
    pub flow_label: u32,
    /// Payload length.
    pub payload_len: u16,
    /// Next header, interpreted with the same protocol numbers as IPv4.
    pub next_header: IpProto,
    /// Hop limit.
    pub hop_limit: u8,
    /// Source address.
    pub src: Ipv6Addr16,
    /// Destination address.
    pub dst: Ipv6Addr16,
}

impl Ipv6Header {
    /// Parses the fixed header from the start of `data`.
    pub fn parse(data: &[u8]) -> Option<Self> {
        if data.len() < IPV6_HEADER_LEN || data[0] >> 4 != 6 {
            return None;
        }
        Some(Ipv6Header {
            traffic_class: (data[0] << 4) | (data[1] >> 4),
            flow_label: u32::from(data[1] & 0x0f) << 16
                | u32::from(data[2]) << 8
                | u32::from(data[3]),
            payload_len: u16::from_be_bytes([data[4], data[5]]),
            next_header: IpProto::from_u8(data[6]),
            hop_limit: data[7],
            src: Ipv6Addr16(data[8..24].try_into().expect("16 bytes")),
            dst: Ipv6Addr16(data[24..40].try_into().expect("16 bytes")),
        })
    }

    /// Serialises the fixed header into the first 40 bytes of `out`.
    ///
    /// # Panics
    /// Panics if `out` is shorter than [`IPV6_HEADER_LEN`].
    pub fn write(&self, out: &mut [u8]) {
        out[0] = 0x60 | (self.traffic_class >> 4);
        out[1] = (self.traffic_class << 4) | ((self.flow_label >> 16) as u8 & 0x0f);
        out[2] = (self.flow_label >> 8) as u8;
        out[3] = self.flow_label as u8;
        out[4..6].copy_from_slice(&self.payload_len.to_be_bytes());
        out[6] = self.next_header.to_u8();
        out[7] = self.hop_limit;
        out[8..24].copy_from_slice(&self.src.octets());
        out[24..40].copy_from_slice(&self.dst.octets());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let hdr = Ipv6Header {
            traffic_class: 0x2e,
            flow_label: 0xabcde,
            payload_len: 20,
            next_header: IpProto::Udp,
            hop_limit: 64,
            src: Ipv6Addr16::new([0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1]),
            dst: Ipv6Addr16::new([0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2]),
        };
        let mut buf = [0u8; IPV6_HEADER_LEN];
        hdr.write(&mut buf);
        assert_eq!(Ipv6Header::parse(&buf), Some(hdr));
    }

    #[test]
    fn rejects_wrong_version_or_short() {
        let buf = [0u8; IPV6_HEADER_LEN];
        assert!(Ipv6Header::parse(&buf).is_none()); // version 0
        assert!(Ipv6Header::parse(&buf[..30]).is_none());
    }

    #[test]
    fn u64_pair_split() {
        let addr = Ipv6Addr16::new([1, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 3]);
        let (hi, lo) = addr.to_u64_pair();
        assert_eq!(hi, 0x0100_0000_0000_0002);
        assert_eq!(lo, 3);
    }
}
