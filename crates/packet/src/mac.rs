//! Ethernet MAC addresses.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

/// A 48-bit Ethernet MAC address.
///
/// Stored as six network-order bytes so that it can be memcpy'd straight out
/// of a frame. The type is `Copy` and hashable, making it usable as an exact
/// match key in the compound-hash table template and in the OVS microflow
/// cache.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);
    /// The all-zero address, used as "unspecified".
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Builds an address from the six bytes in transmission order.
    pub const fn new(bytes: [u8; 6]) -> Self {
        MacAddr(bytes)
    }

    /// Returns the raw bytes in transmission order.
    pub const fn octets(&self) -> [u8; 6] {
        self.0
    }

    /// True for group (multicast/broadcast) addresses: the I/G bit of the
    /// first octet is set.
    pub fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True for the all-ones broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// True for locally administered addresses (U/L bit set).
    pub fn is_local(&self) -> bool {
        self.0[0] & 0x02 != 0
    }

    /// Packs the address into the low 48 bits of a `u64`, the representation
    /// used when a MAC participates in a compound hash key.
    pub fn to_u64(&self) -> u64 {
        let mut v = 0u64;
        for b in self.0 {
            v = (v << 8) | u64::from(b);
        }
        v
    }

    /// Inverse of [`MacAddr::to_u64`]; the upper 16 bits of `v` are ignored.
    pub fn from_u64(v: u64) -> Self {
        let mut bytes = [0u8; 6];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = ((v >> (40 - 8 * i)) & 0xff) as u8;
        }
        MacAddr(bytes)
    }

    /// Reads an address from the first six bytes of `slice`.
    ///
    /// # Panics
    /// Panics if `slice` is shorter than six bytes.
    pub fn from_slice(slice: &[u8]) -> Self {
        let mut bytes = [0u8; 6];
        bytes.copy_from_slice(&slice[..6]);
        MacAddr(bytes)
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(b: [u8; 6]) -> Self {
        MacAddr(b)
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Error returned when parsing a textual MAC address fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacParseError(pub String);

impl fmt::Display for MacParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid MAC address: {}", self.0)
    }
}

impl std::error::Error for MacParseError {}

impl FromStr for MacAddr {
    type Err = MacParseError;

    /// Parses the conventional `aa:bb:cc:dd:ee:ff` form (also accepts `-` as
    /// the separator).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split([':', '-']).collect();
        if parts.len() != 6 {
            return Err(MacParseError(s.to_string()));
        }
        let mut bytes = [0u8; 6];
        for (i, p) in parts.iter().enumerate() {
            bytes[i] = u8::from_str_radix(p, 16).map_err(|_| MacParseError(s.to_string()))?;
        }
        Ok(MacAddr(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_roundtrip() {
        let mac = MacAddr::new([0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]);
        let text = mac.to_string();
        assert_eq!(text, "de:ad:be:ef:00:01");
        assert_eq!(text.parse::<MacAddr>().unwrap(), mac);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!("de:ad:be:ef:00".parse::<MacAddr>().is_err());
        assert!("de:ad:be:ef:00:zz".parse::<MacAddr>().is_err());
        assert!("".parse::<MacAddr>().is_err());
    }

    #[test]
    fn u64_roundtrip() {
        let mac = MacAddr::new([0x02, 0x34, 0x56, 0x78, 0x9a, 0xbc]);
        assert_eq!(MacAddr::from_u64(mac.to_u64()), mac);
        assert_eq!(mac.to_u64(), 0x0234_5678_9abc);
    }

    #[test]
    fn multicast_and_broadcast_bits() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(MacAddr::new([0x01, 0, 0x5e, 0, 0, 1]).is_multicast());
        assert!(!MacAddr::new([0x02, 0, 0, 0, 0, 1]).is_multicast());
        assert!(MacAddr::new([0x02, 0, 0, 0, 0, 1]).is_local());
    }

    #[test]
    fn from_slice_reads_prefix() {
        let data = [1u8, 2, 3, 4, 5, 6, 7, 8];
        assert_eq!(MacAddr::from_slice(&data), MacAddr::new([1, 2, 3, 4, 5, 6]));
    }
}
