//! Ethernet II framing.

use crate::mac::MacAddr;

/// Length of an untagged Ethernet II header: two MACs plus the EtherType.
pub const ETHERNET_HEADER_LEN: usize = 14;

/// EtherType values the switch datapaths understand.
///
/// Values are the canonical IEEE assignments; [`EtherType::Other`] carries
/// anything else so parsing never fails on unknown payloads (the pipeline can
/// still match on the raw `eth_type` value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4, 0x0800.
    Ipv4,
    /// ARP, 0x0806.
    Arp,
    /// 802.1Q VLAN tag, 0x8100.
    Vlan,
    /// IPv6, 0x86DD.
    Ipv6,
    /// QinQ outer tag, 0x88A8.
    QinQ,
    /// MPLS unicast, 0x8847.
    Mpls,
    /// Any other EtherType.
    Other(u16),
}

impl EtherType {
    /// Decodes the 16-bit wire value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x8100 => EtherType::Vlan,
            0x86dd => EtherType::Ipv6,
            0x88a8 => EtherType::QinQ,
            0x8847 => EtherType::Mpls,
            other => EtherType::Other(other),
        }
    }

    /// Encodes back to the 16-bit wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Vlan => 0x8100,
            EtherType::Ipv6 => 0x86dd,
            EtherType::QinQ => 0x88a8,
            EtherType::Mpls => 0x8847,
            EtherType::Other(v) => v,
        }
    }

    /// True if this EtherType introduces a VLAN tag (802.1Q or QinQ).
    pub fn is_vlan(self) -> bool {
        matches!(self, EtherType::Vlan | EtherType::QinQ)
    }
}

/// Decoded view of an Ethernet II header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetHeader {
    /// Destination MAC address.
    pub dst: MacAddr,
    /// Source MAC address.
    pub src: MacAddr,
    /// EtherType of the payload immediately following this header
    /// (may be a VLAN tag).
    pub ethertype: EtherType,
}

impl EthernetHeader {
    /// Parses the header from the start of `data`. Returns `None` if `data`
    /// is too short to contain a full header.
    pub fn parse(data: &[u8]) -> Option<Self> {
        if data.len() < ETHERNET_HEADER_LEN {
            return None;
        }
        Some(EthernetHeader {
            dst: MacAddr::from_slice(&data[0..6]),
            src: MacAddr::from_slice(&data[6..12]),
            ethertype: EtherType::from_u16(u16::from_be_bytes([data[12], data[13]])),
        })
    }

    /// Serialises the header into the first 14 bytes of `out`.
    ///
    /// # Panics
    /// Panics if `out` is shorter than [`ETHERNET_HEADER_LEN`].
    pub fn write(&self, out: &mut [u8]) {
        out[0..6].copy_from_slice(&self.dst.octets());
        out[6..12].copy_from_slice(&self.src.octets());
        out[12..14].copy_from_slice(&self.ethertype.to_u16().to_be_bytes());
    }
}

/// Reads the destination MAC directly from a frame without full parsing.
/// Used by the L2 matcher template fast path.
pub fn eth_dst(frame: &[u8]) -> Option<MacAddr> {
    if frame.len() < 6 {
        return None;
    }
    Some(MacAddr::from_slice(&frame[0..6]))
}

/// Reads the source MAC directly from a frame without full parsing.
pub fn eth_src(frame: &[u8]) -> Option<MacAddr> {
    if frame.len() < 12 {
        return None;
    }
    Some(MacAddr::from_slice(&frame[6..12]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_write_roundtrip() {
        let hdr = EthernetHeader {
            dst: MacAddr::new([1, 2, 3, 4, 5, 6]),
            src: MacAddr::new([7, 8, 9, 10, 11, 12]),
            ethertype: EtherType::Ipv4,
        };
        let mut buf = [0u8; ETHERNET_HEADER_LEN];
        hdr.write(&mut buf);
        assert_eq!(EthernetHeader::parse(&buf), Some(hdr));
        assert_eq!(eth_dst(&buf), Some(hdr.dst));
        assert_eq!(eth_src(&buf), Some(hdr.src));
    }

    #[test]
    fn parse_short_frame_is_none() {
        assert_eq!(EthernetHeader::parse(&[0u8; 13]), None);
        assert_eq!(eth_dst(&[0u8; 5]), None);
        assert_eq!(eth_src(&[0u8; 11]), None);
    }

    #[test]
    fn ethertype_codec_covers_known_values() {
        for v in [0x0800u16, 0x0806, 0x8100, 0x86dd, 0x88a8, 0x8847, 0x1234] {
            assert_eq!(EtherType::from_u16(v).to_u16(), v);
        }
        assert!(EtherType::Vlan.is_vlan());
        assert!(EtherType::QinQ.is_vlan());
        assert!(!EtherType::Ipv4.is_vlan());
    }
}
