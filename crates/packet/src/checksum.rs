//! Internet (ones' complement) checksum, as used by IPv4, TCP, UDP and ICMP.

/// Computes the 16-bit ones' complement of the ones' complement sum of
/// `data`, i.e. the value to place in (or verify against) a checksum field.
///
/// When the buffer already contains a valid checksum the result is `0`.
pub fn ones_complement(data: &[u8]) -> u16 {
    !fold(sum(data, 0))
}

/// Computes the checksum of a TCP/UDP segment including the IPv4
/// pseudo-header (source, destination, protocol, segment length).
pub fn pseudo_header_checksum(src: [u8; 4], dst: [u8; 4], proto: u8, segment: &[u8]) -> u16 {
    let mut acc = 0u32;
    acc = sum(&src, acc);
    acc = sum(&dst, acc);
    acc += u32::from(proto);
    acc += segment.len() as u32;
    acc = sum(segment, acc);
    !fold(acc)
}

/// Accumulates 16-bit big-endian words of `data` onto `acc` without folding.
fn sum(data: &[u8], mut acc: u32) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        acc += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    acc
}

/// Folds the 32-bit accumulator into 16 bits with end-around carry.
fn fold(mut acc: u32) -> u16 {
    while acc > 0xffff {
        acc = (acc & 0xffff) + (acc >> 16);
    }
    acc as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc1071_example() {
        // Example bytes from RFC 1071 §3: 00 01 f2 03 f4 f5 f6 f7.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        // Sum = 0x2ddf0 -> folded 0xddf2 -> checksum = !0xddf2 = 0x220d.
        assert_eq!(ones_complement(&data), 0x220d);
    }

    #[test]
    fn odd_length_padded_with_zero() {
        assert_eq!(ones_complement(&[0xff]), !0xff00);
    }

    #[test]
    fn empty_buffer() {
        assert_eq!(ones_complement(&[]), 0xffff);
    }

    #[test]
    fn checksum_of_checksummed_buffer_is_zero() {
        let mut data = vec![
            0x45, 0x00, 0x00, 0x28, 0xab, 0xcd, 0x40, 0x00, 0x40, 0x06, 0, 0, 10, 0, 0, 1, 192, 0,
            2, 1,
        ];
        let csum = ones_complement(&data);
        data[10..12].copy_from_slice(&csum.to_be_bytes());
        assert_eq!(ones_complement(&data), 0);
    }

    #[test]
    fn pseudo_header_includes_addresses() {
        let seg = [0u8; 8];
        let a = pseudo_header_checksum([10, 0, 0, 1], [10, 0, 0, 2], 17, &seg);
        let b = pseudo_header_checksum([10, 0, 0, 1], [10, 0, 0, 3], 17, &seg);
        assert_ne!(a, b);
    }
}
