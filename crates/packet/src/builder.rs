//! Packet construction for tests, examples and the traffic generators.

use crate::arp::{ArpOp, ArpPacket, ARP_LEN};
use crate::checksum;
use crate::ethernet::{EtherType, EthernetHeader, ETHERNET_HEADER_LEN};
use crate::icmp::{IcmpHeader, IcmpType};
use crate::ipv4::{IpProto, Ipv4Addr4, Ipv4Header, IPV4_MIN_HEADER_LEN};
use crate::mac::MacAddr;
use crate::packet::Packet;
use crate::tcp::{TcpFlags, TcpHeader, TCP_MIN_HEADER_LEN};
use crate::udp::{UdpHeader, UDP_HEADER_LEN};
use crate::vlan::{VlanTag, VLAN_TAG_LEN};
use crate::MIN_FRAME_LEN;

/// Transport selector for [`PacketBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum L4Kind {
    Tcp,
    Udp,
    Icmp,
    None,
}

/// Fluent builder for well-formed Ethernet/IPv4 frames.
///
/// Every frame is padded to at least [`MIN_FRAME_LEN`] bytes (the 64-byte
/// minimum frame the paper's measurements use, minus FCS). Checksums are
/// computed so parsed packets verify cleanly.
///
/// ```
/// use pkt::builder::PacketBuilder;
/// let p = PacketBuilder::udp().vlan(3).udp_dst(53).in_port(2).build();
/// assert_eq!(p.in_port, 2);
/// ```
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    eth_src: MacAddr,
    eth_dst: MacAddr,
    vlan: Option<u16>,
    vlan_pcp: u8,
    ipv4_src: Ipv4Addr4,
    ipv4_dst: Ipv4Addr4,
    ttl: u8,
    dscp: u8,
    l4: L4Kind,
    sport: u16,
    dport: u16,
    tcp_flags: TcpFlags,
    raw_proto: u8,
    payload: Vec<u8>,
    in_port: u32,
    pad_to: usize,
}

impl PacketBuilder {
    fn base(l4: L4Kind) -> Self {
        PacketBuilder {
            eth_src: MacAddr::new([0x02, 0, 0, 0, 0, 0x01]),
            eth_dst: MacAddr::new([0x02, 0, 0, 0, 0, 0x02]),
            vlan: None,
            vlan_pcp: 0,
            ipv4_src: Ipv4Addr4::new(10, 0, 0, 1),
            ipv4_dst: Ipv4Addr4::new(10, 0, 0, 2),
            ttl: 64,
            dscp: 0,
            l4,
            sport: 49152,
            dport: 80,
            tcp_flags: TcpFlags::syn_only(),
            raw_proto: 0,
            payload: Vec::new(),
            in_port: 0,
            pad_to: MIN_FRAME_LEN,
        }
    }

    /// Starts a TCP/IPv4 packet.
    pub fn tcp() -> Self {
        Self::base(L4Kind::Tcp)
    }

    /// Starts a UDP/IPv4 packet.
    pub fn udp() -> Self {
        Self::base(L4Kind::Udp)
    }

    /// Starts an ICMP echo-request/IPv4 packet.
    pub fn icmp() -> Self {
        Self::base(L4Kind::Icmp)
    }

    /// Starts a bare IPv4 packet with the given protocol number and no L4
    /// header (the protocol is still visible to `ip_proto` matches).
    pub fn ipv4_proto(proto: u8) -> Self {
        let mut b = Self::base(L4Kind::None);
        b.raw_proto = proto;
        b
    }

    /// Starts an Ethernet-only frame with the given EtherType (no IP header).
    pub fn l2_only(ethertype: u16) -> Packet {
        let mut frame = vec![0u8; MIN_FRAME_LEN];
        EthernetHeader {
            dst: MacAddr::new([0x02, 0, 0, 0, 0, 0x02]),
            src: MacAddr::new([0x02, 0, 0, 0, 0, 0x01]),
            ethertype: EtherType::from_u16(ethertype),
        }
        .write(&mut frame);
        Packet::from_bytes(frame, 0)
    }

    /// Builds an ARP request `who-has target tell sender`.
    pub fn arp_request(sender_mac: MacAddr, sender_ip: Ipv4Addr4, target_ip: Ipv4Addr4) -> Packet {
        let mut frame = vec![0u8; (ETHERNET_HEADER_LEN + ARP_LEN).max(MIN_FRAME_LEN)];
        EthernetHeader {
            dst: MacAddr::BROADCAST,
            src: sender_mac,
            ethertype: EtherType::Arp,
        }
        .write(&mut frame);
        ArpPacket {
            op: ArpOp::Request,
            sender_mac,
            sender_ip,
            target_mac: MacAddr::ZERO,
            target_ip,
        }
        .write(&mut frame[ETHERNET_HEADER_LEN..]);
        Packet::from_bytes(frame, 0)
    }

    /// Sets the source MAC address.
    pub fn eth_src(mut self, mac: impl Into<MacAddr>) -> Self {
        self.eth_src = mac.into();
        self
    }

    /// Sets the destination MAC address.
    pub fn eth_dst(mut self, mac: impl Into<MacAddr>) -> Self {
        self.eth_dst = mac.into();
        self
    }

    /// Adds an 802.1Q tag with the given VID.
    pub fn vlan(mut self, vid: u16) -> Self {
        self.vlan = Some(vid);
        self
    }

    /// Sets the VLAN priority code point (only meaningful with [`Self::vlan`]).
    pub fn vlan_pcp(mut self, pcp: u8) -> Self {
        self.vlan_pcp = pcp;
        self
    }

    /// Sets the IPv4 source address.
    pub fn ipv4_src(mut self, addr: impl Into<Ipv4Addr4>) -> Self {
        self.ipv4_src = addr.into();
        self
    }

    /// Sets the IPv4 destination address.
    pub fn ipv4_dst(mut self, addr: impl Into<Ipv4Addr4>) -> Self {
        self.ipv4_dst = addr.into();
        self
    }

    /// Sets the IP TTL.
    pub fn ttl(mut self, ttl: u8) -> Self {
        self.ttl = ttl;
        self
    }

    /// Sets the DSCP code point.
    pub fn dscp(mut self, dscp: u8) -> Self {
        self.dscp = dscp;
        self
    }

    /// Sets the TCP source port.
    pub fn tcp_src(mut self, port: u16) -> Self {
        self.sport = port;
        self
    }

    /// Sets the TCP destination port.
    pub fn tcp_dst(mut self, port: u16) -> Self {
        self.dport = port;
        self
    }

    /// Sets the UDP source port.
    pub fn udp_src(mut self, port: u16) -> Self {
        self.sport = port;
        self
    }

    /// Sets the UDP destination port.
    pub fn udp_dst(mut self, port: u16) -> Self {
        self.dport = port;
        self
    }

    /// Sets the TCP flags (defaults to a bare SYN).
    pub fn tcp_flags(mut self, flags: TcpFlags) -> Self {
        self.tcp_flags = flags;
        self
    }

    /// Appends payload bytes after the transport header.
    pub fn payload(mut self, data: &[u8]) -> Self {
        self.payload = data.to_vec();
        self
    }

    /// Sets the ingress port recorded on the built [`Packet`].
    pub fn in_port(mut self, port: u32) -> Self {
        self.in_port = port;
        self
    }

    /// Sets the minimum frame size the packet is padded to (default 60).
    pub fn pad_to(mut self, len: usize) -> Self {
        self.pad_to = len;
        self
    }

    /// Builds the frame.
    pub fn build(self) -> Packet {
        let l4_len = match self.l4 {
            L4Kind::Tcp => TCP_MIN_HEADER_LEN,
            L4Kind::Udp => UDP_HEADER_LEN,
            L4Kind::Icmp => crate::icmp::ICMP_HEADER_LEN,
            L4Kind::None => 0,
        };
        let vlan_len = if self.vlan.is_some() { VLAN_TAG_LEN } else { 0 };
        let ip_total = IPV4_MIN_HEADER_LEN + l4_len + self.payload.len();
        let frame_len = (ETHERNET_HEADER_LEN + vlan_len + ip_total).max(self.pad_to);
        let mut frame = vec![0u8; frame_len];

        // L2
        let outer_type = if self.vlan.is_some() {
            EtherType::Vlan
        } else {
            EtherType::Ipv4
        };
        EthernetHeader {
            dst: self.eth_dst,
            src: self.eth_src,
            ethertype: outer_type,
        }
        .write(&mut frame);
        let mut offset = ETHERNET_HEADER_LEN;
        if let Some(vid) = self.vlan {
            VlanTag {
                pcp: self.vlan_pcp,
                dei: false,
                vid,
                inner_ethertype: EtherType::Ipv4,
            }
            .write(&mut frame[offset..]);
            offset += VLAN_TAG_LEN;
        }

        // L3
        let proto = match self.l4 {
            L4Kind::Tcp => IpProto::Tcp,
            L4Kind::Udp => IpProto::Udp,
            L4Kind::Icmp => IpProto::Icmp,
            L4Kind::None => IpProto::Other(self.raw_proto),
        };
        Ipv4Header {
            header_len: IPV4_MIN_HEADER_LEN,
            dscp: self.dscp,
            ecn: 0,
            total_len: ip_total as u16,
            identification: 0,
            ttl: self.ttl,
            proto,
            checksum: 0,
            src: self.ipv4_src,
            dst: self.ipv4_dst,
        }
        .write(&mut frame[offset..]);
        let l4_offset = offset + IPV4_MIN_HEADER_LEN;

        // L4 + payload
        match self.l4 {
            L4Kind::Tcp => {
                TcpHeader {
                    src_port: self.sport,
                    dst_port: self.dport,
                    seq: 1,
                    ack: 0,
                    header_len: TCP_MIN_HEADER_LEN,
                    flags: self.tcp_flags,
                    window: 65535,
                    checksum: 0,
                }
                .write(&mut frame[l4_offset..]);
            }
            L4Kind::Udp => {
                UdpHeader {
                    src_port: self.sport,
                    dst_port: self.dport,
                    length: (UDP_HEADER_LEN + self.payload.len()) as u16,
                    checksum: 0,
                }
                .write(&mut frame[l4_offset..]);
            }
            L4Kind::Icmp => {
                IcmpHeader {
                    icmp_type: IcmpType::EchoRequest,
                    code: 0,
                    checksum: 0,
                }
                .write(&mut frame[l4_offset..]);
            }
            L4Kind::None => {}
        }
        let payload_offset = l4_offset + l4_len;
        frame[payload_offset..payload_offset + self.payload.len()].copy_from_slice(&self.payload);

        // Transport checksum over the segment (header + payload).
        if matches!(self.l4, L4Kind::Tcp | L4Kind::Udp) {
            let seg_end = payload_offset + self.payload.len();
            let csum = checksum::pseudo_header_checksum(
                self.ipv4_src.octets(),
                self.ipv4_dst.octets(),
                proto.to_u8(),
                &frame[l4_offset..seg_end],
            );
            let csum_off = match self.l4 {
                L4Kind::Tcp => l4_offset + 16,
                _ => l4_offset + 6,
            };
            frame[csum_off..csum_off + 2].copy_from_slice(&csum.to_be_bytes());
        }

        Packet::from_bytes(frame, self.in_port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, ParseDepth};

    #[test]
    fn tcp_packet_is_well_formed() {
        let pkt = PacketBuilder::tcp()
            .ipv4_src([198, 51, 100, 1])
            .ipv4_dst([192, 0, 2, 1])
            .tcp_dst(8080)
            .build();
        assert!(pkt.len() >= MIN_FRAME_LEN);
        assert!(Ipv4Header::verify_checksum(
            &pkt.data()[ETHERNET_HEADER_LEN..]
        ));
        let h = parse(pkt.data(), ParseDepth::L4);
        assert_eq!(h.tcp_dst(pkt.data()), Some(8080));
        assert_eq!(
            h.ipv4_src(pkt.data()),
            Some(Ipv4Addr4::new(198, 51, 100, 1))
        );
    }

    #[test]
    fn udp_with_payload() {
        let pkt = PacketBuilder::udp()
            .udp_src(111)
            .udp_dst(222)
            .payload(&[1, 2, 3, 4, 5])
            .build();
        let h = parse(pkt.data(), ParseDepth::L4);
        assert_eq!(h.udp_src(pkt.data()), Some(111));
        assert_eq!(h.udp_dst(pkt.data()), Some(222));
    }

    #[test]
    fn icmp_packet_parses() {
        let pkt = PacketBuilder::icmp().build();
        let h = parse(pkt.data(), ParseDepth::L4);
        assert!(h.mask.contains(crate::parser::ProtoMask::ICMP));
    }

    #[test]
    fn arp_request_parses() {
        let pkt = PacketBuilder::arp_request(
            MacAddr::new([2, 0, 0, 0, 0, 9]),
            Ipv4Addr4::new(10, 0, 0, 9),
            Ipv4Addr4::new(10, 0, 0, 1),
        );
        let h = parse(pkt.data(), ParseDepth::L3);
        assert!(h.mask.contains(crate::parser::ProtoMask::ARP));
        let arp = ArpPacket::parse(&pkt.data()[ETHERNET_HEADER_LEN..]).unwrap();
        assert_eq!(arp.target_ip, Ipv4Addr4::new(10, 0, 0, 1));
    }

    #[test]
    fn ipv4_proto_only_sets_ip_proto() {
        let pkt = PacketBuilder::ipv4_proto(47).build(); // GRE
        let h = parse(pkt.data(), ParseDepth::L4);
        assert!(h.has_ipv4());
        assert_eq!(h.ip_proto, 47);
        assert!(!h.has_tcp() && !h.has_udp());
    }

    #[test]
    fn padding_respected() {
        let pkt = PacketBuilder::udp().pad_to(128).build();
        assert_eq!(pkt.len(), 128);
    }

    #[test]
    fn vlan_offsets_shift() {
        let tagged = PacketBuilder::tcp().vlan(42).vlan_pcp(3).build();
        let h = parse(tagged.data(), ParseDepth::L4);
        assert_eq!(h.vlan_vid, 42);
        assert_eq!(h.vlan_pcp, 3);
        assert_eq!(h.l3_offset as usize, ETHERNET_HEADER_LEN + VLAN_TAG_LEN);
        assert!(h.has_tcp());
    }
}
