//! Owned packet buffer.

use bytes::{Bytes, BytesMut};

use crate::MAX_FRAME_LEN;

/// An owned packet, as carried through ports, queues and datapaths.
///
/// A `Packet` bundles the raw frame bytes with the receive-side metadata that
/// OpenFlow exposes as pipeline match fields (`in_port`). The buffer is a
/// [`BytesMut`] so that action implementations can rewrite header fields in
/// place (set-field, NAT, TTL decrement) without reallocating, and cheap
/// cloning is available for flooding.
#[derive(Debug, Clone)]
pub struct Packet {
    data: BytesMut,
    /// Ingress port the packet was received on (OpenFlow `in_port`).
    pub in_port: u32,
    /// RSS hash stamped by the dispatch stage (a NIC delivers this in the RX
    /// descriptor; the software dispatcher is that stage here). `None` until
    /// stamped. Advisory: consumers must confirm with full-key equality, so
    /// a stamp left stale by a header rewrite can cost an optimization but
    /// never change a verdict.
    rss_hash: Option<u64>,
}

/// Packet identity is the frame bytes plus the ingress port; the carried RSS
/// stamp is transport metadata (like a NIC RX-descriptor field), not part of
/// what the packet *is*.
impl PartialEq for Packet {
    fn eq(&self, other: &Self) -> bool {
        self.in_port == other.in_port && self.data == other.data
    }
}

impl Eq for Packet {}

impl Packet {
    /// Wraps the given frame bytes, received on `in_port`.
    ///
    /// # Panics
    /// Panics if the frame exceeds [`MAX_FRAME_LEN`]; the traffic generators
    /// and builders never produce such frames, so an oversized frame indicates
    /// a harness bug rather than a recoverable condition.
    pub fn from_bytes(data: impl AsRef<[u8]>, in_port: u32) -> Self {
        let data = data.as_ref();
        assert!(
            data.len() <= MAX_FRAME_LEN,
            "frame of {} bytes exceeds MAX_FRAME_LEN",
            data.len()
        );
        Packet {
            data: BytesMut::from(data),
            in_port,
            rss_hash: None,
        }
    }

    /// Creates an all-zero frame of `len` bytes — handy padding for tests.
    pub fn zeroed(len: usize, in_port: u32) -> Self {
        Packet::from_bytes(vec![0u8; len], in_port)
    }

    /// The frame contents.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Stamps the receive-side RSS hash (dispatch stage only).
    pub fn set_rss_hash(&mut self, hash: u64) {
        self.rss_hash = Some(hash);
    }

    /// The carried RSS hash, if the dispatch stage stamped one.
    pub fn rss_hash(&self) -> Option<u64> {
        self.rss_hash
    }

    /// Mutable access to the frame contents, used by packet-rewriting actions.
    pub fn data_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Frame length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the frame is empty (never the case for generated traffic).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes the buffer into an immutable [`Bytes`] handle, e.g. to hand the
    /// packet to the controller in a PacketIn message.
    pub fn freeze(self) -> (Bytes, u32) {
        (self.data.freeze(), self.in_port)
    }

    /// Inserts `extra` bytes at `offset`, shifting the tail. Used by the
    /// push-VLAN action. Panics if the result would exceed [`MAX_FRAME_LEN`].
    pub fn insert(&mut self, offset: usize, extra: &[u8]) {
        assert!(
            self.len() + extra.len() <= MAX_FRAME_LEN,
            "insert overflows frame"
        );
        let tail = self.data.split_off(offset);
        self.data.extend_from_slice(extra);
        self.data.unsplit(tail);
    }

    /// Removes `count` bytes at `offset`, shifting the tail down. Used by the
    /// pop-VLAN action.
    ///
    /// # Panics
    /// Panics if `offset + count` exceeds the frame length.
    pub fn remove(&mut self, offset: usize, count: usize) {
        assert!(offset + count <= self.len(), "remove out of bounds");
        let mut tail = self.data.split_off(offset);
        let _ = tail.split_to(count);
        self.data.unsplit(tail);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let pkt = Packet::from_bytes([1u8, 2, 3, 4], 7);
        assert_eq!(pkt.data(), &[1, 2, 3, 4]);
        assert_eq!(pkt.len(), 4);
        assert_eq!(pkt.in_port, 7);
        assert!(!pkt.is_empty());
    }

    #[test]
    fn mutation_in_place() {
        let mut pkt = Packet::zeroed(10, 0);
        pkt.data_mut()[3] = 0xaa;
        assert_eq!(pkt.data()[3], 0xaa);
    }

    #[test]
    fn insert_and_remove_preserve_surroundings() {
        let mut pkt = Packet::from_bytes([1u8, 2, 3, 4, 5, 6], 0);
        pkt.insert(2, &[0xaa, 0xbb]);
        assert_eq!(pkt.data(), &[1, 2, 0xaa, 0xbb, 3, 4, 5, 6]);
        pkt.remove(2, 2);
        assert_eq!(pkt.data(), &[1, 2, 3, 4, 5, 6]);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_FRAME_LEN")]
    fn oversized_frame_panics() {
        let _ = Packet::zeroed(crate::MAX_FRAME_LEN + 1, 0);
    }

    #[test]
    fn rss_stamp_is_metadata_not_identity() {
        let mut a = Packet::from_bytes([1u8, 2, 3], 0);
        let b = Packet::from_bytes([1u8, 2, 3], 0);
        assert_eq!(a.rss_hash(), None);
        a.set_rss_hash(0xdead_beef);
        assert_eq!(a.rss_hash(), Some(0xdead_beef));
        assert_eq!(a, b, "the stamp does not change packet identity");
        assert_eq!(a.clone().rss_hash(), Some(0xdead_beef), "clones carry it");
    }

    #[test]
    fn freeze_returns_bytes_and_port() {
        let pkt = Packet::from_bytes([9u8, 8, 7], 3);
        let (bytes, port) = pkt.freeze();
        assert_eq!(&bytes[..], &[9, 8, 7]);
        assert_eq!(port, 3);
    }
}
