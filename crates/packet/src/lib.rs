//! # pkt — packet substrate for the ESWITCH reproduction
//!
//! This crate provides everything the switch datapaths need to know about
//! packets: typed header views for Ethernet, 802.1Q VLAN, ARP, IPv4, IPv6,
//! TCP, UDP and ICMP, an owned [`Packet`] buffer, a layered [`parser`]
//! producing the [`ParsedHeaders`] representation the ESWITCH parser
//! templates operate on, and a [`builder`] for constructing well-formed
//! packets in tests, examples and the traffic generators.
//!
//! The design mirrors the role the paper assigns to packet parsing: the
//! ESWITCH parser *templates* (§3.1) are incremental — the L3 parser composes
//! the L2 parser, the L4 parser composes both — so the parse result exposes
//! per-layer offsets and a protocol bitmask rather than a fully decoded
//! struct. Decoded header views are still available for tests and for the
//! action implementations that rewrite header fields.
//!
//! ```
//! use pkt::builder::PacketBuilder;
//! use pkt::parser::{parse, ParseDepth};
//!
//! let packet = PacketBuilder::tcp()
//!     .eth_src([0, 1, 2, 3, 4, 5])
//!     .ipv4_dst([192, 0, 2, 1])
//!     .tcp_dst(80)
//!     .build();
//! let headers = parse(packet.data(), ParseDepth::L4);
//! assert!(headers.has_tcp());
//! assert_eq!(headers.tcp_dst(packet.data()), Some(80));
//! ```

pub mod arp;
pub mod builder;
pub mod checksum;
pub mod ethernet;
pub mod icmp;
pub mod ipv4;
pub mod ipv6;
pub mod mac;
pub mod packet;
pub mod parser;
pub mod tcp;
pub mod udp;
pub mod vlan;

pub use ethernet::{EtherType, EthernetHeader, ETHERNET_HEADER_LEN};
pub use ipv4::{IpProto, Ipv4Addr4, Ipv4Header, IPV4_MIN_HEADER_LEN};
pub use mac::MacAddr;
pub use packet::Packet;
pub use parser::{parse, ParseDepth, ParsedHeaders, ProtoMask};
pub use tcp::{TcpFlags, TcpHeader, TCP_MIN_HEADER_LEN};
pub use udp::{UdpHeader, UDP_HEADER_LEN};
pub use vlan::{VlanTag, VLAN_TAG_LEN};

/// Minimum Ethernet frame size used by the traffic generators (the paper
/// evaluates with 64-byte packets; 60 bytes excluding the 4-byte FCS).
pub const MIN_FRAME_LEN: usize = 60;

/// Maximum frame size the fixed-capacity [`Packet`] buffer supports.
/// Mirrors a standard 1500-byte MTU frame plus Ethernet and VLAN overhead.
pub const MAX_FRAME_LEN: usize = 1522;
