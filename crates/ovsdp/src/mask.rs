//! Megaflow masks: which fields (and which bits of them) a cached megaflow
//! matches on.

use std::collections::BTreeMap;

use openflow::{Field, FieldValue, FlowKey};

/// A per-field wildcard mask, accumulated by the slow path while it decides a
/// packet's fate.
///
/// A field absent from the map is fully wildcarded; a field present with mask
/// `m` participates in the megaflow with exactly the bits of `m`. The OVS
/// term for building this up is *un-wildcarding*.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FieldMask {
    bits: BTreeMap<Field, FieldValue>,
}

impl FieldMask {
    /// The fully wildcarded mask (matches everything).
    pub fn wildcard_all() -> Self {
        FieldMask::default()
    }

    /// Un-wildcards `mask` bits of `field` (ORs into any existing mask).
    pub fn unwildcard(&mut self, field: Field, mask: FieldValue) {
        if mask == 0 {
            return;
        }
        *self.bits.entry(field).or_insert(0) |= mask & field.full_mask();
    }

    /// Un-wildcards the full width of `field`.
    pub fn unwildcard_exact(&mut self, field: Field) {
        self.unwildcard(field, field.full_mask());
    }

    /// Merges another mask into this one.
    pub fn merge(&mut self, other: &FieldMask) {
        for (field, mask) in &other.bits {
            self.unwildcard(*field, *mask);
        }
    }

    /// The per-field masks, sorted by field.
    pub fn fields(&self) -> impl Iterator<Item = (Field, FieldValue)> + '_ {
        self.bits.iter().map(|(f, m)| (*f, *m))
    }

    /// The mask on one field (0 = fully wildcarded).
    pub fn mask_of(&self, field: Field) -> FieldValue {
        self.bits.get(&field).copied().unwrap_or(0)
    }

    /// Number of fields with at least one un-wildcarded bit.
    pub fn field_count(&self) -> usize {
        self.bits.len()
    }

    /// True when nothing is un-wildcarded.
    pub fn is_wildcard_all(&self) -> bool {
        self.bits.is_empty()
    }

    /// Total number of un-wildcarded bits across all fields — a measure of
    /// megaflow specificity (more bits → more megaflows needed to cover the
    /// same traffic).
    pub fn unwildcarded_bits(&self) -> u32 {
        self.bits.values().map(|m| m.count_ones()).sum()
    }

    /// Projects a flow key onto this mask, producing the hashable masked key
    /// stored in (and looked up against) the megaflow cache.
    ///
    /// Fields the packet does not carry are projected as a fixed sentinel so
    /// that "field absent" and "field == 0" cannot collide.
    pub fn project(&self, key: &FlowKey) -> MaskedKey {
        let values = self
            .bits
            .iter()
            .map(|(field, mask)| match key.get(*field) {
                Some(v) => v & mask,
                None => ABSENT_SENTINEL,
            })
            .collect();
        MaskedKey { values }
    }
}

/// Sentinel distinguishing "field not present in packet" from a zero value.
/// `u128::MAX` cannot result from masking a real value with a field-width
/// mask because no modelled field is 128 bits of all-ones in practice.
const ABSENT_SENTINEL: FieldValue = FieldValue::MAX;

/// A flow key projected through a [`FieldMask`] — the megaflow hash key.
///
/// Equality/hash only make sense between keys projected through the *same*
/// mask; the megaflow cache guarantees that by keying each subtable by its
/// mask.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MaskedKey {
    values: Vec<FieldValue>,
}

impl MaskedKey {
    /// The projected values, in the mask's field order.
    pub fn values(&self) -> &[FieldValue] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkt::builder::PacketBuilder;

    fn key(port: u16) -> FlowKey {
        FlowKey::extract(&PacketBuilder::tcp().tcp_dst(port).build())
    }

    #[test]
    fn unwildcard_accumulates_bits() {
        let mut m = FieldMask::wildcard_all();
        assert!(m.is_wildcard_all());
        m.unwildcard(Field::TcpDst, 0x00f0);
        m.unwildcard(Field::TcpDst, 0x000f);
        m.unwildcard_exact(Field::IpProto);
        assert_eq!(m.mask_of(Field::TcpDst), 0x00ff);
        assert_eq!(m.mask_of(Field::IpProto), 0xff);
        assert_eq!(m.mask_of(Field::Ipv4Dst), 0);
        assert_eq!(m.field_count(), 2);
        assert_eq!(m.unwildcarded_bits(), 16);
    }

    #[test]
    fn merge_unions_masks() {
        let mut a = FieldMask::wildcard_all();
        a.unwildcard(Field::TcpDst, 0xff00);
        let mut b = FieldMask::wildcard_all();
        b.unwildcard(Field::TcpDst, 0x00ff);
        b.unwildcard_exact(Field::InPort);
        a.merge(&b);
        assert_eq!(a.mask_of(Field::TcpDst), 0xffff);
        assert_eq!(a.mask_of(Field::InPort), Field::InPort.full_mask());
    }

    #[test]
    fn projection_respects_mask_bits() {
        let mut m = FieldMask::wildcard_all();
        m.unwildcard(Field::TcpDst, 0xfff0); // ignore the low 4 bits
        let a = m.project(&key(80)); // 0x50
        let b = m.project(&key(85)); // 0x55 -> same under the mask
        let c = m.project(&key(96)); // 0x60 -> different
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn absent_field_distinct_from_zero() {
        let mut m = FieldMask::wildcard_all();
        m.unwildcard_exact(Field::UdpDst);
        let tcp_key = m.project(&key(0)); // TCP packet: udp_dst absent
        let udp_pkt = PacketBuilder::udp().udp_dst(0).build();
        let udp_key = m.project(&FlowKey::extract(&udp_pkt)); // present, == 0
        assert_ne!(tcp_key, udp_key);
    }

    #[test]
    fn wildcard_all_projects_to_empty_key() {
        let m = FieldMask::wildcard_all();
        assert_eq!(m.project(&key(80)), m.project(&key(12345)));
        assert!(m.project(&key(80)).values().is_empty());
    }
}
