//! Megaflow masks: which fields (and which bits of them) a cached megaflow
//! matches on.
//!
//! The representation is deliberately flat: a bitset of present fields plus a
//! dense `[FieldValue; Field::COUNT]` array indexed by [`Field::index`].
//! Projection — the per-subtable operation of tuple space search — is then a
//! branch-light loop over the set bits writing into a caller-provided stack
//! buffer, with no tree walk and no heap allocation (the previous
//! `BTreeMap`/`Vec` representation allocated one `Vec` per subtable probed).

use std::borrow::Borrow;

use openflow::{Field, FieldValue, FlowKey};

/// A per-field wildcard mask, accumulated by the slow path while it decides a
/// packet's fate.
///
/// A field absent from the bitset is fully wildcarded; a field present with
/// mask `m` participates in the megaflow with exactly the bits of `m`. The
/// OVS term for building this up is *un-wildcarding*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldMask {
    /// Bit `Field::index(f)` set ⇔ field `f` has at least one un-wildcarded
    /// bit. Invariant: `present` bit set ⇔ `masks[i] != 0`.
    present: u64,
    masks: [FieldValue; Field::COUNT],
}

impl Default for FieldMask {
    fn default() -> Self {
        FieldMask {
            present: 0,
            masks: [0; Field::COUNT],
        }
    }
}

impl FieldMask {
    /// Upper bound on the number of fields a projection can produce — the
    /// size callers give their stack buffers.
    pub const MAX_FIELDS: usize = Field::COUNT;

    /// The fully wildcarded mask (matches everything).
    pub fn wildcard_all() -> Self {
        FieldMask::default()
    }

    /// Un-wildcards `mask` bits of `field` (ORs into any existing mask).
    #[inline]
    pub fn unwildcard(&mut self, field: Field, mask: FieldValue) {
        let mask = mask & field.full_mask();
        if mask == 0 {
            return;
        }
        let i = field.index();
        self.present |= 1u64 << i;
        self.masks[i] |= mask;
    }

    /// Un-wildcards the full width of `field`.
    pub fn unwildcard_exact(&mut self, field: Field) {
        self.unwildcard(field, field.full_mask());
    }

    /// Merges another mask into this one.
    pub fn merge(&mut self, other: &FieldMask) {
        self.present |= other.present;
        let mut bits = other.present;
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            self.masks[i] |= other.masks[i];
        }
    }

    /// The per-field masks, in dense field order.
    pub fn fields(&self) -> impl Iterator<Item = (Field, FieldValue)> + '_ {
        BitIter(self.present).map(|i| (Field::from_index(i), self.masks[i]))
    }

    /// The mask on one field (0 = fully wildcarded).
    #[inline]
    pub fn mask_of(&self, field: Field) -> FieldValue {
        self.masks[field.index()]
    }

    /// Number of fields with at least one un-wildcarded bit.
    pub fn field_count(&self) -> usize {
        self.present.count_ones() as usize
    }

    /// True when nothing is un-wildcarded.
    pub fn is_wildcard_all(&self) -> bool {
        self.present == 0
    }

    /// Total number of un-wildcarded bits across all fields — a measure of
    /// megaflow specificity (more bits → more megaflows needed to cover the
    /// same traffic).
    pub fn unwildcarded_bits(&self) -> u32 {
        self.fields().map(|(_, m)| m.count_ones()).sum()
    }

    /// Projects a flow key onto this mask into a caller-provided buffer,
    /// returning how many values were written. This is the zero-allocation
    /// subtable probe: the written prefix of `out` is the lookup key.
    ///
    /// Fields the packet does not carry are projected as a fixed sentinel so
    /// that "field absent" and "field == 0" cannot collide.
    #[inline]
    pub fn project_into(&self, key: &FlowKey, out: &mut [FieldValue; Self::MAX_FIELDS]) -> usize {
        let mut n = 0;
        let mut bits = self.present;
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            out[n] = match key.get(Field::from_index(i)) {
                Some(v) => v & self.masks[i],
                None => ABSENT_SENTINEL,
            };
            n += 1;
        }
        n
    }

    /// Projects a flow key onto this mask, producing the owned hashable
    /// masked key stored in the megaflow cache. Allocates; install paths
    /// only — lookups use [`FieldMask::project_into`].
    pub fn project(&self, key: &FlowKey) -> MaskedKey {
        let mut buf = [0; Self::MAX_FIELDS];
        let n = self.project_into(key, &mut buf);
        MaskedKey {
            values: buf[..n].to_vec().into_boxed_slice(),
        }
    }

    /// Proves, if possible, that no packet covered by a megaflow with this
    /// mask and the projected `values` can satisfy `m` — the delta-aware
    /// invalidation predicate. Returns true only when disjointness is
    /// *provable*; an entry this returns false for must be flushed when a
    /// rule matching `m` is added, modified or removed.
    ///
    /// A megaflow covers exactly the packets whose key, projected through the
    /// mask, equals `values`. For each field the rule matches:
    ///
    /// * if the mask pins the field and the stored value is the absent
    ///   sentinel, every covered packet lacks the field — and a match on an
    ///   absent field always fails, so the entry is disjoint from the rule;
    /// * if the mask pins bits the rule also matches and the pinned value
    ///   disagrees with the rule's value on any common bit, no covered packet
    ///   can match the rule;
    /// * otherwise this field proves nothing (covered packets vary on the
    ///   rule's bits) and the next field is consulted.
    pub fn disjoint_from(
        &self,
        values: &[FieldValue],
        m: &openflow::flow_match::FlowMatch,
    ) -> bool {
        for mf in m.fields() {
            let i = mf.field.index();
            if self.present & (1u64 << i) == 0 {
                continue; // field fully wildcarded here: proves nothing
            }
            let rank = (self.present & ((1u64 << i) - 1)).count_ones() as usize;
            let value = values[rank];
            if value == ABSENT_SENTINEL {
                return true; // covered packets lack the field: cannot match
            }
            let common = self.masks[i] & mf.mask;
            if common != 0 && (value & common) != (mf.value & common) {
                return true; // pinned bits contradict the rule's value
            }
        }
        false
    }
}

/// Iterator over the set bit indices of a `u64`.
struct BitIter(u64);

impl Iterator for BitIter {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let i = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(i)
    }
}

/// Sentinel distinguishing "field not present in packet" from a zero value.
/// `u128::MAX` cannot result from masking a real value with a field-width
/// mask because no modelled field is 128 bits of all-ones in practice.
const ABSENT_SENTINEL: FieldValue = FieldValue::MAX;

/// A flow key projected through a [`FieldMask`] — the megaflow hash key.
///
/// Equality/hash only make sense between keys projected through the *same*
/// mask; the megaflow cache guarantees that by keying each subtable by its
/// mask. Hashing delegates to the value slice, and `Borrow<[FieldValue]>`
/// lets subtables be probed with a borrowed stack buffer (from
/// [`FieldMask::project_into`]) without materialising a `MaskedKey`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MaskedKey {
    values: Box<[FieldValue]>,
}

impl MaskedKey {
    /// The projected values, in the mask's dense field order.
    pub fn values(&self) -> &[FieldValue] {
        &self.values
    }
}

impl Borrow<[FieldValue]> for MaskedKey {
    fn borrow(&self) -> &[FieldValue] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkt::builder::PacketBuilder;

    fn key(port: u16) -> FlowKey {
        FlowKey::extract(&PacketBuilder::tcp().tcp_dst(port).build())
    }

    #[test]
    fn unwildcard_accumulates_bits() {
        let mut m = FieldMask::wildcard_all();
        assert!(m.is_wildcard_all());
        m.unwildcard(Field::TcpDst, 0x00f0);
        m.unwildcard(Field::TcpDst, 0x000f);
        m.unwildcard_exact(Field::IpProto);
        assert_eq!(m.mask_of(Field::TcpDst), 0x00ff);
        assert_eq!(m.mask_of(Field::IpProto), 0xff);
        assert_eq!(m.mask_of(Field::Ipv4Dst), 0);
        assert_eq!(m.field_count(), 2);
        assert_eq!(m.unwildcarded_bits(), 16);
    }

    #[test]
    fn merge_unions_masks() {
        let mut a = FieldMask::wildcard_all();
        a.unwildcard(Field::TcpDst, 0xff00);
        let mut b = FieldMask::wildcard_all();
        b.unwildcard(Field::TcpDst, 0x00ff);
        b.unwildcard_exact(Field::InPort);
        a.merge(&b);
        assert_eq!(a.mask_of(Field::TcpDst), 0xffff);
        assert_eq!(a.mask_of(Field::InPort), Field::InPort.full_mask());
    }

    #[test]
    fn fields_iterates_in_dense_order() {
        let mut m = FieldMask::wildcard_all();
        m.unwildcard_exact(Field::TcpDst);
        m.unwildcard_exact(Field::InPort);
        m.unwildcard_exact(Field::Ipv4Dst);
        let fields: Vec<Field> = m.fields().map(|(f, _)| f).collect();
        assert_eq!(fields, vec![Field::InPort, Field::Ipv4Dst, Field::TcpDst]);
    }

    #[test]
    fn projection_respects_mask_bits() {
        let mut m = FieldMask::wildcard_all();
        m.unwildcard(Field::TcpDst, 0xfff0); // ignore the low 4 bits
        let a = m.project(&key(80)); // 0x50
        let b = m.project(&key(85)); // 0x55 -> same under the mask
        let c = m.project(&key(96)); // 0x60 -> different
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn project_into_matches_owned_projection() {
        let mut m = FieldMask::wildcard_all();
        m.unwildcard_exact(Field::TcpDst);
        m.unwildcard(Field::Ipv4Dst, 0xffff_ff00);
        let k = key(443);
        let owned = m.project(&k);
        let mut buf = [0; FieldMask::MAX_FIELDS];
        let n = m.project_into(&k, &mut buf);
        assert_eq!(owned.values(), &buf[..n]);
    }

    #[test]
    fn absent_field_distinct_from_zero() {
        let mut m = FieldMask::wildcard_all();
        m.unwildcard_exact(Field::UdpDst);
        let tcp_key = m.project(&key(0)); // TCP packet: udp_dst absent
        let udp_pkt = PacketBuilder::udp().udp_dst(0).build();
        let udp_key = m.project(&FlowKey::extract(&udp_pkt)); // present, == 0
        assert_ne!(tcp_key, udp_key);
    }

    #[test]
    fn wildcard_all_projects_to_empty_key() {
        let m = FieldMask::wildcard_all();
        assert_eq!(m.project(&key(80)), m.project(&key(12345)));
        assert!(m.project(&key(80)).values().is_empty());
    }
}
