//! Miniflow-style compact flow keys.
//!
//! OVS does not hash `struct flow` (large, mostly-empty) on the fast path; it
//! builds a `miniflow` — a presence bitmap plus the packed values of only the
//! fields the packet actually carries — and computes the key's hash once,
//! during extraction. [`MiniKey`] is that structure for this reproduction:
//! the microflow cache keys on it, so an EMC probe is one precomputed-hash
//! index plus one compact compare, instead of SipHashing a 27-field
//! [`FlowKey`] per lookup.

use netdev::fx_mix;
use openflow::flow_match::FlowMatch;
use openflow::{Field, FieldValue, FlowKey};

/// Number of [`FlowKey`] fields a [`MiniKey`] packs: the six always-present
/// pipeline/L2 fields plus the twenty optional ones, in a fixed order. Real
/// packets populate far fewer (a VLAN TCP/IPv4 frame packs 15), but keys
/// mutated through `FlowKey::set` can populate any subset.
const MINI_MAX: usize = 26;

/// A compact exact-match key: presence bitmap + packed present values +
/// precomputed FxHash.
#[derive(Debug, Clone, Copy)]
pub struct MiniKey {
    /// Precomputed hash over (presence bitmap, packed values).
    hash: u64,
    /// Bit `i` set ⇔ the `i`-th key field (in the fixed packing order) is
    /// present; its value then appears in `values` after all lower-index
    /// present fields.
    present: u32,
    /// Number of packed values (`present.count_ones()`).
    n: u8,
    values: [FieldValue; MINI_MAX],
}

impl MiniKey {
    /// Builds the compact key (and its hash) from an extracted flow key.
    /// Allocation-free; this is the once-per-packet extraction cost.
    pub fn from_flow(key: &FlowKey) -> Self {
        let mut mini = MiniKey {
            hash: 0,
            present: 0,
            n: 0,
            values: [0; MINI_MAX],
        };
        let mut bit = 0u32;
        // Two independent mix lanes halve the latency of the (serially
        // dependent) multiply chain; they are folded together at the end.
        let mut lane0 = 0u64;
        let mut lane1 = 0x9e37_79b9_7f4a_7c15u64;
        macro_rules! push {
            ($value:expr) => {{
                let v: FieldValue = $value;
                mini.present |= 1 << bit;
                mini.values[usize::from(mini.n)] = v;
                mini.n += 1;
                // The high word is nonzero only for IPv6 addresses; skipping
                // the zero mix shortens the multiply chain for typical keys.
                // Equality compares the full values, so a constructed
                // collision costs a compare, never a wrong answer.
                if bit % 2 == 0 {
                    lane0 = fx_mix(lane0, v as u64);
                } else {
                    lane1 = fx_mix(lane1, v as u64);
                }
                let high = (v >> 64) as u64;
                if high != 0 {
                    lane1 = fx_mix(lane1, high);
                }
                bit += 1;
            }};
        }
        macro_rules! push_opt {
            ($value:expr) => {{
                match $value {
                    Some(v) => push!(FieldValue::from(v)),
                    None => bit += 1,
                }
            }};
        }
        push!(FieldValue::from(key.in_port));
        push!(FieldValue::from(key.metadata));
        push!(FieldValue::from(key.tunnel_id));
        push!(FieldValue::from(key.eth_dst));
        push!(FieldValue::from(key.eth_src));
        push!(FieldValue::from(key.eth_type));
        push_opt!(key.vlan_vid);
        push_opt!(key.vlan_pcp);
        push_opt!(key.ip_dscp);
        push_opt!(key.ip_ecn);
        push_opt!(key.ip_proto);
        push_opt!(key.ipv4_src);
        push_opt!(key.ipv4_dst);
        push_opt!(key.ipv6_src);
        push_opt!(key.ipv6_dst);
        push_opt!(key.tcp_src);
        push_opt!(key.tcp_dst);
        push_opt!(key.udp_src);
        push_opt!(key.udp_dst);
        push_opt!(key.icmpv4_type);
        push_opt!(key.icmpv4_code);
        push_opt!(key.arp_op);
        push_opt!(key.arp_spa);
        push_opt!(key.arp_tpa);
        push_opt!(key.arp_sha);
        push_opt!(key.arp_tha);
        debug_assert_eq!(bit as usize, MINI_MAX);
        // Fold the lanes and the presence bitmap in so "field absent" and
        // "field zero" cannot hash alike.
        mini.hash = fx_mix(fx_mix(lane0, lane1), u64::from(mini.present));
        mini
    }

    /// A cheap grouping hash over the main flow discriminators (ports,
    /// addresses, MACs, protocol, VLAN). Used by the batch path to group a
    /// burst by flow when the microflow cache (and therefore the full
    /// `MiniKey`) is not needed. Fields left out of the hash and hash
    /// collisions only cost a full [`FlowKey`] comparison — grouping always
    /// confirms equality — never a wrong answer.
    #[inline]
    pub fn group_hash(key: &FlowKey) -> u64 {
        #[inline]
        fn opt8(v: Option<u8>) -> u64 {
            match v {
                Some(x) => 0x100 | u64::from(x),
                None => 0,
            }
        }
        #[inline]
        fn opt16(v: Option<u16>) -> u64 {
            match v {
                Some(x) => 0x1_0000 | u64::from(x),
                None => 0,
            }
        }
        #[inline]
        fn opt32(v: Option<u32>) -> u64 {
            match v {
                Some(x) => 0x1_0000_0000 | u64::from(x),
                None => 0,
            }
        }
        let mut lane0 = fx_mix(0, u64::from(key.in_port) | (u64::from(key.eth_type) << 32));
        let mut lane1 = fx_mix(0x9e37_79b9_7f4a_7c15, key.eth_dst);
        lane0 = fx_mix(lane0, key.eth_src);
        lane1 = fx_mix(lane1, opt32(key.ipv4_src) | (opt16(key.vlan_vid) << 40));
        lane0 = fx_mix(lane0, opt32(key.ipv4_dst) | (opt8(key.ip_proto) << 40));
        lane1 = fx_mix(
            lane1,
            opt16(key.tcp_src) | (opt16(key.tcp_dst) << 20) | (opt8(key.icmpv4_type) << 44),
        );
        lane0 = fx_mix(
            lane0,
            opt16(key.udp_src) | (opt16(key.udp_dst) << 20) | (opt8(key.ip_dscp) << 44),
        );
        // Rarely-present discriminators join only when present.
        if key.metadata != 0 || key.tunnel_id != 0 {
            lane1 = fx_mix(lane1, key.metadata ^ key.tunnel_id.rotate_left(23));
        }
        if let Some(v6) = key.ipv6_src {
            lane0 = fx_mix(lane0, v6 as u64 ^ (v6 >> 64) as u64);
        }
        if let Some(v6) = key.ipv6_dst {
            lane1 = fx_mix(lane1, v6 as u64 ^ (v6 >> 64) as u64);
        }
        if key.arp_op.is_some() {
            lane0 = fx_mix(lane0, opt16(key.arp_op) | (opt32(key.arp_spa) << 17));
            lane1 = fx_mix(lane1, opt32(key.arp_tpa) ^ key.arp_sha.unwrap_or(0));
        }
        fx_mix(lane0, lane1)
    }

    /// The precomputed key hash.
    #[inline]
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// Packing-order bit of a match field, mirroring [`MiniKey::from_flow`].
    /// `None` for fields the key does not model (MPLS, PBB, IPv6 ND, ...) —
    /// a match on those can never be satisfied by any packet in this model
    /// (`FlowKey::get` returns `None` for them too).
    fn packing_bit(field: Field) -> Option<u32> {
        Some(match field {
            // InPhyPort reads the same value as InPort, as in `FlowKey::get`.
            Field::InPort | Field::InPhyPort => 0,
            Field::Metadata => 1,
            Field::TunnelId => 2,
            Field::EthDst => 3,
            Field::EthSrc => 4,
            Field::EthType => 5,
            Field::VlanVid => 6,
            Field::VlanPcp => 7,
            Field::IpDscp => 8,
            Field::IpEcn => 9,
            Field::IpProto => 10,
            Field::Ipv4Src => 11,
            Field::Ipv4Dst => 12,
            Field::Ipv6Src => 13,
            Field::Ipv6Dst => 14,
            Field::TcpSrc => 15,
            Field::TcpDst => 16,
            Field::UdpSrc => 17,
            Field::UdpDst => 18,
            Field::Icmpv4Type => 19,
            Field::Icmpv4Code => 20,
            Field::ArpOp => 21,
            Field::ArpSpa => 22,
            Field::ArpTpa => 23,
            Field::ArpSha => 24,
            Field::ArpTha => 25,
            _ => return None,
        })
    }

    /// The packed value of a field, or `None` when the field was absent from
    /// the flow this key was extracted from (or is not modelled).
    #[inline]
    fn value_of(&self, field: Field) -> Option<FieldValue> {
        let bit = Self::packing_bit(field)?;
        if self.present & (1 << bit) == 0 {
            return None;
        }
        let rank = (self.present & ((1u32 << bit) - 1)).count_ones() as usize;
        Some(self.values[rank])
    }

    /// Evaluates a flow match against this key, with the same semantics as
    /// [`FlowMatch::matches`] on the original [`FlowKey`]: a match on an
    /// absent (or unmodelled) field fails. Used by delta-aware EMC
    /// invalidation — an exact-match entry whose key does not satisfy a
    /// changed rule's match cannot see a different verdict from that change.
    pub fn matches(&self, m: &FlowMatch) -> bool {
        m.fields().iter().all(|mf| match self.value_of(mf.field) {
            Some(v) => mf.matches_value(v),
            None => false,
        })
    }
}

impl PartialEq for MiniKey {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        // The hash is a cheap first-word reject; the bitmap + packed values
        // are the authoritative comparison.
        self.hash == other.hash
            && self.present == other.present
            && self.values[..usize::from(self.n)] == other.values[..usize::from(other.n)]
    }
}

impl Eq for MiniKey {}

#[cfg(test)]
mod tests {
    use super::*;
    use pkt::builder::PacketBuilder;

    fn mini(key: &FlowKey) -> MiniKey {
        MiniKey::from_flow(key)
    }

    #[test]
    fn same_flow_same_key_and_hash() {
        let a = FlowKey::extract(&PacketBuilder::tcp().tcp_dst(80).tcp_src(9).build());
        let b = FlowKey::extract(&PacketBuilder::tcp().tcp_dst(80).tcp_src(9).build());
        assert_eq!(mini(&a), mini(&b));
        assert_eq!(mini(&a).hash(), mini(&b).hash());
    }

    #[test]
    fn different_flows_differ() {
        let a = FlowKey::extract(&PacketBuilder::tcp().tcp_dst(80).build());
        let b = FlowKey::extract(&PacketBuilder::tcp().tcp_dst(81).build());
        let c = FlowKey::extract(&PacketBuilder::udp().udp_dst(80).build());
        assert_ne!(mini(&a), mini(&b));
        assert_ne!(mini(&a), mini(&c));
        assert_ne!(mini(&b), mini(&c));
    }

    #[test]
    fn absent_field_distinct_from_zero() {
        // A TCP packet with src port 0 and a bare ICMP packet must not
        // collide just because packed values happen to line up.
        let zero_port = FlowKey::extract(&PacketBuilder::tcp().tcp_src(0).tcp_dst(0).build());
        let mut no_ports = zero_port;
        no_ports.tcp_src = None;
        no_ports.tcp_dst = None;
        assert_ne!(mini(&zero_port), mini(&no_ports));
        assert_ne!(mini(&zero_port).hash(), mini(&no_ports).hash());
    }

    #[test]
    fn every_optional_field_participates() {
        let base = FlowKey::extract(&PacketBuilder::tcp().tcp_dst(80).build());
        for field in [
            openflow::Field::VlanVid,
            openflow::Field::Ipv6Src,
            openflow::Field::ArpTha,
            openflow::Field::Metadata,
        ] {
            let mut changed = base;
            changed.set(field, 0x7f);
            assert_ne!(mini(&base), mini(&changed), "{field:?}");
        }
    }

    #[test]
    fn group_hash_separates_nearby_flows() {
        // Same flow → same hash (determinism); close-by flows → different
        // hashes in practice (no cross-flow grouping in typical bursts).
        let a = FlowKey::extract(&PacketBuilder::tcp().tcp_dst(80).tcp_src(9).build());
        let a2 = FlowKey::extract(&PacketBuilder::tcp().tcp_dst(80).tcp_src(9).build());
        let b = FlowKey::extract(&PacketBuilder::tcp().tcp_dst(80).tcp_src(10).build());
        let c = FlowKey::extract(&PacketBuilder::udp().udp_dst(80).udp_src(9).build());
        assert_eq!(MiniKey::group_hash(&a), MiniKey::group_hash(&a2));
        assert_ne!(MiniKey::group_hash(&a), MiniKey::group_hash(&b));
        assert_ne!(MiniKey::group_hash(&a), MiniKey::group_hash(&c));
    }

    #[test]
    fn match_evaluation_agrees_with_flow_key() {
        let packets = [
            PacketBuilder::tcp()
                .tcp_dst(80)
                .tcp_src(1000)
                .ipv4_dst([192, 0, 2, 1])
                .build(),
            PacketBuilder::udp().udp_dst(53).build(),
            PacketBuilder::udp().vlan(7).build(),
        ];
        let matches = [
            FlowMatch::any().with_exact(Field::TcpDst, 80),
            FlowMatch::any().with_exact(Field::UdpDst, 53),
            FlowMatch::any().with_prefix(Field::Ipv4Dst, u128::from(0xc0000200u32), 24),
            FlowMatch::any().with_exact(Field::VlanVid, 7),
            FlowMatch::any().with_exact(Field::MplsLabel, 9), // unmodelled
            FlowMatch::any(),
        ];
        for p in &packets {
            let key = FlowKey::extract(p);
            let m = mini(&key);
            for fm in &matches {
                assert_eq!(m.matches(fm), fm.matches(&key), "{fm}");
            }
        }
    }

    #[test]
    fn fully_populated_key_fits() {
        // Populate every optional field through `set`; MINI_MAX must hold
        // them all without panicking.
        let mut key = FlowKey::extract(&PacketBuilder::tcp().build());
        for field in openflow::Field::ALL {
            key.set(field, 1);
        }
        let m = mini(&key);
        assert_eq!(usize::from(m.n), m.present.count_ones() as usize);
    }
}
