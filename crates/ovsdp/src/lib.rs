//! # ovsdp — the flow-caching (Open vSwitch architecture) baseline
//!
//! The paper evaluates ESWITCH against Open vSwitch, "the flagship OpenFlow
//! softswitch", whose datapath is a four-level cache hierarchy (Fig. 2):
//!
//! 1. **microflow cache** — a per-transport-connection exact-match store,
//! 2. **megaflow cache** — a wildcard-match store searched with tuple space
//!    search, holding traffic aggregates computed by the slow path,
//! 3. **`vswitchd`** — the full OpenFlow pipeline, consulted on megaflow
//!    misses; besides deciding the packet's fate it *un-wildcards* every
//!    field (and, with prefix tracking, every bit) it consulted, and installs
//!    the resulting megaflow,
//! 4. **the controller** — the last resort for packets the pipeline punts.
//!
//! This crate re-implements that architecture over the same `openflow`
//! pipeline model the ESWITCH compiler consumes, so the two datapaths can be
//! compared on identical workloads. The behaviours the paper attributes
//! OVS's performance regressions to are reproduced deliberately:
//!
//! * megaflow masks depend on which rules the slow path had to examine, so
//!   the cache contents depend on packet arrival order (Fig. 3),
//! * the caches are bounded and evict, so large active-flow sets push
//!   processing down the hierarchy (Fig. 14) and throughput collapses to the
//!   slow-path rate (Fig. 13),
//! * any flow-table change invalidates the entire megaflow + microflow cache
//!   (§2.3, footnote 2), which is what hurts update-intensive workloads
//!   (Fig. 18).

pub mod datapath;
pub mod mask;
pub mod megaflow;
pub mod microflow;
pub mod minikey;
pub mod slowpath;

pub use datapath::{CacheLevel, CacheStats, OvsConfig, OvsDatapath};
pub use mask::{FieldMask, MaskedKey};
pub use megaflow::{MegaflowCache, MegaflowEntry};
pub use microflow::MicroflowCache;
pub use minikey::MiniKey;
pub use slowpath::{SlowPath, SlowPathResult};
