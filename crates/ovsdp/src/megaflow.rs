//! The megaflow cache: a wildcard-match store searched with tuple space
//! search.
//!
//! Megaflows bundle many microflows into one aggregate: every flow whose key,
//! projected through the megaflow's mask, equals the megaflow's masked key
//! gets the same cached action program. Because the slow path never encodes
//! priorities into megaflows, all megaflows are disjoint and the first match
//! wins (§2.2). The cache is organised as one subtable per distinct mask —
//! literally "linearly iterating over a list of key/mask pairs for each
//! packet" — so the cost of a lookup grows with mask diversity, and the
//! number of entries needed grows as fine-grained rules "punch holes" in the
//! aggregates.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use openflow::{Action, FlowKey};

use crate::mask::{FieldMask, MaskedKey};

/// One cached megaflow.
#[derive(Debug, Clone)]
pub struct MegaflowEntry {
    /// The mask this entry was installed under (owned by its subtable; kept
    /// here as well for dump/debug purposes).
    pub mask: FieldMask,
    /// The cached action program.
    pub actions: Arc<Vec<Action>>,
    /// Packets answered by this entry.
    pub hits: u64,
}

/// One subtable: all megaflows sharing a mask, hashed by masked key.
#[derive(Debug, Default)]
struct Subtable {
    mask: FieldMask,
    entries: HashMap<MaskedKey, MegaflowEntry>,
}

/// The megaflow cache.
#[derive(Debug)]
pub struct MegaflowCache {
    subtables: Vec<Subtable>,
    /// FIFO of (subtable index, key) used for eviction when the cache is at
    /// capacity, coarsely modelling OVS's flow-limit + revalidator behaviour.
    insertion_order: VecDeque<(usize, MaskedKey)>,
    max_entries: usize,
    len: usize,
    /// Cumulative count of subtables visited by lookups (the tuple-space
    /// search work metric surfaced in the evaluation).
    pub subtables_searched: u64,
    /// Cumulative lookups.
    pub lookups: u64,
}

impl MegaflowCache {
    /// Default capacity; matches the order of magnitude of OVS's default
    /// datapath flow limit.
    pub const DEFAULT_MAX_ENTRIES: usize = 65_536;

    /// Creates an empty cache with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_MAX_ENTRIES)
    }

    /// Creates an empty cache bounded to `max_entries` megaflows.
    pub fn with_capacity(max_entries: usize) -> Self {
        MegaflowCache {
            subtables: Vec::new(),
            insertion_order: VecDeque::new(),
            max_entries: max_entries.max(1),
            len: 0,
            subtables_searched: 0,
            lookups: 0,
        }
    }

    /// Number of cached megaflows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct masks (subtables).
    pub fn subtable_count(&self) -> usize {
        self.subtables.len()
    }

    /// Looks up the cached action program covering `key`, if any.
    /// Tuple space search: one hash probe per subtable until a hit.
    pub fn lookup(&mut self, key: &FlowKey) -> Option<Arc<Vec<Action>>> {
        self.lookups += 1;
        for (i, subtable) in self.subtables.iter_mut().enumerate() {
            self.subtables_searched += 1;
            let masked = subtable.mask.project(key);
            if let Some(entry) = subtable.entries.get_mut(&masked) {
                entry.hits += 1;
                let _ = i;
                return Some(Arc::clone(&entry.actions));
            }
        }
        None
    }

    /// Installs a megaflow computed by the slow path: `key` projected through
    /// `mask` → `actions`. Evicts the oldest megaflow when at capacity.
    pub fn insert(&mut self, key: &FlowKey, mask: FieldMask, actions: Arc<Vec<Action>>) {
        while self.len >= self.max_entries {
            self.evict_oldest();
        }
        let subtable_index = match self.subtables.iter().position(|s| s.mask == mask) {
            Some(i) => i,
            None => {
                self.subtables.push(Subtable {
                    mask: mask.clone(),
                    entries: HashMap::new(),
                });
                self.subtables.len() - 1
            }
        };
        let masked = mask.project(key);
        let entry = MegaflowEntry {
            mask,
            actions,
            hits: 0,
        };
        let subtable = &mut self.subtables[subtable_index];
        if subtable.entries.insert(masked.clone(), entry).is_none() {
            self.len += 1;
            self.insertion_order.push_back((subtable_index, masked));
        }
    }

    fn evict_oldest(&mut self) {
        while let Some((subtable_index, key)) = self.insertion_order.pop_front() {
            if let Some(subtable) = self.subtables.get_mut(subtable_index) {
                if subtable.entries.remove(&key).is_some() {
                    self.len -= 1;
                    return;
                }
            }
        }
        // Insertion order exhausted: nothing left to evict.
        self.len = self.subtables.iter().map(|s| s.entries.len()).sum();
    }

    /// Drops every megaflow (and every subtable). This is what a flow-table
    /// change triggers in OVS: "the brute-force strategy to invalidate the
    /// entire cache after essentially all changes".
    pub fn invalidate(&mut self) {
        self.subtables.clear();
        self.insertion_order.clear();
        self.len = 0;
    }

    /// Iterates over all cached megaflows (dump/debug/tests).
    pub fn iter(&self) -> impl Iterator<Item = &MegaflowEntry> {
        self.subtables.iter().flat_map(|s| s.entries.values())
    }

    /// Average subtables searched per lookup so far.
    pub fn avg_subtables_per_lookup(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.subtables_searched as f64 / self.lookups as f64
        }
    }
}

impl Default for MegaflowCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflow::Field;
    use pkt::builder::PacketBuilder;

    fn key(port: u16, ip_last: u8) -> FlowKey {
        FlowKey::extract(
            &PacketBuilder::tcp()
                .ipv4_dst([192, 0, 2, ip_last])
                .tcp_dst(port)
                .build(),
        )
    }

    fn port_mask() -> FieldMask {
        let mut m = FieldMask::wildcard_all();
        m.unwildcard_exact(Field::TcpDst);
        m
    }

    fn actions(p: u32) -> Arc<Vec<Action>> {
        Arc::new(vec![Action::Output(p)])
    }

    #[test]
    fn aggregate_covers_many_microflows() {
        let mut cache = MegaflowCache::new();
        // One megaflow matching only tcp_dst=80 covers every source/dest
        // combination — the "bundle multiple microflows" behaviour.
        cache.insert(&key(80, 1), port_mask(), actions(1));
        assert_eq!(cache.len(), 1);
        for last in 0..50u8 {
            assert!(cache.lookup(&key(80, last)).is_some());
        }
        assert!(cache.lookup(&key(443, 1)).is_none());
    }

    #[test]
    fn distinct_masks_create_subtables() {
        let mut cache = MegaflowCache::new();
        cache.insert(&key(80, 1), port_mask(), actions(1));
        let mut ip_mask = FieldMask::wildcard_all();
        ip_mask.unwildcard(Field::Ipv4Dst, 0xffff_ff00);
        cache.insert(&key(443, 2), ip_mask, actions(2));
        assert_eq!(cache.subtable_count(), 2);
        assert_eq!(cache.len(), 2);
        // Both are reachable.
        assert!(cache.lookup(&key(80, 99)).is_some());
        assert!(cache.lookup(&key(9999, 7)).is_some()); // via the /24 entry
    }

    #[test]
    fn same_mask_same_key_replaces() {
        let mut cache = MegaflowCache::new();
        cache.insert(&key(80, 1), port_mask(), actions(1));
        cache.insert(&key(80, 2), port_mask(), actions(9)); // same masked key (port 80)
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(&key(80, 3)).unwrap()[0], Action::Output(9));
    }

    #[test]
    fn eviction_bounds_the_cache() {
        let mut cache = MegaflowCache::with_capacity(16);
        for port in 0..100u16 {
            cache.insert(&key(port, 1), port_mask(), actions(1));
        }
        assert!(cache.len() <= 16);
        // The most recently inserted entries survive.
        assert!(cache.lookup(&key(99, 1)).is_some());
        assert!(cache.lookup(&key(0, 1)).is_none());
    }

    #[test]
    fn invalidate_clears_everything() {
        let mut cache = MegaflowCache::new();
        cache.insert(&key(80, 1), port_mask(), actions(1));
        cache.invalidate();
        assert!(cache.is_empty());
        assert_eq!(cache.subtable_count(), 0);
        assert!(cache.lookup(&key(80, 1)).is_none());
    }

    #[test]
    fn hit_counters_and_search_stats() {
        let mut cache = MegaflowCache::new();
        cache.insert(&key(80, 1), port_mask(), actions(1));
        let mut ip_mask = FieldMask::wildcard_all();
        ip_mask.unwildcard(Field::Ipv4Dst, 0xffff_ff00);
        cache.insert(&key(443, 2), ip_mask, actions(2));
        for _ in 0..10 {
            cache.lookup(&key(80, 1));
        }
        assert!(cache.avg_subtables_per_lookup() >= 1.0);
        let hits: u64 = cache.iter().map(|e| e.hits).sum();
        assert_eq!(hits, 10);
    }
}
