//! The megaflow cache: a wildcard-match store searched with tuple space
//! search.
//!
//! Megaflows bundle many microflows into one aggregate: every flow whose key,
//! projected through the megaflow's mask, equals the megaflow's masked key
//! gets the same cached action program. Because the slow path never encodes
//! priorities into megaflows, all megaflows are disjoint and the first match
//! wins (§2.2). The cache is organised as one subtable per distinct mask —
//! literally "linearly iterating over a list of key/mask pairs for each
//! packet" — so the cost of a lookup grows with mask diversity, and the
//! number of entries needed grows as fine-grained rules "punch holes" in the
//! aggregates.
//!
//! Two fast-path properties of the real OVS classifier are reproduced here:
//! lookups are allocation-free (projection writes into a stack buffer which
//! probes the subtable map through `Borrow<[FieldValue]>`, hashed with
//! FxHash), and subtables are periodically re-ranked by hit count so the
//! linear search probes hot masks first — OVS sorts its subtable vector by
//! usage for exactly this reason.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use netdev::FxBuildHasher;
use openflow::flow_match::FlowMatch;
use openflow::{Action, FieldValue, FlowKey};

use crate::mask::{FieldMask, MaskedKey};

/// One cached megaflow. Deliberately slim (two words + a counter): entries
/// live inline in the subtable hash slots, so their size is what tuple-space
/// probes drag through the cache. The mask lives on the subtable
/// ([`MegaflowCache::subtable_masks`]), not on every entry.
#[derive(Debug, Clone)]
pub struct MegaflowEntry {
    /// The cached action program.
    pub actions: Arc<Vec<Action>>,
    /// Packets answered by this entry.
    pub hits: u64,
}

/// One subtable: all megaflows sharing a mask, hashed by masked key.
#[derive(Debug)]
struct Subtable {
    /// Stable identity (survives rank-reordering; eviction bookkeeping refers
    /// to subtables by id, never by position).
    id: u32,
    mask: FieldMask,
    entries: HashMap<MaskedKey, MegaflowEntry, FxBuildHasher>,
    /// Hits since the last re-rank (decayed, not reset, so a briefly idle
    /// subtable does not immediately fall to the back).
    rank_hits: u64,
}

/// The megaflow cache.
#[derive(Debug)]
pub struct MegaflowCache {
    subtables: Vec<Subtable>,
    next_subtable_id: u32,
    /// FIFO of (subtable id, key) used for eviction when the cache is at
    /// capacity, coarsely modelling OVS's flow-limit + revalidator behaviour.
    insertion_order: VecDeque<(u32, MaskedKey)>,
    max_entries: usize,
    len: usize,
    /// Lookups until the next subtable re-rank.
    rank_countdown: u64,
    /// Projection scratch buffer, kept on the cache so lookups neither
    /// allocate nor re-zero 640 bytes of stack per call.
    scratch: [FieldValue; FieldMask::MAX_FIELDS],
    /// Cumulative count of subtables visited by lookups (the tuple-space
    /// search work metric surfaced in the evaluation).
    pub subtables_searched: u64,
    /// Cumulative lookups.
    pub lookups: u64,
}

impl MegaflowCache {
    /// Default capacity; matches the order of magnitude of OVS's default
    /// datapath flow limit.
    pub const DEFAULT_MAX_ENTRIES: usize = 65_536;

    /// Lookups between subtable re-ranks (OVS re-sorts its subtable vector on
    /// a timer; a lookup countdown is the deterministic equivalent).
    pub const RANK_INTERVAL: u64 = 4_096;

    /// Creates an empty cache with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_MAX_ENTRIES)
    }

    /// Creates an empty cache bounded to `max_entries` megaflows.
    pub fn with_capacity(max_entries: usize) -> Self {
        MegaflowCache {
            subtables: Vec::new(),
            next_subtable_id: 0,
            insertion_order: VecDeque::new(),
            max_entries: max_entries.max(1),
            len: 0,
            rank_countdown: Self::RANK_INTERVAL,
            scratch: [0; FieldMask::MAX_FIELDS],
            subtables_searched: 0,
            lookups: 0,
        }
    }

    /// Number of cached megaflows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct masks (subtables).
    pub fn subtable_count(&self) -> usize {
        self.subtables.len()
    }

    /// Looks up the cached action program covering `key`, if any.
    /// Tuple space search: one hash probe per subtable until a hit, hot
    /// subtables first, no heap allocation.
    #[inline]
    pub fn lookup(&mut self, key: &FlowKey) -> Option<Arc<Vec<Action>>> {
        self.lookups += 1;
        self.rank_countdown -= 1;
        if self.rank_countdown == 0 {
            self.rerank();
        }
        for si in 0..self.subtables.len() {
            self.subtables_searched += 1;
            let n = self.subtables[si].mask.project_into(key, &mut self.scratch);
            let probe: &[FieldValue] = &self.scratch[..n];
            let subtable = &mut self.subtables[si];
            if let Some(entry) = subtable.entries.get_mut(probe) {
                entry.hits += 1;
                subtable.rank_hits += 1;
                return Some(Arc::clone(&entry.actions));
            }
        }
        None
    }

    /// Sorts subtables by hits since the last rank (descending, stable) and
    /// decays the counters.
    fn rerank(&mut self) {
        self.rank_countdown = Self::RANK_INTERVAL;
        self.subtables
            .sort_by_key(|s| std::cmp::Reverse(s.rank_hits));
        for subtable in &mut self.subtables {
            subtable.rank_hits /= 2;
        }
    }

    /// Installs a megaflow computed by the slow path: `key` projected through
    /// `mask` → `actions`. Evicts the oldest megaflow when inserting a *new*
    /// entry at capacity; replacing the program of an existing masked key
    /// never evicts anything.
    pub fn insert(&mut self, key: &FlowKey, mask: FieldMask, actions: Arc<Vec<Action>>) {
        let subtable_index = match self.subtables.iter().position(|s| s.mask == mask) {
            Some(i) => i,
            None => {
                self.subtables.push(Subtable {
                    id: self.next_subtable_id,
                    mask: mask.clone(),
                    entries: HashMap::default(),
                    rank_hits: 0,
                });
                self.next_subtable_id += 1;
                self.subtables.len() - 1
            }
        };
        let masked = mask.project(key);
        let is_new = !self.subtables[subtable_index]
            .entries
            .contains_key(masked.values());
        if is_new {
            while self.len >= self.max_entries {
                self.evict_oldest();
            }
        }
        let entry = MegaflowEntry { actions, hits: 0 };
        let subtable = &mut self.subtables[subtable_index];
        if subtable.entries.insert(masked.clone(), entry).is_none() {
            self.len += 1;
            self.insertion_order.push_back((subtable.id, masked));
        }
    }

    fn evict_oldest(&mut self) {
        while let Some((subtable_id, key)) = self.insertion_order.pop_front() {
            if let Some(subtable) = self.subtables.iter_mut().find(|s| s.id == subtable_id) {
                if subtable.entries.remove(key.values()).is_some() {
                    self.len -= 1;
                    return;
                }
            }
        }
        // Insertion order exhausted: nothing left to evict.
        self.len = self.subtables.iter().map(|s| s.entries.len()).sum();
    }

    /// Drops every megaflow (and every subtable). This is what a flow-table
    /// change triggers in OVS: "the brute-force strategy to invalidate the
    /// entire cache after essentially all changes".
    pub fn invalidate(&mut self) {
        self.subtables.clear();
        self.insertion_order.clear();
        self.len = 0;
    }

    /// Delta-aware invalidation: drops only the megaflows that could overlap
    /// one of the changed rules' matches, keeping every entry that provably
    /// cannot see a different verdict ([`FieldMask::disjoint_from`]). The
    /// modelled analogue of OVS's revalidator tagging instead of the
    /// brute-force whole-cache flush. Returns the number of flushed entries.
    ///
    /// Only sound when the changed rules' match fields cannot have been
    /// rewritten by apply-actions earlier in the pipeline (megaflows are
    /// keyed on extraction-time keys); the datapath checks that before
    /// choosing this path.
    pub fn invalidate_overlapping(&mut self, matches: &[FlowMatch]) -> usize {
        let mut flushed = 0usize;
        for subtable in &mut self.subtables {
            let mask = &subtable.mask;
            let before = subtable.entries.len();
            subtable
                .entries
                .retain(|key, _| matches.iter().all(|m| mask.disjoint_from(key.values(), m)));
            flushed += before - subtable.entries.len();
        }
        self.len -= flushed;
        // Emptied subtables drop out of the probe order entirely.
        self.subtables.retain(|s| !s.entries.is_empty());
        // Purge the flushed entries' eviction bookkeeping too: under
        // sustained selective churn the FIFO would otherwise accumulate one
        // stale (id, key) pair per flushed-and-reinstalled megaflow forever
        // (eviction only drains it once the cache reaches capacity).
        if flushed > 0 {
            let subtables = &self.subtables;
            self.insertion_order.retain(|(id, key)| {
                subtables
                    .iter()
                    .any(|s| s.id == *id && s.entries.contains_key(key.values()))
            });
        }
        flushed
    }

    /// Iterates over all cached megaflows (dump/debug/tests).
    pub fn iter(&self) -> impl Iterator<Item = &MegaflowEntry> {
        self.subtables.iter().flat_map(|s| s.entries.values())
    }

    /// The subtable masks in current probe order (tests/statistics).
    pub fn subtable_masks(&self) -> impl Iterator<Item = &FieldMask> {
        self.subtables.iter().map(|s| &s.mask)
    }

    /// Average subtables searched per lookup so far.
    pub fn avg_subtables_per_lookup(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.subtables_searched as f64 / self.lookups as f64
        }
    }
}

impl Default for MegaflowCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflow::Field;
    use pkt::builder::PacketBuilder;

    fn key(port: u16, ip_last: u8) -> FlowKey {
        FlowKey::extract(
            &PacketBuilder::tcp()
                .ipv4_dst([192, 0, 2, ip_last])
                .tcp_dst(port)
                .build(),
        )
    }

    fn port_mask() -> FieldMask {
        let mut m = FieldMask::wildcard_all();
        m.unwildcard_exact(Field::TcpDst);
        m
    }

    fn ip_mask() -> FieldMask {
        let mut m = FieldMask::wildcard_all();
        m.unwildcard(Field::Ipv4Dst, 0xffff_ff00);
        m
    }

    fn actions(p: u32) -> Arc<Vec<Action>> {
        Arc::new(vec![Action::Output(p)])
    }

    #[test]
    fn aggregate_covers_many_microflows() {
        let mut cache = MegaflowCache::new();
        // One megaflow matching only tcp_dst=80 covers every source/dest
        // combination — the "bundle multiple microflows" behaviour.
        cache.insert(&key(80, 1), port_mask(), actions(1));
        assert_eq!(cache.len(), 1);
        for last in 0..50u8 {
            assert!(cache.lookup(&key(80, last)).is_some());
        }
        assert!(cache.lookup(&key(443, 1)).is_none());
    }

    #[test]
    fn distinct_masks_create_subtables() {
        let mut cache = MegaflowCache::new();
        cache.insert(&key(80, 1), port_mask(), actions(1));
        cache.insert(&key(443, 2), ip_mask(), actions(2));
        assert_eq!(cache.subtable_count(), 2);
        assert_eq!(cache.len(), 2);
        // Both are reachable.
        assert!(cache.lookup(&key(80, 99)).is_some());
        assert!(cache.lookup(&key(9999, 7)).is_some()); // via the /24 entry
    }

    #[test]
    fn same_mask_same_key_replaces() {
        let mut cache = MegaflowCache::new();
        cache.insert(&key(80, 1), port_mask(), actions(1));
        cache.insert(&key(80, 2), port_mask(), actions(9)); // same masked key (port 80)
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.lookup(&key(80, 3)).unwrap()[0], Action::Output(9));
    }

    #[test]
    fn eviction_bounds_the_cache() {
        let mut cache = MegaflowCache::with_capacity(16);
        for port in 0..100u16 {
            cache.insert(&key(port, 1), port_mask(), actions(1));
        }
        assert!(cache.len() <= 16);
        // The most recently inserted entries survive.
        assert!(cache.lookup(&key(99, 1)).is_some());
        assert!(cache.lookup(&key(0, 1)).is_none());
    }

    #[test]
    fn replace_at_capacity_does_not_evict_unrelated_entries() {
        // Regression: replacing the action program of an existing masked key
        // while the cache is full used to evict the oldest (unrelated)
        // megaflow first.
        let mut cache = MegaflowCache::with_capacity(4);
        for port in 0..4u16 {
            cache.insert(&key(port, 1), port_mask(), actions(u32::from(port)));
        }
        assert_eq!(cache.len(), 4);
        cache.insert(&key(2, 9), port_mask(), actions(99)); // replace port 2
        assert_eq!(cache.len(), 4);
        for port in 0..4u16 {
            assert!(cache.lookup(&key(port, 1)).is_some(), "port {port} evicted");
        }
        assert_eq!(cache.lookup(&key(2, 1)).unwrap()[0], Action::Output(99));
    }

    #[test]
    fn delta_invalidation_keeps_disjoint_megaflows() {
        use openflow::flow_match::FlowMatch;
        let mut cache = MegaflowCache::new();
        cache.insert(&key(80, 1), port_mask(), actions(1)); // pins tcp_dst=80
        cache.insert(&key(443, 1), port_mask(), actions(2)); // pins tcp_dst=443
        cache.insert(&key(80, 7), ip_mask(), actions(3)); // pins 192.0.2.0/24

        // A rule on tcp_dst=443 overlaps only the 443 megaflow; the port-80
        // entry is provably disjoint and the /24 entry pins no port bits so
        // it must be flushed too (covered packets vary on the port).
        let flushed =
            cache.invalidate_overlapping(&[FlowMatch::any().with_exact(Field::TcpDst, 443)]);
        assert_eq!(flushed, 2);
        assert!(
            cache.lookup(&key(80, 1)).is_some(),
            "disjoint entry flushed"
        );
        // The 443 subtable entry and the /24 subtable are gone.
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.subtable_count(), 1);
    }

    #[test]
    fn delta_invalidation_purges_eviction_bookkeeping() {
        use openflow::flow_match::FlowMatch;
        // Sustained flush-and-reinstall churn below capacity must not grow
        // the eviction FIFO without bound.
        let mut cache = MegaflowCache::with_capacity(1024);
        for round in 0..50u16 {
            cache.insert(&key(80, 1), port_mask(), actions(u32::from(round)));
            let flushed =
                cache.invalidate_overlapping(&[FlowMatch::any().with_exact(Field::TcpDst, 80)]);
            assert_eq!(flushed, 1);
        }
        assert!(cache.is_empty());
        assert!(
            cache.insertion_order.is_empty(),
            "stale eviction pairs leaked: {}",
            cache.insertion_order.len()
        );
    }

    #[test]
    fn delta_invalidation_respects_absent_fields() {
        use openflow::flow_match::FlowMatch;
        let mut cache = MegaflowCache::new();
        // A megaflow over UDP traffic that pins udp_dst: a TCP packet's key
        // has no udp_dst, so the mask stores the absent sentinel.
        let udp_key = FlowKey::extract(&PacketBuilder::udp().udp_dst(53).build());
        let mut m = FieldMask::wildcard_all();
        m.unwildcard_exact(Field::UdpDst);
        cache.insert(&udp_key, m.clone(), actions(1));
        // A megaflow over TCP traffic through the same udp_dst mask (absent).
        cache.insert(&key(80, 1), m, actions(2));

        // A rule matching udp_dst=53 can only affect packets carrying UDP:
        // the absent-field entry survives, the present-and-equal one dies.
        let flushed =
            cache.invalidate_overlapping(&[FlowMatch::any().with_exact(Field::UdpDst, 53)]);
        assert_eq!(flushed, 1);
        assert!(cache.lookup(&key(80, 1)).is_some());
        assert!(cache.lookup(&udp_key).is_none());
    }

    #[test]
    fn invalidate_clears_everything() {
        let mut cache = MegaflowCache::new();
        cache.insert(&key(80, 1), port_mask(), actions(1));
        cache.invalidate();
        assert!(cache.is_empty());
        assert_eq!(cache.subtable_count(), 0);
        assert!(cache.lookup(&key(80, 1)).is_none());
    }

    #[test]
    fn hit_counters_and_search_stats() {
        let mut cache = MegaflowCache::new();
        cache.insert(&key(80, 1), port_mask(), actions(1));
        cache.insert(&key(443, 2), ip_mask(), actions(2));
        for _ in 0..10 {
            cache.lookup(&key(80, 1));
        }
        assert!(cache.avg_subtables_per_lookup() >= 1.0);
        let hits: u64 = cache.iter().map(|e| e.hits).sum();
        assert_eq!(hits, 10);
    }

    fn key_in_net(port: u16, net: [u8; 4]) -> FlowKey {
        FlowKey::extract(&PacketBuilder::tcp().ipv4_dst(net).tcp_dst(port).build())
    }

    #[test]
    fn reranking_moves_hot_subtable_first() {
        let mut cache = MegaflowCache::new();
        // Install the cold mask first so it initially ranks ahead. Its /24
        // (10.9.9.0) is disjoint from the hammered flow's 192.0.2.0 so the
        // cold subtable is probed but never hit.
        cache.insert(&key_in_net(443, [10, 9, 9, 9]), ip_mask(), actions(2));
        cache.insert(&key(80, 1), port_mask(), actions(1));
        assert_eq!(cache.subtable_masks().next(), Some(&ip_mask()));

        // Hammer the port subtable past a rank interval. Every one of these
        // lookups pays a probe of the cold ip subtable first.
        for _ in 0..MegaflowCache::RANK_INTERVAL {
            assert!(cache.lookup(&key(80, 1)).is_some());
        }
        assert_eq!(
            cache.subtable_masks().next(),
            Some(&port_mask()),
            "hot subtable must be probed first after re-ranking"
        );
        // And the hot path now stops at the first subtable.
        let before = cache.subtables_searched;
        assert!(cache.lookup(&key(80, 1)).is_some());
        assert_eq!(cache.subtables_searched - before, 1);
        // Eviction bookkeeping still finds entries after the reorder.
        let mut cache2 = MegaflowCache::with_capacity(2);
        cache2.insert(&key_in_net(443, [10, 9, 9, 9]), ip_mask(), actions(2));
        cache2.insert(&key(80, 1), port_mask(), actions(1));
        for _ in 0..MegaflowCache::RANK_INTERVAL {
            cache2.lookup(&key(80, 1));
        }
        cache2.insert(&key(81, 1), port_mask(), actions(3)); // evicts the ip entry
        assert_eq!(cache2.len(), 2);
        assert!(
            cache2.lookup(&key_in_net(9999, [10, 9, 9, 2])).is_none(),
            "oldest not evicted"
        );
        assert!(cache2.lookup(&key(81, 1)).is_some());
    }
}
