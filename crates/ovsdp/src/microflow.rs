//! The microflow cache (OVS "exact match cache", EMC).
//!
//! A small, fixed-size, set-associative store mapping the *complete* flow key
//! of a transport connection to the cached action program. "Since exact
//! matching occurs over all relevant tuple fields, essentially any change in
//! the packet header inside an established flow results in a cache miss"
//! (§2.2) — and because the store is small, a large active-flow set simply
//! thrashes it, which is the first step of the performance collapse the
//! evaluation demonstrates.
//!
//! Keys are [`MiniKey`]s — compact miniflow-style keys whose hash is computed
//! once at extraction — so a probe is an index plus a compact compare, with
//! no per-lookup SipHash and no allocation (the real EMC stores
//! `(miniflow, hash)` pairs for the same reason).

use std::sync::Arc;

use openflow::Action;

use crate::minikey::MiniKey;

/// One cached entry: the exact key plus the shared action program and the
/// megaflow generation it was derived from (entries of stale generations are
/// ignored, which is how the whole microflow cache is invalidated in O(1)).
#[derive(Debug, Clone)]
struct Slot {
    key: MiniKey,
    actions: Arc<Vec<Action>>,
    generation: u64,
}

/// A set-associative exact-match cache.
#[derive(Debug)]
pub struct MicroflowCache {
    slots: Vec<Option<Slot>>,
    ways: usize,
    sets: usize,
    generation: u64,
    /// Toggle used to pick the victim way on insertion, mirroring the cheap
    /// replacement policy of the real EMC.
    victim_toggle: bool,
}

impl MicroflowCache {
    /// Default number of entries, matching OVS's EMC size.
    pub const DEFAULT_ENTRIES: usize = 8192;
    /// Associativity (OVS's EMC is effectively 2-way).
    pub const WAYS: usize = 2;

    /// Creates a cache with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_ENTRIES)
    }

    /// Creates a cache holding at most `entries` keys (rounded to a power of
    /// two of sets × 2 ways).
    pub fn with_capacity(entries: usize) -> Self {
        let sets = (entries.max(Self::WAYS) / Self::WAYS).next_power_of_two();
        MicroflowCache {
            slots: vec![None; sets * Self::WAYS],
            ways: Self::WAYS,
            sets,
            generation: 0,
            victim_toggle: false,
        }
    }

    #[inline]
    fn set_index(&self, key: &MiniKey) -> usize {
        (key.hash() as usize) & (self.sets - 1)
    }

    /// Looks up the action program cached for exactly this key.
    #[inline]
    pub fn lookup(&self, key: &MiniKey) -> Option<Arc<Vec<Action>>> {
        let base = self.set_index(key) * self.ways;
        for s in self.slots[base..base + self.ways].iter().flatten() {
            if s.generation == self.generation && s.key == *key {
                return Some(Arc::clone(&s.actions));
            }
        }
        None
    }

    /// Inserts (or refreshes) an entry for `key`.
    pub fn insert(&mut self, key: MiniKey, actions: Arc<Vec<Action>>) {
        let base = self.set_index(&key) * self.ways;
        let generation = self.generation;
        // Reuse a slot holding the same key or a stale/empty slot if possible.
        let mut victim = None;
        for (i, slot) in self.slots[base..base + self.ways].iter().enumerate() {
            match slot {
                Some(s) if s.key == key => {
                    victim = Some(i);
                    break;
                }
                Some(s) if s.generation != generation && victim.is_none() => victim = Some(i),
                None if victim.is_none() => victim = Some(i),
                _ => {}
            }
        }
        let way = victim.unwrap_or_else(|| {
            self.victim_toggle = !self.victim_toggle;
            usize::from(self.victim_toggle)
        });
        self.slots[base + way] = Some(Slot {
            key,
            actions,
            generation,
        });
    }

    /// Invalidates every entry (O(1): bumps the generation counter).
    pub fn invalidate(&mut self) {
        self.generation += 1;
    }

    /// Delta-aware invalidation: drops only the entries whose exact key
    /// satisfies one of the changed rules' matches. An exact-match entry
    /// whose key fails every changed match cannot see a different verdict,
    /// so it survives rule churn that cannot affect it — the "EMC survives
    /// rule-adds" half of incremental epoch publication. Returns the number
    /// of flushed entries.
    ///
    /// Same soundness precondition as
    /// [`MegaflowCache::invalidate_overlapping`](crate::megaflow::MegaflowCache::invalidate_overlapping):
    /// the changed match fields must not be apply-action-rewritten mid-pipeline.
    pub fn invalidate_matching(&mut self, matches: &[openflow::flow_match::FlowMatch]) -> usize {
        let generation = self.generation;
        let mut flushed = 0usize;
        for slot in self.slots.iter_mut() {
            if let Some(s) = slot {
                if s.generation == generation && matches.iter().any(|m| s.key.matches(m)) {
                    *slot = None;
                    flushed += 1;
                }
            }
        }
        flushed
    }

    /// Number of live (current-generation) entries; linear scan, meant for
    /// tests and statistics dumps only.
    pub fn live_entries(&self) -> usize {
        self.slots
            .iter()
            .flatten()
            .filter(|s| s.generation == self.generation)
            .count()
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

impl Default for MicroflowCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflow::FlowKey;
    use pkt::builder::PacketBuilder;

    fn key(port: u16) -> MiniKey {
        MiniKey::from_flow(&FlowKey::extract(
            &PacketBuilder::tcp()
                .tcp_dst(port)
                .tcp_src(port ^ 0x1234)
                .build(),
        ))
    }

    fn actions(port: u32) -> Arc<Vec<Action>> {
        Arc::new(vec![Action::Output(port)])
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let mut c = MicroflowCache::with_capacity(64);
        c.insert(key(80), actions(1));
        c.insert(key(443), actions(2));
        assert_eq!(c.lookup(&key(80)).unwrap()[0], Action::Output(1));
        assert_eq!(c.lookup(&key(443)).unwrap()[0], Action::Output(2));
        assert!(c.lookup(&key(22)).is_none());
        assert_eq!(c.live_entries(), 2);
    }

    #[test]
    fn reinsert_same_key_replaces() {
        let mut c = MicroflowCache::with_capacity(64);
        c.insert(key(80), actions(1));
        c.insert(key(80), actions(9));
        assert_eq!(c.lookup(&key(80)).unwrap()[0], Action::Output(9));
        assert_eq!(c.live_entries(), 1);
    }

    #[test]
    fn invalidate_clears_everything() {
        let mut c = MicroflowCache::with_capacity(64);
        for p in 0..20 {
            c.insert(key(p), actions(1));
        }
        assert!(c.live_entries() > 0);
        c.invalidate();
        assert_eq!(c.live_entries(), 0);
        assert!(c.lookup(&key(5)).is_none());
        // The cache keeps working after invalidation.
        c.insert(key(5), actions(3));
        assert_eq!(c.lookup(&key(5)).unwrap()[0], Action::Output(3));
    }

    #[test]
    fn delta_invalidation_keeps_unmatched_entries() {
        use openflow::flow_match::FlowMatch;
        use openflow::Field;
        let mut c = MicroflowCache::with_capacity(64);
        c.insert(key(80), actions(1));
        c.insert(key(443), actions(2));
        let flushed = c.invalidate_matching(&[FlowMatch::any().with_exact(Field::TcpDst, 80)]);
        assert_eq!(flushed, 1);
        assert!(c.lookup(&key(80)).is_none(), "matching entry kept");
        assert!(c.lookup(&key(443)).is_some(), "unmatched entry flushed");
        assert_eq!(c.live_entries(), 1);
    }

    #[test]
    fn small_cache_thrashes_under_many_flows() {
        // With far more active flows than capacity, most lookups miss —
        // the behaviour behind Fig. 14's microflow hit-rate collapse.
        let mut c = MicroflowCache::with_capacity(32);
        for p in 0..1000u16 {
            c.insert(key(p), actions(1));
        }
        let hits = (0..1000u16)
            .filter(|p| c.lookup(&key(*p)).is_some())
            .count();
        assert!(hits <= c.capacity(), "hits {hits} exceed capacity");
        assert!(c.live_entries() <= c.capacity());
    }

    #[test]
    fn capacity_rounding() {
        let c = MicroflowCache::with_capacity(100);
        assert!(c.capacity() >= 100);
        assert_eq!(c.capacity() % MicroflowCache::WAYS, 0);
    }
}
