//! The slow path: full OpenFlow pipeline classification plus megaflow mask
//! construction ("un-wildcarding").
//!
//! This is the `vswitchd` level of the OVS hierarchy. For a packet that missed
//! both caches it (1) walks the pipeline exactly like the reference
//! interpreter, (2) records the *action program* — the ordered list of actions
//! the packet experienced — so the caches can replay it on later packets, and
//! (3) computes the megaflow mask: every field (or, with prefix tracking
//! enabled, every bit) that influenced the decision is un-wildcarded.
//!
//! The mask construction is what makes megaflow contents depend on packet
//! arrival order (Fig. 3 of the paper) and what lets a single fine-grained
//! rule "punch a hole" in every aggregate: matching a packet against a rule
//! un-wildcards the fields of that rule *and* of every higher-priority rule
//! examined along the way.

use std::sync::Arc;

use openflow::action::{apply_action_list, apply_action_list_into_ct, ActionSet};
use openflow::ct::{ConnCtx, NoCt};
use openflow::table::TableMissBehavior;
use openflow::{Action, Field, FieldValue, FlowEntry, FlowKey, Instruction, Pipeline, Verdict};
use pkt::Packet;

use crate::mask::FieldMask;

/// Configuration knobs of the slow-path classifier.
#[derive(Debug, Clone, Copy)]
pub struct SlowPathConfig {
    /// Enable bit-level prefix tracking on port and IPv4 address fields.
    ///
    /// With tracking enabled a *failed* comparison un-wildcards only the bits
    /// down to the first difference — the effect of OVS's address/ports tries
    /// — which keeps megaflows broader when a packet merely has to be proven
    /// different from a higher-priority rule. A *successful* comparison
    /// always un-wildcards the rule's full mask on the field; anything less
    /// would let the megaflow cover packets that should have matched a
    /// different rule. With tracking disabled every consulted field is
    /// un-wildcarded across the rule's full mask, matched or not.
    pub prefix_tracking: bool,
}

impl Default for SlowPathConfig {
    fn default() -> Self {
        SlowPathConfig {
            prefix_tracking: true,
        }
    }
}

/// Result of one slow-path classification.
#[derive(Debug, Clone)]
pub struct SlowPathResult {
    /// The ordered action program the caches will replay for this megaflow.
    pub actions: Arc<Vec<Action>>,
    /// The megaflow mask (un-wildcarded fields/bits).
    pub mask: FieldMask,
    /// The forwarding verdict for this packet.
    pub verdict: Verdict,
    /// False when a ct verb halted classification mid-pipeline: the program
    /// is truncated at the deny, so it must not be installed in any cache —
    /// the connection's state may change and a replay would then skip the
    /// rest of the pipeline walk. Denied flows re-classify per packet.
    pub cacheable: bool,
}

/// The slow-path classifier. Stateless apart from configuration; the pipeline
/// is borrowed per call so the datapath can keep it behind its own lock.
#[derive(Debug, Clone, Default)]
pub struct SlowPath {
    config: SlowPathConfig,
}

/// Fields that get bit-level prefix tracking when enabled.
fn is_tracked_field(field: Field) -> bool {
    matches!(
        field,
        Field::Ipv4Src
            | Field::Ipv4Dst
            | Field::TcpSrc
            | Field::TcpDst
            | Field::UdpSrc
            | Field::UdpDst
    )
}

impl SlowPath {
    /// Creates a slow path with default configuration (prefix tracking on).
    pub fn new() -> Self {
        SlowPath::default()
    }

    /// Creates a slow path with explicit configuration.
    pub fn with_config(config: SlowPathConfig) -> Self {
        SlowPath { config }
    }

    /// Classifies one packet against `pipeline`, applying actions to the
    /// packet, and returns the action program + megaflow mask + verdict.
    /// Ct actions run against the no-op tracker; stateful datapaths use
    /// [`SlowPath::classify_ct`].
    pub fn classify(
        &self,
        pipeline: &Pipeline,
        packet: &mut Packet,
        key: &mut FlowKey,
    ) -> SlowPathResult {
        self.classify_ct(pipeline, packet, key, &mut NoCt)
    }

    /// Like [`SlowPath::classify`] but with a live connection tracker.
    ///
    /// Two ct-specific rules keep the caches sound: the program *retains*
    /// the ct action (connection state is live data — cached replays must
    /// re-execute it per packet), and the megaflow mask un-wildcards the
    /// full 5-tuple whenever a ct action executes, so no wildcard entry can
    /// ever cover two connections whose tracked state may differ.
    pub fn classify_ct(
        &self,
        pipeline: &Pipeline,
        packet: &mut Packet,
        key: &mut FlowKey,
        ct: &mut dyn ConnCtx,
    ) -> SlowPathResult {
        let mut mask = FieldMask::wildcard_all();
        let mut program: Vec<Action> = Vec::new();
        let mut verdict = Verdict::default();
        let mut action_set = ActionSet::new();
        let mut table_id = 0u32;

        while let Some(table) = pipeline.table(table_id) {
            verdict.tables_visited += 1;
            table.lookups.record(0);

            let mut matched: Option<&FlowEntry> = None;
            for entry in table.entries() {
                verdict.entries_examined += 1;
                let hit = entry.flow_match.matches(key);
                self.unwildcard_entry(&mut mask, entry, key, hit);
                if hit {
                    matched = Some(entry);
                    break;
                }
            }

            match matched {
                Some(entry) => {
                    table.matches.record(0);
                    entry.record(packet.len());
                    let mut next = None;
                    for instruction in &entry.instructions {
                        match instruction {
                            Instruction::ApplyActions(actions) => {
                                program.extend(actions.iter().cloned());
                                if actions.iter().any(|a| matches!(a, Action::Ct(_))) {
                                    unwildcard_ct_tuple(&mut mask);
                                }
                                if apply_action_list_into_ct(actions, packet, key, &mut verdict, ct)
                                {
                                    // Stateful deny: drop, discarding every
                                    // forwarding decision merged so far and
                                    // the accumulated write-action set; keep
                                    // the accounting. The truncated program
                                    // is marked non-cacheable.
                                    return SlowPathResult {
                                        actions: Arc::new(program),
                                        mask,
                                        verdict: Verdict {
                                            tables_visited: verdict.tables_visited,
                                            entries_examined: verdict.entries_examined,
                                            ..Verdict::default()
                                        },
                                        cacheable: false,
                                    };
                                }
                            }
                            Instruction::WriteActions(actions) => {
                                for a in actions {
                                    action_set.write(a.clone());
                                }
                            }
                            Instruction::ClearActions => action_set.clear(),
                            Instruction::WriteMetadata { value, mask: m } => {
                                key.metadata = (key.metadata & !m) | (value & m);
                            }
                            Instruction::GotoTable(t) => next = Some(*t),
                            Instruction::Meter(_) => {}
                        }
                    }
                    match next {
                        Some(t) => table_id = t,
                        None => break,
                    }
                }
                None => {
                    match table.miss {
                        TableMissBehavior::Drop => {}
                        TableMissBehavior::ToController => {
                            verdict.to_controller = true;
                            program.push(Action::ToController);
                        }
                        TableMissBehavior::Continue => {
                            if let Some(next) = pipeline
                                .tables()
                                .iter()
                                .map(|t| t.id)
                                .find(|id| *id > table_id)
                            {
                                table_id = next;
                                continue;
                            }
                        }
                    }
                    break;
                }
            }
        }

        // Flush the accumulated action set into the program and the packet.
        if !action_set.is_empty() {
            let list = action_set.to_action_list();
            program.extend(list.iter().cloned());
            for out in apply_action_list(&list, packet, key) {
                verdict.add(out);
            }
        }

        SlowPathResult {
            actions: Arc::new(program),
            mask,
            verdict,
            cacheable: true,
        }
    }

    /// Un-wildcards everything the comparison of `key` against `entry`
    /// consulted.
    fn unwildcard_entry(&self, mask: &mut FieldMask, entry: &FlowEntry, key: &FlowKey, hit: bool) {
        for mf in entry.flow_match.fields() {
            let field = mf.field;
            if hit || !self.config.prefix_tracking || !is_tracked_field(field) {
                // A match must pin every bit the rule matched on; untracked
                // fields are pinned across the rule's mask either way.
                mask.unwildcard(field, mf.mask);
                continue;
            }
            match key.get(field) {
                None => {
                    // Field absent: the protocol-presence decision hinges on
                    // ip_proto / eth_type, which the caller's rules also
                    // match; conservatively pin the whole field mask.
                    mask.unwildcard(field, mf.mask);
                }
                Some(value) => {
                    let width = field.width_bits();
                    if (value & mf.mask) != mf.value {
                        // Mismatch on this field: only the bits down to the
                        // first difference were needed to prove it.
                        mask.unwildcard(
                            field,
                            prefix_to_first_difference(value, mf.value, mf.mask, width),
                        );
                    }
                    // If the field itself compared equal but the entry failed
                    // on a later field, staged lookup never revisits it, so
                    // nothing more is pinned here.
                }
            }
        }
    }
}

/// Un-wildcards the full connection 5-tuple. Executing a ct action makes the
/// decision depend on per-connection state, so the megaflow must be exact on
/// everything that identifies the connection.
fn unwildcard_ct_tuple(mask: &mut FieldMask) {
    for field in [
        Field::IpProto,
        Field::Ipv4Src,
        Field::Ipv4Dst,
        Field::TcpSrc,
        Field::TcpDst,
        Field::UdpSrc,
        Field::UdpDst,
    ] {
        mask.unwildcard(field, field.full_mask());
    }
}

/// Mask of the top `bits` bits of a `width`-bit field.
fn top_bits_mask(bits: u32, width: u32) -> FieldValue {
    if bits == 0 {
        0
    } else if bits >= width {
        if width >= 128 {
            u128::MAX
        } else {
            (1u128 << width) - 1
        }
    } else {
        (((1u128 << bits) - 1) << (width - bits)) & ((1u128 << width) - 1)
    }
}

/// Bits (from the MSB down to and including the first differing bit) needed
/// to prove that `value` does not equal `rule_value` under `rule_mask`.
fn prefix_to_first_difference(
    value: FieldValue,
    rule_value: FieldValue,
    rule_mask: FieldValue,
    width: u32,
) -> FieldValue {
    let diff = (value ^ rule_value) & rule_mask;
    if diff == 0 {
        return rule_mask;
    }
    // Position of the highest differing bit, counted from the field MSB.
    let highest = 127 - diff.leading_zeros(); // bit index within u128
    let from_msb = width - 1 - highest.min(width - 1);
    top_bits_mask(from_msb + 1, width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflow::action::OutputKind;
    use openflow::flow_match::FlowMatch;
    use openflow::instruction::terminal_actions;
    use pkt::builder::PacketBuilder;

    fn port_entry(priority: u16, port: u16, out: u32) -> FlowEntry {
        FlowEntry::new(
            FlowMatch::any().with_exact(Field::TcpDst, u128::from(port)),
            priority,
            terminal_actions(vec![Action::Output(out)]),
        )
    }

    fn pipeline_with_entries(entries: Vec<FlowEntry>) -> Pipeline {
        let mut p = Pipeline::with_tables(1);
        for e in entries {
            p.table_mut(0).unwrap().insert(e);
        }
        p
    }

    fn classify(pipeline: &Pipeline, packet: &mut Packet) -> SlowPathResult {
        let mut key = FlowKey::extract(packet);
        SlowPath::new().classify(pipeline, packet, &mut key)
    }

    #[test]
    fn verdict_matches_reference_pipeline() {
        let pipeline = pipeline_with_entries(vec![
            port_entry(100, 80, 1),
            port_entry(50, 443, 2),
            FlowEntry::new(FlowMatch::any(), 1, vec![]),
        ]);
        for port in [80u16, 443, 22, 8080] {
            let mut a = PacketBuilder::tcp().tcp_dst(port).build();
            let mut b = a.clone();
            let slow = classify(&pipeline, &mut a);
            let reference = pipeline.process(&mut b);
            assert_eq!(slow.verdict.decision(), reference.decision(), "port {port}");
        }
    }

    #[test]
    fn action_program_replays_to_same_decision() {
        let pipeline = pipeline_with_entries(vec![
            FlowEntry::new(
                FlowMatch::any().with_exact(Field::TcpDst, 80),
                100,
                terminal_actions(vec![
                    Action::SetField(Field::Ipv4Dst, 0x0a00_0001),
                    Action::Output(4),
                ]),
            ),
            FlowEntry::new(FlowMatch::any(), 1, vec![]),
        ]);
        let mut first = PacketBuilder::tcp()
            .tcp_dst(80)
            .ipv4_dst([192, 0, 2, 1])
            .build();
        let result = classify(&pipeline, &mut first);
        assert_eq!(result.verdict.outputs, vec![4]);
        // Replaying the cached program on a fresh packet of the same flow
        // must produce the same rewrite and output.
        let mut second = PacketBuilder::tcp()
            .tcp_dst(80)
            .ipv4_dst([192, 0, 2, 1])
            .build();
        let mut key = FlowKey::extract(&second);
        let outs = apply_action_list(&result.actions, &mut second, &mut key);
        assert_eq!(outs, vec![OutputKind::Port(4)]);
        assert_eq!(FlowKey::extract(&second).ipv4_dst, Some(0x0a00_0001));
    }

    #[test]
    fn mask_includes_fields_of_higher_priority_misses() {
        // Packet matches the catch-all, but the port-80 rule was examined, so
        // the megaflow must pin the port (otherwise a later port-80 packet
        // would wrongly reuse it).
        let pipeline = pipeline_with_entries(vec![
            port_entry(100, 80, 1),
            FlowEntry::new(
                FlowMatch::any(),
                1,
                terminal_actions(vec![Action::Output(9)]),
            ),
        ]);
        let mut pkt = PacketBuilder::tcp().tcp_dst(443).build();
        let result = classify(&pipeline, &mut pkt);
        assert!(result.mask.mask_of(Field::TcpDst) != 0);
    }

    #[test]
    fn prefix_tracking_limits_unwildcarded_bits_on_mismatch() {
        // 443 = 0b0000_0001_1011_1011, 80 = 0b0000_0000_0101_0000: the first
        // difference seen from the MSB is at bit position 7 (value 0x100), so
        // only the top 8 bits need pinning, not the full 16.
        let pipeline = pipeline_with_entries(vec![
            port_entry(100, 80, 1),
            FlowEntry::new(
                FlowMatch::any(),
                1,
                terminal_actions(vec![Action::Output(9)]),
            ),
        ]);
        let mut pkt = PacketBuilder::tcp().tcp_dst(443).build();
        let tracked = classify(&pipeline, &mut pkt);
        let tracked_bits = tracked.mask.mask_of(Field::TcpDst).count_ones();

        let mut pkt = PacketBuilder::tcp().tcp_dst(443).build();
        let mut key = FlowKey::extract(&pkt);
        let untracked = SlowPath::with_config(SlowPathConfig {
            prefix_tracking: false,
        })
        .classify(&pipeline, &mut pkt, &mut key);
        let untracked_bits = untracked.mask.mask_of(Field::TcpDst).count_ones();

        assert!(tracked_bits < untracked_bits);
        assert_eq!(untracked_bits, 16);
        assert_eq!(tracked_bits, 8);
    }

    #[test]
    fn helper_math() {
        assert_eq!(top_bits_mask(0, 16), 0);
        assert_eq!(top_bits_mask(8, 16), 0xff00);
        assert_eq!(top_bits_mask(16, 16), 0xffff);
        // 0b1011_1110 vs 0b1011_1111 differ at the last bit -> all 8 bits.
        assert_eq!(prefix_to_first_difference(0xbe, 0xbf, 0xff, 8), 0xff);
        // 0b1001_1111 vs 0b1011_1111 differ at bit 3 from the MSB.
        assert_eq!(prefix_to_first_difference(0x9f, 0xbf, 0xff, 8), 0xe0);
        // Equal under the mask: the rule mask itself is returned.
        assert_eq!(prefix_to_first_difference(0xbf, 0xbf, 0xf0, 8), 0xf0);
    }

    #[test]
    fn matched_rule_pins_its_full_mask() {
        // A match on tcp_dst=80 must pin all 16 port bits; otherwise the
        // megaflow would also cover ports that should fall through to the
        // catch-all.
        let pipeline = pipeline_with_entries(vec![
            port_entry(100, 80, 1),
            FlowEntry::new(
                FlowMatch::any(),
                1,
                terminal_actions(vec![Action::Output(9)]),
            ),
        ]);
        let mut pkt = PacketBuilder::tcp().tcp_dst(80).build();
        let result = classify(&pipeline, &mut pkt);
        assert_eq!(result.mask.mask_of(Field::TcpDst), 0xffff);
    }

    #[test]
    fn table_miss_behaviours_reflected_in_program() {
        let mut p = Pipeline::with_tables(1);
        p.table_mut(0).unwrap().miss = TableMissBehavior::ToController;
        let mut pkt = PacketBuilder::tcp().build();
        let result = classify(&p, &mut pkt);
        assert!(result.verdict.to_controller);
        assert_eq!(result.actions.as_slice(), &[Action::ToController]);
    }

    #[test]
    fn multi_stage_pipeline_accumulates_masks_across_tables() {
        // Table 0 matches in_port and jumps to table 1, which matches tcp_dst.
        let mut p = Pipeline::with_tables(2);
        p.table_mut(0).unwrap().insert(FlowEntry::new(
            FlowMatch::any().with_exact(Field::InPort, 0),
            10,
            vec![Instruction::GotoTable(1)],
        ));
        p.table_mut(1).unwrap().insert(port_entry(10, 80, 5));
        p.table_mut(1)
            .unwrap()
            .insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));

        let mut pkt = PacketBuilder::tcp().tcp_dst(80).in_port(0).build();
        let result = classify(&p, &mut pkt);
        assert_eq!(result.verdict.outputs, vec![5]);
        assert_ne!(result.mask.mask_of(Field::InPort), 0);
        assert_ne!(result.mask.mask_of(Field::TcpDst), 0);
        assert_eq!(result.verdict.tables_visited, 2);
    }
}
