//! The four-level OVS-architecture datapath.
//!
//! Packets move through the hierarchy one *burst* at a time
//! ([`OvsDatapath::process_batch_into`]): keys and miniflow hashes are
//! extracted for the whole burst, packets of the same flow are grouped so
//! each cache is consulted once per distinct flow (OVS's `packet_batch`
//! behaviour), each cache lock is taken at most a handful of times per burst
//! instead of per packet, and verdicts land in a caller-provided buffer. The
//! steady-state hit path — microflow or megaflow hit — performs no heap
//! allocation per packet (enforced by `tests/alloc_regression.rs`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use netdev::{Counters, BURST_SIZE};
use openflow::action::{apply_action_list, apply_action_list_parsed_ct};
use openflow::ct::{ConnCtx, NoCt};
use openflow::flow_match::FlowMatch;
use openflow::flow_mod::{apply_flow_mod, FlowModEffect, FlowModError};
use openflow::instruction::{pipeline_written_fields, written_match_fields};
use openflow::{
    Action, Controller, ControllerDecision, FlowKey, FlowMod, NullController, PacketIn,
    PacketInReason, Pipeline, Verdict,
};
use pkt::parser::{parse, ParseDepth, ParsedHeaders};
use pkt::Packet;

use crate::megaflow::MegaflowCache;
use crate::microflow::MicroflowCache;
use crate::minikey::MiniKey;
use crate::slowpath::{SlowPath, SlowPathConfig, SlowPathResult};

/// Which level of the hierarchy answered a packet. Mirrors Fig. 14's series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLevel {
    /// The exact-match microflow cache.
    Microflow,
    /// The wildcard megaflow cache.
    Megaflow,
    /// The full pipeline in `vswitchd`.
    SlowPath,
}

/// Per-level hit statistics.
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Packets answered by the microflow cache.
    pub microflow_hits: Counters,
    /// Packets answered by the megaflow cache.
    pub megaflow_hits: Counters,
    /// Packets that required slow-path classification.
    pub slowpath_hits: Counters,
    /// Packets additionally punted to the controller.
    pub controller_punts: Counters,
}

impl CacheStats {
    /// Total packets processed.
    pub fn total(&self) -> u64 {
        self.microflow_hits.packets() + self.megaflow_hits.packets() + self.slowpath_hits.packets()
    }

    /// Fraction of packets answered at each level, as
    /// `(microflow, megaflow, slowpath)`; the series of Fig. 14.
    pub fn hit_fractions(&self) -> (f64, f64, f64) {
        let total = self.total() as f64;
        if total == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.microflow_hits.packets() as f64 / total,
            self.megaflow_hits.packets() as f64 / total,
            self.slowpath_hits.packets() as f64 / total,
        )
    }
}

/// Configuration of the cache hierarchy.
#[derive(Debug, Clone, Copy)]
pub struct OvsConfig {
    /// Microflow (EMC) capacity in entries.
    pub microflow_entries: usize,
    /// Megaflow cache capacity in entries.
    pub megaflow_entries: usize,
    /// Slow-path classifier configuration.
    pub slowpath: SlowPathConfig,
    /// If false, the microflow cache is bypassed entirely (useful for
    /// isolating megaflow behaviour in tests and ablations).
    pub use_microflow: bool,
}

impl Default for OvsConfig {
    fn default() -> Self {
        OvsConfig {
            microflow_entries: MicroflowCache::DEFAULT_ENTRIES,
            megaflow_entries: MegaflowCache::DEFAULT_MAX_ENTRIES,
            slowpath: SlowPathConfig::default(),
            use_microflow: true,
        }
    }
}

/// Reusable per-burst working state: keys, parse results, miniflow hashes,
/// flow grouping and resolved programs for up to [`BURST_SIZE`] packets.
/// Living on the datapath (not the stack) means a burst neither allocates
/// nor zero-initialises tens of kilobytes of arrays per call.
#[derive(Default)]
struct BurstScratch {
    keys: Vec<FlowKey>,
    headers: Vec<ParsedHeaders>,
    minis: Vec<MiniKey>,
    hashes: Vec<u64>,
    /// `group[i]`: index of the first packet of packet i's flow in the burst.
    group: Vec<usize>,
    actions: Vec<Option<Arc<Vec<Action>>>>,
    levels: Vec<CacheLevel>,
    /// Sparse `(leader index, classification)` list — empty in steady state,
    /// so no 700-byte `Option<SlowPathResult>` slots get rewritten per burst.
    slow: Vec<(usize, SlowPathResult)>,
}

impl BurstScratch {
    fn reset(&mut self, n: usize) {
        self.keys.clear();
        self.headers.clear();
        self.minis.clear();
        self.hashes.clear();
        self.group.clear();
        self.actions.clear();
        self.actions.resize_with(n, || None);
        self.levels.clear();
        self.levels.resize(n, CacheLevel::SlowPath);
        self.slow.clear();
    }
}

/// The flow-caching datapath: microflow cache → megaflow cache → slow path →
/// controller.
pub struct OvsDatapath {
    pipeline: Arc<RwLock<Pipeline>>,
    microflow: Mutex<MicroflowCache>,
    megaflow: Mutex<MegaflowCache>,
    slowpath: SlowPath,
    controller: Mutex<Box<dyn Controller>>,
    config: OvsConfig,
    /// Burst working state; `try_lock` + local fallback, so concurrent
    /// batchers degrade to allocating instead of serialising on each other.
    scratch: Mutex<BurstScratch>,
    /// Bitmask (by `Field::index`) of match fields some apply-action in the
    /// pipeline can rewrite mid-traversal. Grown monotonically as flow-mods
    /// add instructions (a stale set bit only costs an unnecessary full
    /// flush, never a wrong answer); recomputed on pipeline replacement.
    written_fields: AtomicU64,
    /// Per-level hit statistics.
    pub stats: CacheStats,
}

/// True when `matches` can soundly drive selective (delta-aware) cache
/// invalidation against extraction-time keys: there is at least one match to
/// check against, and none of the matched fields is rewritten by an
/// apply-action anywhere in the pipeline (`written_fields` bitmask from
/// [`pipeline_written_fields`]). A rewritten field would make the comparison
/// against extraction-time keys unsound, so those updates fall back to the
/// brute-force full flush.
pub fn delta_is_selective(written_fields: u64, matches: &[FlowMatch]) -> bool {
    !matches.is_empty()
        && matches.iter().all(|m| {
            m.fields()
                .iter()
                .all(|mf| written_fields & (1u64 << mf.field.index()) == 0)
        })
}

impl OvsDatapath {
    /// Creates a datapath over `pipeline` with default configuration and a
    /// drop-all controller.
    pub fn new(pipeline: Pipeline) -> Self {
        Self::with_config(
            pipeline,
            OvsConfig::default(),
            Box::new(NullController::new()),
        )
    }

    /// Creates a datapath with explicit configuration and controller.
    pub fn with_config(
        pipeline: Pipeline,
        config: OvsConfig,
        controller: Box<dyn Controller>,
    ) -> Self {
        let written = pipeline_written_fields(&pipeline);
        OvsDatapath {
            pipeline: Arc::new(RwLock::new(pipeline)),
            microflow: Mutex::new(MicroflowCache::with_capacity(config.microflow_entries)),
            megaflow: Mutex::new(MegaflowCache::with_capacity(config.megaflow_entries)),
            slowpath: SlowPath::with_config(config.slowpath),
            controller: Mutex::new(controller),
            config,
            scratch: Mutex::new(BurstScratch::default()),
            written_fields: AtomicU64::new(written),
            stats: CacheStats::default(),
        }
    }

    /// Shared handle to the pipeline.
    pub fn pipeline(&self) -> Arc<RwLock<Pipeline>> {
        Arc::clone(&self.pipeline)
    }

    /// Applies a flow-mod and invalidates the caches — selectively when the
    /// change's delta allows it, falling back to OVS's brute-force strategy
    /// ("invalidate the entire cache after essentially all changes") when it
    /// does not.
    pub fn flow_mod(&self, fm: &FlowMod) -> Result<FlowModEffect, FlowModError> {
        let effect = {
            let mut pipeline = self.pipeline.write();
            let effect = apply_flow_mod(&mut pipeline, fm)?;
            // New instructions may introduce new rewritten fields; the
            // bitmask only ever grows (conservative), so no full rescan is
            // needed. Updated *inside* the pipeline write section so a
            // concurrent flow-mod's selectivity check can never read a
            // bitmask missing this change's bits.
            self.written_fields
                .fetch_or(written_match_fields(&fm.instructions), Ordering::Relaxed);
            effect
        };
        self.invalidate_for(&effect);
        Ok(effect)
    }

    /// Invalidates as little of the cache hierarchy as the flow-mod's delta
    /// permits: megaflows provably disjoint from every changed rule survive,
    /// and the EMC keeps every exact entry whose key fails all changed
    /// matches. Falls back to the full flush when the delta is unusable
    /// (structural change, or a changed match on a rewritten field).
    pub fn invalidate_for(&self, effect: &FlowModEffect) {
        if effect.entries_touched() == 0 {
            // Matched nothing, changed nothing (e.g. a non-strict delete
            // with no overlapping entries): every cached program is still
            // exact, so nothing is invalidated.
            return;
        }
        let written = self.written_fields.load(Ordering::Relaxed);
        if delta_is_selective(written, &effect.touched_matches) {
            self.invalidate_matches(&effect.touched_matches);
        } else {
            self.invalidate_caches();
        }
    }

    /// Selective invalidation for a known-good list of matches: flushes the
    /// overlapping megaflow entries and the matching EMC entries, leaving
    /// every disjoint cache entry alive. Used internally for selective-safe
    /// flow-mod deltas, and by the sharded runtime's elastic scheduler to
    /// evict exactly a migrated flow bucket's connections from this
    /// replica's caches.
    pub fn invalidate_matches(&self, matches: &[FlowMatch]) {
        self.megaflow.lock().invalidate_overlapping(matches);
        self.microflow.lock().invalidate_matching(matches);
    }

    /// Replaces the whole pipeline with an externally prepared one and
    /// invalidates both caches — the epoch-swap update path of a sharded
    /// deployment, where a central control plane applies flow-mods to the
    /// canonical pipeline once and broadcasts the result to every per-worker
    /// datapath replica. Equivalent to replaying the flow-mods locally with
    /// no usable delta: the entire cache hierarchy is invalidated (§2.3).
    pub fn replace_pipeline(&self, pipeline: Pipeline) {
        self.written_fields
            .store(pipeline_written_fields(&pipeline), Ordering::Relaxed);
        *self.pipeline.write() = pipeline;
        self.invalidate_caches();
    }

    /// Replaces the pipeline using the publishing control plane's delta:
    /// `deltas` lists, epoch by epoch, the matches of every rule changed
    /// between this replica's pipeline and `pipeline`. Only the megaflow
    /// subtable entries overlapping a changed match are flushed and the EMC
    /// survives changes that cannot affect its exact keys. The caller (the
    /// epoch-swap control plane) guarantees the deltas are contiguous and
    /// selective-safe; replicas that skipped epochs use
    /// [`OvsDatapath::replace_pipeline`] instead.
    pub fn replace_pipeline_with_delta(&self, pipeline: Pipeline, deltas: &[Arc<Vec<FlowMatch>>]) {
        self.written_fields
            .store(pipeline_written_fields(&pipeline), Ordering::Relaxed);
        *self.pipeline.write() = pipeline;
        for delta in deltas {
            self.invalidate_matches(delta);
        }
    }

    /// Invalidates the microflow and megaflow caches.
    pub fn invalidate_caches(&self) {
        self.microflow.lock().invalidate();
        self.megaflow.lock().invalidate();
    }

    /// Number of megaflows currently cached.
    pub fn megaflow_count(&self) -> usize {
        self.megaflow.lock().len()
    }

    /// Number of live microflow entries currently cached.
    pub fn microflow_count(&self) -> usize {
        self.microflow.lock().live_entries()
    }

    /// Processes one packet, returning the verdict and the level that
    /// answered it. Ct actions run against the no-op tracker; stateful
    /// pipelines use [`OvsDatapath::process_traced_ct`].
    pub fn process_traced(&self, packet: &mut Packet) -> (Verdict, CacheLevel) {
        self.process_traced_ct(packet, &mut NoCt)
    }

    /// Like [`OvsDatapath::process_traced`] but with a live connection
    /// tracker. Cached action programs retain their ct ops, so cache hits
    /// re-execute connection tracking per packet against `ct` — the caches
    /// accelerate classification, never connection state.
    pub fn process_traced_ct(
        &self,
        packet: &mut Packet,
        ct: &mut dyn ConnCtx,
    ) -> (Verdict, CacheLevel) {
        // Level 0 cost every packet pays in OVS: full key extraction. The
        // caches are keyed on this *original* key: the slow path may rewrite
        // the packet (and its working key) while classifying, but later
        // packets of the same flow arrive un-rewritten and must still hit.
        // The parse result is kept so cached-program replay does not parse
        // the frame a second time.
        let headers = parse(packet.data(), ParseDepth::L4);
        let mut key = FlowKey::from_parsed(packet, &headers);
        let original_key = key;

        // 1. Microflow cache, probed with the precomputed miniflow hash.
        let mini = if self.config.use_microflow {
            let mini = MiniKey::from_flow(&original_key);
            let cached = self.microflow.lock().lookup(&mini);
            if let Some(actions) = cached {
                self.stats.microflow_hits.record(packet.len());
                let verdict = replay(&actions, packet, &mut key, headers, ct);
                return (verdict, CacheLevel::Microflow);
            }
            Some(mini)
        } else {
            None
        };

        // 2. Megaflow cache.
        let cached = self.megaflow.lock().lookup(&key);
        if let Some(actions) = cached {
            self.stats.megaflow_hits.record(packet.len());
            if let Some(mini) = mini {
                self.microflow.lock().insert(mini, Arc::clone(&actions));
            }
            let verdict = replay(&actions, packet, &mut key, headers, ct);
            return (verdict, CacheLevel::Megaflow);
        }

        // 3. Slow path: classify on the real pipeline, install the megaflow.
        self.stats.slowpath_hits.record(packet.len());
        let result = {
            let pipeline = self.pipeline.read();
            self.slowpath.classify_ct(&pipeline, packet, &mut key, ct)
        };
        if result.cacheable {
            self.megaflow.lock().insert(
                &original_key,
                result.mask.clone(),
                Arc::clone(&result.actions),
            );
            if let Some(mini) = mini {
                self.microflow
                    .lock()
                    .insert(mini, Arc::clone(&result.actions));
            }
        }

        // 4. Controller, if the pipeline punted.
        if result.verdict.to_controller {
            self.stats.controller_punts.record(packet.len());
            self.handle_packet_in(packet.clone());
        }
        (result.verdict, CacheLevel::SlowPath)
    }

    /// Processes one packet, returning only the verdict.
    pub fn process(&self, packet: &mut Packet) -> Verdict {
        self.process_traced(packet).0
    }

    /// Processes one packet with a live connection tracker.
    pub fn process_ct(&self, packet: &mut Packet, ct: &mut dyn ConnCtx) -> Verdict {
        self.process_traced_ct(packet, ct).0
    }

    /// Processes a batch of packets burst-by-burst, appending one verdict per
    /// packet to `verdicts` (which is cleared first). Within each burst of
    /// [`BURST_SIZE`], keys are extracted up front, packets of the same flow
    /// share one cache resolution, and each cache lock is taken a bounded
    /// number of times per burst rather than per packet.
    ///
    /// Semantics match per-packet [`OvsDatapath::process`] exactly as long as
    /// the controller does not rewrite the flow tables mid-batch (cache
    /// lookups within a burst see the state from the start of that burst).
    /// Statistics attribute the non-leading packets of a flow's burst to the
    /// level that answered the leading packet (a flow answered by the slow
    /// path counts its followers as megaflow hits, which is where sequential
    /// processing would have answered them).
    pub fn process_batch_into(&self, packets: &mut [Packet], verdicts: &mut Vec<Verdict>) {
        self.process_batch_into_ct(packets, verdicts, &mut NoCt);
    }

    /// Batched processing with a live connection tracker (see
    /// [`OvsDatapath::process_traced_ct`] for the cache semantics).
    pub fn process_batch_into_ct(
        &self,
        packets: &mut [Packet],
        verdicts: &mut Vec<Verdict>,
        ct: &mut dyn ConnCtx,
    ) {
        verdicts.clear();
        verdicts.reserve(packets.len());
        for chunk in packets.chunks_mut(BURST_SIZE) {
            self.process_burst(chunk, verdicts, ct);
        }
    }

    /// Processes a batch of packets, returning per-packet verdicts.
    pub fn process_batch(&self, packets: &mut [Packet]) -> Vec<Verdict> {
        let mut verdicts = Vec::new();
        self.process_batch_into(packets, &mut verdicts);
        verdicts
    }

    /// One burst (≤ [`BURST_SIZE`] packets) through the hierarchy.
    fn process_burst(
        &self,
        packets: &mut [Packet],
        verdicts: &mut Vec<Verdict>,
        ct: &mut dyn ConnCtx,
    ) {
        let n = packets.len();
        debug_assert!(n <= BURST_SIZE);
        if n == 0 {
            return;
        }
        let mut scratch_guard = self.scratch.try_lock();
        let mut scratch_local = None;
        let s: &mut BurstScratch = match scratch_guard.as_deref_mut() {
            Some(shared) => shared,
            None => scratch_local.insert(BurstScratch::default()),
        };
        s.reset(n);

        // Phase 1: parse and extract every key (and flow hash) for the
        // burst, grouping by exact flow as we go: `group[i]` is the index of
        // the first packet of packet i's flow in this burst (its leader).
        // The parse results are reused by the replay phase; the full
        // miniflow key is only materialised when the EMC will consume it.
        // The dense hash array makes the pairwise grouping scan a one-word
        // compare; the full key confirms only on a hash match.
        let use_microflow = self.config.use_microflow;
        let mut leaders = 0usize;
        for (i, p) in packets.iter().enumerate() {
            let headers = parse(p.data(), ParseDepth::L4);
            s.keys.push(FlowKey::from_parsed(p, &headers));
            let key = s.keys.last().expect("just pushed");
            // The grouping hash is a pure prefilter — every pairwise match
            // below is confirmed by full mini/key equality — so any value
            // that is deterministic per flow works. A packet that arrived
            // through the sharded dispatcher already carries its RSS hash
            // (the NIC-descriptor pattern): reuse it and skip the mix.
            if use_microflow {
                let mini = MiniKey::from_flow(key);
                s.hashes.push(p.rss_hash().unwrap_or_else(|| mini.hash()));
                s.minis.push(mini);
            } else {
                s.hashes
                    .push(p.rss_hash().unwrap_or_else(|| MiniKey::group_hash(key)));
            }
            s.headers.push(headers);
            let leader = (0..i)
                .find(|&j| {
                    s.hashes[j] == s.hashes[i]
                        && if use_microflow {
                            s.minis[j] == s.minis[i]
                        } else {
                            s.keys[j] == s.keys[i]
                        }
                })
                .unwrap_or(i);
            leaders += usize::from(leader == i);
            s.group.push(leader);
        }

        // Phase 2: resolve each leader against the hierarchy, taking each
        // cache lock once per pass instead of once per packet.
        let mut unresolved = leaders;
        let mut promoted = 0usize;
        if use_microflow {
            let micro = self.microflow.lock();
            for i in 0..n {
                if s.group[i] == i {
                    if let Some(found) = micro.lookup(&s.minis[i]) {
                        s.actions[i] = Some(found);
                        s.levels[i] = CacheLevel::Microflow;
                        unresolved -= 1;
                    }
                }
            }
        }
        if unresolved > 0 {
            let mut mega = self.megaflow.lock();
            for i in 0..n {
                if s.group[i] == i && s.actions[i].is_none() {
                    if let Some(found) = mega.lookup(&s.keys[i]) {
                        s.actions[i] = Some(found);
                        s.levels[i] = CacheLevel::Megaflow;
                        unresolved -= 1;
                        promoted += 1;
                    }
                }
            }
        }
        if use_microflow && promoted > 0 {
            // Promote this burst's megaflow hits into the EMC (one lock).
            let mut micro = self.microflow.lock();
            for i in 0..n {
                if s.levels[i] == CacheLevel::Megaflow {
                    if let Some(found) = &s.actions[i] {
                        micro.insert(s.minis[i], Arc::clone(found));
                    }
                }
            }
        }

        // A stateful tracker observes the *order* of ct executions, and the
        // phase split below would reorder them: phase 3 runs the slow-path
        // leaders' ct side effects before phase 4 replays the cache hits
        // that arrived earlier in the burst (a slow-path reply must not
        // outrun an already-cached teardown). Established-path bursts
        // resolve entirely from the caches and never take this branch; a
        // burst with misses degrades to arrival-order per-packet
        // processing, which is where those packets were headed anyway.
        if unresolved > 0 && ct.is_stateful() {
            drop(scratch_guard);
            for packet in packets.iter_mut() {
                verdicts.push(self.process_ct(packet, ct));
            }
            return;
        }

        // Phase 3: slow-path the leaders both caches missed. `classify`
        // applies the actions to the leader packet as it walks the pipeline,
        // so leaders need no replay afterwards.
        if unresolved > 0 {
            {
                let pipeline = self.pipeline.read();
                #[allow(clippy::needless_range_loop)] // parallel scratch arrays
                for i in 0..n {
                    if s.group[i] == i && s.actions[i].is_none() {
                        self.stats.slowpath_hits.record(packets[i].len());
                        let mut working_key = s.keys[i];
                        let result = self.slowpath.classify_ct(
                            &pipeline,
                            &mut packets[i],
                            &mut working_key,
                            ct,
                        );
                        s.slow.push((i, result));
                    }
                }
            }
            {
                let mut mega = self.megaflow.lock();
                for (i, result) in &s.slow {
                    if result.cacheable {
                        mega.insert(
                            &s.keys[*i],
                            result.mask.clone(),
                            Arc::clone(&result.actions),
                        );
                    }
                }
            }
            if use_microflow {
                let mut micro = self.microflow.lock();
                for (i, result) in &s.slow {
                    if result.cacheable {
                        micro.insert(s.minis[*i], Arc::clone(&result.actions));
                    }
                }
            }
        }

        // Phase 4: apply the resolved action programs and emit verdicts.
        // Leaders answered by a cache replay their program; followers replay
        // their leader's. All cache locks are released by now.
        let mut punted_any = false;
        #[allow(clippy::needless_range_loop)] // parallel scratch arrays
        for i in 0..n {
            let leader = s.group[i];
            let program = match s.actions[leader].as_ref() {
                Some(program) => program,
                None => {
                    // Field-precise borrow of the sparse slow list, so the
                    // replay below can still mutate the other scratch fields.
                    let result = s
                        .slow
                        .iter()
                        .find(|(j, _)| *j == leader)
                        .map(|(_, r)| r)
                        .expect("leader resolved");
                    if leader == i {
                        punted_any |= result.verdict.to_controller;
                        verdicts.push(result.verdict.clone());
                        continue;
                    }
                    // Sequential processing would have answered followers of
                    // a slow-pathed flow from the just-installed megaflow.
                    self.stats.megaflow_hits.record(packets[i].len());
                    verdicts.push(replay(
                        &result.actions,
                        &mut packets[i],
                        &mut s.keys[i],
                        s.headers[i],
                        ct,
                    ));
                    continue;
                }
            };
            match s.levels[leader] {
                CacheLevel::Microflow => self.stats.microflow_hits.record(packets[i].len()),
                CacheLevel::Megaflow => self.stats.megaflow_hits.record(packets[i].len()),
                CacheLevel::SlowPath => unreachable!("unresolved leader in replay phase"),
            }
            // The scratch key is dead after this packet; replay mutates it
            // in place instead of copying 400 bytes of `FlowKey`.
            verdicts.push(replay(
                program,
                &mut packets[i],
                &mut s.keys[i],
                s.headers[i],
                ct,
            ));
        }

        // Phase 5: controller punts, with every cache lock released (the
        // controller may answer with flow-mods that invalidate the caches).
        if punted_any {
            let offset = verdicts.len() - n;
            for (i, _) in &s.slow {
                if verdicts[offset + i].to_controller {
                    self.stats.controller_punts.record(packets[*i].len());
                    self.handle_packet_in(packets[*i].clone());
                }
            }
        }
    }

    fn handle_packet_in(&self, packet: Packet) {
        let decisions = {
            let mut controller = self.controller.lock();
            controller.packet_in(PacketIn::new(packet, PacketInReason::NoMatch, 0))
        };
        for decision in decisions {
            match decision {
                ControllerDecision::FlowMod(fm) => {
                    let _ = self.flow_mod(&fm);
                }
                ControllerDecision::PacketOut(mut po) => {
                    let mut key = FlowKey::extract(&po.packet);
                    let _ = apply_action_list(&po.actions, &mut po.packet, &mut key);
                }
                ControllerDecision::Drop => {}
            }
        }
    }

    /// Number of packet-ins the controller has handled.
    pub fn controller_packet_ins(&self) -> u64 {
        self.controller.lock().packet_in_count()
    }
}

/// Replays a cached action program on a packet and converts the outputs into
/// a [`Verdict`], resuming from the parse the key was extracted with.
/// Allocation-free for inline-sized output lists. Ct ops in the program
/// re-execute against `ct`; a stateful deny discards every decision the
/// replay merged and drops the packet.
#[inline]
fn replay(
    actions: &[Action],
    packet: &mut Packet,
    key: &mut FlowKey,
    headers: ParsedHeaders,
    ct: &mut dyn ConnCtx,
) -> Verdict {
    let mut verdict = Verdict::default();
    if apply_action_list_parsed_ct(actions, packet, key, headers, |out| verdict.add(out), ct) {
        return Verdict::default();
    }
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflow::flow_match::FlowMatch;
    use openflow::instruction::terminal_actions;
    use openflow::Field;
    use pkt::builder::PacketBuilder;

    fn port_pipeline() -> Pipeline {
        let mut p = Pipeline::with_tables(1);
        let t = p.table_mut(0).unwrap();
        t.insert(openflow::FlowEntry::new(
            FlowMatch::any().with_exact(Field::TcpDst, 80),
            100,
            terminal_actions(vec![Action::Output(1)]),
        ));
        t.insert(openflow::FlowEntry::new(
            FlowMatch::any().with_exact(Field::TcpDst, 443),
            90,
            terminal_actions(vec![Action::Output(2)]),
        ));
        t.insert(openflow::FlowEntry::new(FlowMatch::any(), 1, vec![]));
        p
    }

    fn pkt(port: u16, src: u16) -> Packet {
        PacketBuilder::tcp().tcp_dst(port).tcp_src(src).build()
    }

    #[test]
    fn hierarchy_progression_slowpath_then_megaflow_then_microflow() {
        let dp = OvsDatapath::new(port_pipeline());

        // First packet of a flow: slow path.
        let (v1, l1) = dp.process_traced(&mut pkt(80, 1000));
        assert_eq!(v1.outputs, vec![1]);
        assert_eq!(l1, CacheLevel::SlowPath);

        // Same megaflow but a different transport connection: megaflow hit.
        let (v2, l2) = dp.process_traced(&mut pkt(80, 2000));
        assert_eq!(v2.outputs, vec![1]);
        assert_eq!(l2, CacheLevel::Megaflow);

        // Same exact connection again: microflow hit.
        let (v3, l3) = dp.process_traced(&mut pkt(80, 2000));
        assert_eq!(v3.outputs, vec![1]);
        assert_eq!(l3, CacheLevel::Microflow);

        assert_eq!(dp.stats.total(), 3);
        let (micro, mega, slow) = dp.stats.hit_fractions();
        assert!((micro - 1.0 / 3.0).abs() < 1e-9);
        assert!((mega - 1.0 / 3.0).abs() < 1e-9);
        assert!((slow - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn verdicts_agree_with_reference_interpreter() {
        let dp = OvsDatapath::new(port_pipeline());
        let reference = port_pipeline();
        for (dst, src) in [(80u16, 1u16), (443, 2), (22, 3), (80, 4), (443, 2)] {
            let mut a = pkt(dst, src);
            let mut b = a.clone();
            assert_eq!(
                dp.process(&mut a).decision(),
                reference.process(&mut b).decision(),
                "dst {dst} src {src}"
            );
        }
    }

    #[test]
    fn batch_agrees_with_sequential_processing() {
        let batch_dp = OvsDatapath::new(port_pipeline());
        let seq_dp = OvsDatapath::new(port_pipeline());
        // Mix of repeated flows (grouping), cache misses and hits, spanning
        // more than one burst.
        let mut batch: Vec<Packet> = (0..BURST_SIZE as u16 * 2 + 7)
            .map(|i| pkt([80, 443, 22][usize::from(i) % 3], 1000 + i / 5))
            .collect();
        let mut sequential = batch.clone();

        let mut verdicts = Vec::new();
        batch_dp.process_batch_into(&mut batch, &mut verdicts);
        assert_eq!(verdicts.len(), batch.len());
        for (i, (p, v)) in sequential.iter_mut().zip(&verdicts).enumerate() {
            assert_eq!(seq_dp.process(p).decision(), v.decision(), "packet {i}");
        }
        for (i, (a, b)) in batch.iter().zip(&sequential).enumerate() {
            assert_eq!(a.data(), b.data(), "packet {i} bytes");
        }
        // Both datapaths saw every packet.
        assert_eq!(batch_dp.stats.total(), batch.len() as u64);
        assert_eq!(seq_dp.stats.total(), batch.len() as u64);
    }

    #[test]
    fn batch_groups_flows_to_one_cache_resolution() {
        let dp = OvsDatapath::new(port_pipeline());
        // Warm the caches.
        dp.process(&mut pkt(80, 7));
        let lookups_before = {
            let mega = dp.megaflow.lock();
            mega.lookups
        };
        // A full burst of the *same* flow: the megaflow cache must be
        // consulted at most once (the EMC answers it after warm-up).
        let mut burst: Vec<Packet> = (0..BURST_SIZE).map(|_| pkt(80, 7)).collect();
        let verdicts = dp.process_batch(&mut burst);
        assert!(verdicts.iter().all(|v| v.outputs == vec![1]));
        let lookups_after = {
            let mega = dp.megaflow.lock();
            mega.lookups
        };
        assert!(
            lookups_after - lookups_before <= 1,
            "burst of one flow caused {} megaflow lookups",
            lookups_after - lookups_before
        );
    }

    #[test]
    fn flow_mod_invalidates_caches_and_changes_behaviour() {
        let dp = OvsDatapath::new(port_pipeline());
        assert_eq!(dp.process(&mut pkt(80, 1)).outputs, vec![1]);
        assert!(dp.megaflow_count() > 0);

        // Redirect port 80 traffic to port 9.
        dp.flow_mod(&FlowMod::add(
            0,
            FlowMatch::any().with_exact(Field::TcpDst, 80),
            100,
            terminal_actions(vec![Action::Output(9)]),
        ))
        .unwrap();
        assert_eq!(dp.megaflow_count(), 0, "megaflow cache must be flushed");
        assert_eq!(dp.microflow_count(), 0, "microflow cache must be flushed");
        assert_eq!(dp.process(&mut pkt(80, 1)).outputs, vec![9]);
    }

    #[test]
    fn flow_mod_spares_disjoint_cached_flows() {
        // The delta-aware path: adding a rule on a port no cached flow uses
        // must keep the unrelated megaflows and EMC entries alive (this
        // pipeline rewrites nothing, so the delta is selective).
        let dp = OvsDatapath::new(port_pipeline());
        assert_eq!(dp.process(&mut pkt(80, 1)).outputs, vec![1]);
        assert_eq!(dp.process(&mut pkt(80, 1)).outputs, vec![1]); // EMC warm
        let megaflows = dp.megaflow_count();
        let microflows = dp.microflow_count();
        assert!(megaflows > 0 && microflows > 0);

        dp.flow_mod(&FlowMod::add(
            0,
            FlowMatch::any().with_exact(Field::TcpDst, 8080),
            95,
            terminal_actions(vec![Action::Output(7)]),
        ))
        .unwrap();
        assert_eq!(dp.megaflow_count(), megaflows, "disjoint megaflows flushed");
        assert_eq!(
            dp.microflow_count(),
            microflows,
            "disjoint EMC entries flushed"
        );

        // The surviving cached flow still answers from the caches...
        let slow_before = dp.stats.slowpath_hits.packets();
        assert_eq!(dp.process(&mut pkt(80, 1)).outputs, vec![1]);
        assert_eq!(dp.stats.slowpath_hits.packets(), slow_before);
        // ...and the new rule takes effect for its own traffic.
        assert_eq!(dp.process(&mut pkt(8080, 1)).outputs, vec![7]);
    }

    #[test]
    fn no_op_flow_mod_invalidates_nothing() {
        // A non-strict delete matching zero entries changes nothing: both
        // caches must survive untouched.
        let dp = OvsDatapath::new(port_pipeline());
        dp.process(&mut pkt(80, 1));
        dp.process(&mut pkt(80, 1));
        let megaflows = dp.megaflow_count();
        let microflows = dp.microflow_count();
        assert!(megaflows > 0 && microflows > 0);
        let effect = dp
            .flow_mod(&FlowMod::delete(
                0,
                FlowMatch::any().with_exact(Field::TcpDst, 12345),
            ))
            .unwrap();
        assert_eq!(effect.entries_touched(), 0);
        assert_eq!(dp.megaflow_count(), megaflows);
        assert_eq!(dp.microflow_count(), microflows);
    }

    #[test]
    fn flow_mod_on_rewritten_field_falls_back_to_full_flush() {
        // A pipeline that rewrites Ipv4Dst mid-traversal makes matches on
        // Ipv4Dst unverifiable against extraction-time keys: the delta path
        // must refuse and flush everything.
        let mut p = Pipeline::with_tables(2);
        p.table_mut(0).unwrap().insert(openflow::FlowEntry::new(
            FlowMatch::any(),
            10,
            openflow::instruction::actions_then_goto(
                vec![Action::SetField(Field::Ipv4Dst, 0x0a00_0001)],
                1,
            ),
        ));
        let t1 = p.table_mut(1).unwrap();
        t1.insert(openflow::FlowEntry::new(
            FlowMatch::any().with_exact(Field::Ipv4Dst, 0x0a00_0001u128),
            10,
            terminal_actions(vec![Action::Output(1)]),
        ));
        t1.insert(openflow::FlowEntry::new(FlowMatch::any(), 1, vec![]));
        let dp = OvsDatapath::new(p);
        dp.process(&mut pkt(80, 1));
        assert!(dp.megaflow_count() > 0);

        dp.flow_mod(&FlowMod::add(
            1,
            FlowMatch::any().with_exact(Field::Ipv4Dst, 0x0a00_0002u128),
            20,
            terminal_actions(vec![Action::Output(2)]),
        ))
        .unwrap();
        assert_eq!(
            dp.megaflow_count(),
            0,
            "rewritten-field delta must full-flush"
        );
    }

    #[test]
    fn replace_pipeline_with_delta_keeps_disjoint_flows() {
        let dp = OvsDatapath::new(port_pipeline());
        assert_eq!(dp.process(&mut pkt(80, 1)).outputs, vec![1]);
        assert_eq!(dp.process(&mut pkt(443, 1)).outputs, vec![2]);
        let megaflows = dp.megaflow_count();

        // The control plane redirects port 443 and ships the delta.
        let mut replacement = port_pipeline();
        replacement
            .table_mut(0)
            .unwrap()
            .insert(openflow::FlowEntry::new(
                FlowMatch::any().with_exact(Field::TcpDst, 443),
                90,
                terminal_actions(vec![Action::Output(9)]),
            ));
        let delta = vec![Arc::new(vec![
            FlowMatch::any().with_exact(Field::TcpDst, 443)
        ])];
        dp.replace_pipeline_with_delta(replacement, &delta);

        assert!(dp.megaflow_count() < megaflows, "443 megaflow must go");
        assert!(dp.megaflow_count() > 0, "port-80 megaflow must survive");
        assert_eq!(dp.process(&mut pkt(443, 1)).outputs, vec![9]);
        assert_eq!(dp.process(&mut pkt(80, 1)).outputs, vec![1]);
    }

    #[test]
    fn replace_pipeline_swaps_behaviour_and_flushes_caches() {
        let dp = OvsDatapath::new(port_pipeline());
        assert_eq!(dp.process(&mut pkt(80, 1)).outputs, vec![1]);
        assert!(dp.megaflow_count() > 0);

        let mut replacement = Pipeline::with_tables(1);
        let t = replacement.table_mut(0).unwrap();
        t.insert(openflow::FlowEntry::new(
            FlowMatch::any().with_exact(Field::TcpDst, 80),
            100,
            terminal_actions(vec![Action::Output(7)]),
        ));
        t.insert(openflow::FlowEntry::new(FlowMatch::any(), 1, vec![]));
        dp.replace_pipeline(replacement);
        assert_eq!(dp.megaflow_count(), 0, "megaflow cache must be flushed");
        assert_eq!(dp.microflow_count(), 0, "microflow cache must be flushed");
        assert_eq!(dp.process(&mut pkt(80, 1)).outputs, vec![7]);
    }

    #[test]
    fn megaflow_aggregates_across_connections() {
        let dp = OvsDatapath::new(port_pipeline());
        for src in 0..100u16 {
            dp.process(&mut pkt(80, 40000 + src));
        }
        // All 100 connections are covered by a single megaflow: the port-80
        // rule plus the rules examined above it only pin tcp_dst bits.
        assert_eq!(dp.stats.slowpath_hits.packets(), 1);
        assert!(dp.megaflow_count() <= 2);
    }

    #[test]
    fn controller_punts_counted() {
        let mut p = Pipeline::with_tables(1);
        p.table_mut(0).unwrap().miss = openflow::TableMissBehavior::ToController;
        let dp = OvsDatapath::new(p);
        let (v, level) = dp.process_traced(&mut pkt(80, 1));
        assert!(v.to_controller);
        assert_eq!(level, CacheLevel::SlowPath);
        assert_eq!(dp.stats.controller_punts.packets(), 1);
        assert_eq!(dp.controller_packet_ins(), 1);
    }

    #[test]
    fn microflow_can_be_disabled() {
        let config = OvsConfig {
            use_microflow: false,
            ..OvsConfig::default()
        };
        let dp = OvsDatapath::with_config(port_pipeline(), config, Box::new(NullController::new()));
        dp.process(&mut pkt(80, 7));
        dp.process(&mut pkt(80, 7));
        assert_eq!(dp.stats.microflow_hits.packets(), 0);
        assert_eq!(dp.stats.megaflow_hits.packets(), 1);
    }
}
