//! The four-level OVS-architecture datapath.

use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use netdev::Counters;
use openflow::action::{apply_action_list, OutputKind};
use openflow::flow_mod::{apply_flow_mod, FlowModEffect, FlowModError};
use openflow::{
    Action, Controller, ControllerDecision, FlowKey, FlowMod, NullController, PacketIn,
    PacketInReason, Pipeline, Verdict,
};
use pkt::Packet;

use crate::megaflow::MegaflowCache;
use crate::microflow::MicroflowCache;
use crate::slowpath::{SlowPath, SlowPathConfig};

/// Which level of the hierarchy answered a packet. Mirrors Fig. 14's series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLevel {
    /// The exact-match microflow cache.
    Microflow,
    /// The wildcard megaflow cache.
    Megaflow,
    /// The full pipeline in `vswitchd`.
    SlowPath,
}

/// Per-level hit statistics.
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Packets answered by the microflow cache.
    pub microflow_hits: Counters,
    /// Packets answered by the megaflow cache.
    pub megaflow_hits: Counters,
    /// Packets that required slow-path classification.
    pub slowpath_hits: Counters,
    /// Packets additionally punted to the controller.
    pub controller_punts: Counters,
}

impl CacheStats {
    /// Total packets processed.
    pub fn total(&self) -> u64 {
        self.microflow_hits.packets() + self.megaflow_hits.packets() + self.slowpath_hits.packets()
    }

    /// Fraction of packets answered at each level, as
    /// `(microflow, megaflow, slowpath)`; the series of Fig. 14.
    pub fn hit_fractions(&self) -> (f64, f64, f64) {
        let total = self.total() as f64;
        if total == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.microflow_hits.packets() as f64 / total,
            self.megaflow_hits.packets() as f64 / total,
            self.slowpath_hits.packets() as f64 / total,
        )
    }
}

/// Configuration of the cache hierarchy.
#[derive(Debug, Clone, Copy)]
pub struct OvsConfig {
    /// Microflow (EMC) capacity in entries.
    pub microflow_entries: usize,
    /// Megaflow cache capacity in entries.
    pub megaflow_entries: usize,
    /// Slow-path classifier configuration.
    pub slowpath: SlowPathConfig,
    /// If false, the microflow cache is bypassed entirely (useful for
    /// isolating megaflow behaviour in tests and ablations).
    pub use_microflow: bool,
}

impl Default for OvsConfig {
    fn default() -> Self {
        OvsConfig {
            microflow_entries: MicroflowCache::DEFAULT_ENTRIES,
            megaflow_entries: MegaflowCache::DEFAULT_MAX_ENTRIES,
            slowpath: SlowPathConfig::default(),
            use_microflow: true,
        }
    }
}

/// The flow-caching datapath: microflow cache → megaflow cache → slow path →
/// controller.
pub struct OvsDatapath {
    pipeline: Arc<RwLock<Pipeline>>,
    microflow: Mutex<MicroflowCache>,
    megaflow: Mutex<MegaflowCache>,
    slowpath: SlowPath,
    controller: Mutex<Box<dyn Controller>>,
    config: OvsConfig,
    /// Per-level hit statistics.
    pub stats: CacheStats,
}

impl OvsDatapath {
    /// Creates a datapath over `pipeline` with default configuration and a
    /// drop-all controller.
    pub fn new(pipeline: Pipeline) -> Self {
        Self::with_config(
            pipeline,
            OvsConfig::default(),
            Box::new(NullController::new()),
        )
    }

    /// Creates a datapath with explicit configuration and controller.
    pub fn with_config(
        pipeline: Pipeline,
        config: OvsConfig,
        controller: Box<dyn Controller>,
    ) -> Self {
        OvsDatapath {
            pipeline: Arc::new(RwLock::new(pipeline)),
            microflow: Mutex::new(MicroflowCache::with_capacity(config.microflow_entries)),
            megaflow: Mutex::new(MegaflowCache::with_capacity(config.megaflow_entries)),
            slowpath: SlowPath::with_config(config.slowpath),
            controller: Mutex::new(controller),
            config,
            stats: CacheStats::default(),
        }
    }

    /// Shared handle to the pipeline.
    pub fn pipeline(&self) -> Arc<RwLock<Pipeline>> {
        Arc::clone(&self.pipeline)
    }

    /// Applies a flow-mod and invalidates both caches — OVS's brute-force
    /// strategy ("invalidate the entire cache after essentially all changes").
    pub fn flow_mod(&self, fm: &FlowMod) -> Result<FlowModEffect, FlowModError> {
        let effect = apply_flow_mod(&mut self.pipeline.write(), fm)?;
        self.invalidate_caches();
        Ok(effect)
    }

    /// Invalidates the microflow and megaflow caches.
    pub fn invalidate_caches(&self) {
        self.microflow.lock().invalidate();
        self.megaflow.lock().invalidate();
    }

    /// Number of megaflows currently cached.
    pub fn megaflow_count(&self) -> usize {
        self.megaflow.lock().len()
    }

    /// Number of live microflow entries currently cached.
    pub fn microflow_count(&self) -> usize {
        self.microflow.lock().live_entries()
    }

    /// Processes one packet, returning the verdict and the level that
    /// answered it.
    pub fn process_traced(&self, packet: &mut Packet) -> (Verdict, CacheLevel) {
        // Level 0 cost every packet pays in OVS: full key extraction. The
        // caches are keyed on this *original* key: the slow path may rewrite
        // the packet (and its working key) while classifying, but later
        // packets of the same flow arrive un-rewritten and must still hit.
        let mut key = FlowKey::extract(packet);
        let original_key = key;

        // 1. Microflow cache.
        if self.config.use_microflow {
            let cached = self.microflow.lock().lookup(&key);
            if let Some(actions) = cached {
                self.stats.microflow_hits.record(packet.len());
                let verdict = replay(&actions, packet, &mut key);
                return (verdict, CacheLevel::Microflow);
            }
        }

        // 2. Megaflow cache.
        let cached = self.megaflow.lock().lookup(&key);
        if let Some(actions) = cached {
            self.stats.megaflow_hits.record(packet.len());
            if self.config.use_microflow {
                self.microflow
                    .lock()
                    .insert(original_key, Arc::clone(&actions));
            }
            let verdict = replay(&actions, packet, &mut key);
            return (verdict, CacheLevel::Megaflow);
        }

        // 3. Slow path: classify on the real pipeline, install the megaflow.
        self.stats.slowpath_hits.record(packet.len());
        let result = {
            let pipeline = self.pipeline.read();
            self.slowpath.classify(&pipeline, packet, &mut key)
        };
        self.megaflow.lock().insert(
            &original_key,
            result.mask.clone(),
            Arc::clone(&result.actions),
        );
        if self.config.use_microflow {
            self.microflow
                .lock()
                .insert(original_key, Arc::clone(&result.actions));
        }

        // 4. Controller, if the pipeline punted.
        if result.verdict.to_controller {
            self.stats.controller_punts.record(packet.len());
            self.handle_packet_in(packet.clone());
        }
        (result.verdict, CacheLevel::SlowPath)
    }

    /// Processes one packet, returning only the verdict.
    pub fn process(&self, packet: &mut Packet) -> Verdict {
        self.process_traced(packet).0
    }

    /// Processes a batch of packets.
    pub fn process_batch(&self, packets: &mut [Packet]) -> Vec<Verdict> {
        packets.iter_mut().map(|p| self.process(p)).collect()
    }

    fn handle_packet_in(&self, packet: Packet) {
        let decisions = {
            let mut controller = self.controller.lock();
            controller.packet_in(PacketIn {
                packet,
                reason: PacketInReason::NoMatch,
                table_id: 0,
            })
        };
        for decision in decisions {
            match decision {
                ControllerDecision::FlowMod(fm) => {
                    let _ = self.flow_mod(&fm);
                }
                ControllerDecision::PacketOut(mut po) => {
                    let mut key = FlowKey::extract(&po.packet);
                    let _ = apply_action_list(&po.actions, &mut po.packet, &mut key);
                }
                ControllerDecision::Drop => {}
            }
        }
    }

    /// Number of packet-ins the controller has handled.
    pub fn controller_packet_ins(&self) -> u64 {
        self.controller.lock().packet_in_count()
    }
}

/// Replays a cached action program on a packet and converts the outputs into
/// a [`Verdict`].
fn replay(actions: &[Action], packet: &mut Packet, key: &mut FlowKey) -> Verdict {
    let mut verdict = Verdict::default();
    for out in apply_action_list(actions, packet, key) {
        match out {
            OutputKind::Port(p) => verdict.outputs.push(p),
            OutputKind::Flood => verdict.flood = true,
            OutputKind::Controller => verdict.to_controller = true,
            OutputKind::Drop => {}
        }
    }
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;
    use openflow::flow_match::FlowMatch;
    use openflow::instruction::terminal_actions;
    use openflow::Field;
    use pkt::builder::PacketBuilder;

    fn port_pipeline() -> Pipeline {
        let mut p = Pipeline::with_tables(1);
        let t = p.table_mut(0).unwrap();
        t.insert(openflow::FlowEntry::new(
            FlowMatch::any().with_exact(Field::TcpDst, 80),
            100,
            terminal_actions(vec![Action::Output(1)]),
        ));
        t.insert(openflow::FlowEntry::new(
            FlowMatch::any().with_exact(Field::TcpDst, 443),
            90,
            terminal_actions(vec![Action::Output(2)]),
        ));
        t.insert(openflow::FlowEntry::new(FlowMatch::any(), 1, vec![]));
        p
    }

    fn pkt(port: u16, src: u16) -> Packet {
        PacketBuilder::tcp().tcp_dst(port).tcp_src(src).build()
    }

    #[test]
    fn hierarchy_progression_slowpath_then_megaflow_then_microflow() {
        let dp = OvsDatapath::new(port_pipeline());

        // First packet of a flow: slow path.
        let (v1, l1) = dp.process_traced(&mut pkt(80, 1000));
        assert_eq!(v1.outputs, vec![1]);
        assert_eq!(l1, CacheLevel::SlowPath);

        // Same megaflow but a different transport connection: megaflow hit.
        let (v2, l2) = dp.process_traced(&mut pkt(80, 2000));
        assert_eq!(v2.outputs, vec![1]);
        assert_eq!(l2, CacheLevel::Megaflow);

        // Same exact connection again: microflow hit.
        let (v3, l3) = dp.process_traced(&mut pkt(80, 2000));
        assert_eq!(v3.outputs, vec![1]);
        assert_eq!(l3, CacheLevel::Microflow);

        assert_eq!(dp.stats.total(), 3);
        let (micro, mega, slow) = dp.stats.hit_fractions();
        assert!((micro - 1.0 / 3.0).abs() < 1e-9);
        assert!((mega - 1.0 / 3.0).abs() < 1e-9);
        assert!((slow - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn verdicts_agree_with_reference_interpreter() {
        let dp = OvsDatapath::new(port_pipeline());
        let reference = port_pipeline();
        for (dst, src) in [(80u16, 1u16), (443, 2), (22, 3), (80, 4), (443, 2)] {
            let mut a = pkt(dst, src);
            let mut b = a.clone();
            assert_eq!(
                dp.process(&mut a).decision(),
                reference.process(&mut b).decision(),
                "dst {dst} src {src}"
            );
        }
    }

    #[test]
    fn flow_mod_invalidates_caches_and_changes_behaviour() {
        let dp = OvsDatapath::new(port_pipeline());
        assert_eq!(dp.process(&mut pkt(80, 1)).outputs, vec![1]);
        assert!(dp.megaflow_count() > 0);

        // Redirect port 80 traffic to port 9.
        dp.flow_mod(&FlowMod::add(
            0,
            FlowMatch::any().with_exact(Field::TcpDst, 80),
            100,
            terminal_actions(vec![Action::Output(9)]),
        ))
        .unwrap();
        assert_eq!(dp.megaflow_count(), 0, "megaflow cache must be flushed");
        assert_eq!(dp.microflow_count(), 0, "microflow cache must be flushed");
        assert_eq!(dp.process(&mut pkt(80, 1)).outputs, vec![9]);
    }

    #[test]
    fn megaflow_aggregates_across_connections() {
        let dp = OvsDatapath::new(port_pipeline());
        for src in 0..100u16 {
            dp.process(&mut pkt(80, 40000 + src));
        }
        // All 100 connections are covered by a single megaflow: the port-80
        // rule plus the rules examined above it only pin tcp_dst bits.
        assert_eq!(dp.stats.slowpath_hits.packets(), 1);
        assert!(dp.megaflow_count() <= 2);
    }

    #[test]
    fn controller_punts_counted() {
        let mut p = Pipeline::with_tables(1);
        p.table_mut(0).unwrap().miss = openflow::TableMissBehavior::ToController;
        let dp = OvsDatapath::new(p);
        let (v, level) = dp.process_traced(&mut pkt(80, 1));
        assert!(v.to_controller);
        assert_eq!(level, CacheLevel::SlowPath);
        assert_eq!(dp.stats.controller_punts.packets(), 1);
        assert_eq!(dp.controller_packet_ins(), 1);
    }

    #[test]
    fn microflow_can_be_disabled() {
        let config = OvsConfig {
            use_microflow: false,
            ..OvsConfig::default()
        };
        let dp = OvsDatapath::with_config(port_pipeline(), config, Box::new(NullController::new()));
        dp.process(&mut pkt(80, 7));
        dp.process(&mut pkt(80, 7));
        assert_eq!(dp.stats.microflow_hits.packets(), 0);
        assert_eq!(dp.stats.megaflow_hits.packets(), 1);
    }
}
