//! The direct datapath: a switch runtime that classifies every packet
//! directly on the flow tables.
//!
//! This is the reference-switch strategy of §2.1 of the paper ("a direct
//! datapath in the worst case loops through all flow entries in all flow
//! tables"). It is deliberately naive — its value is as ground truth and as
//! the lower baseline: the OVS caches (`ovsdp`) and the compiled templates
//! (`eswitch`) must agree with it packet-for-packet while doing far less work.

use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use netdev::Counters;
use pkt::Packet;

use crate::controller::{Controller, ControllerDecision, NullController};
use crate::flow_mod::{apply_flow_mod, FlowMod, FlowModEffect, FlowModError};
use crate::key::FlowKey;
use crate::messages::{PacketIn, PacketInReason};
use crate::pipeline::{Pipeline, Verdict};

/// A switch built around direct (uncached, uncompiled) pipeline lookup.
pub struct DirectDatapath {
    pipeline: Arc<RwLock<Pipeline>>,
    controller: Mutex<Box<dyn Controller>>,
    /// Packets processed.
    pub processed: Counters,
    /// Packets punted to the controller.
    pub punted: Counters,
}

impl DirectDatapath {
    /// Creates a datapath over the given pipeline with a drop-all controller.
    pub fn new(pipeline: Pipeline) -> Self {
        Self::with_controller(pipeline, Box::new(NullController::new()))
    }

    /// Creates a datapath with an explicit controller application.
    pub fn with_controller(pipeline: Pipeline, controller: Box<dyn Controller>) -> Self {
        DirectDatapath {
            pipeline: Arc::new(RwLock::new(pipeline)),
            controller: Mutex::new(controller),
            processed: Counters::new(),
            punted: Counters::new(),
        }
    }

    /// Shared handle to the pipeline (read-mostly).
    pub fn pipeline(&self) -> Arc<RwLock<Pipeline>> {
        Arc::clone(&self.pipeline)
    }

    /// Applies a flow-mod to the pipeline.
    pub fn flow_mod(&self, fm: &FlowMod) -> Result<FlowModEffect, FlowModError> {
        apply_flow_mod(&mut self.pipeline.write(), fm)
    }

    /// Processes a single packet and returns the forwarding verdict.
    ///
    /// Packets punted to the controller are handed to the controller
    /// application synchronously; any flow-mods it returns are applied before
    /// this call returns (reactive provisioning).
    pub fn process(&self, packet: &mut Packet) -> Verdict {
        self.processed.record(packet.len());
        let verdict = {
            let pipeline = self.pipeline.read();
            pipeline.process(packet)
        };
        if verdict.to_controller {
            self.punted.record(packet.len());
            self.handle_packet_in(packet.clone(), PacketInReason::NoMatch);
        }
        verdict
    }

    /// Processes a batch of packets, returning per-packet verdicts.
    pub fn process_batch(&self, packets: &mut [Packet]) -> Vec<Verdict> {
        packets.iter_mut().map(|p| self.process(p)).collect()
    }

    /// Runs the controller application for a punted packet.
    fn handle_packet_in(&self, packet: Packet, reason: PacketInReason) {
        let decisions = {
            let mut controller = self.controller.lock();
            controller.packet_in(PacketIn::new(packet, reason, 0))
        };
        for decision in decisions {
            match decision {
                ControllerDecision::FlowMod(fm) => {
                    let _ = self.flow_mod(&fm);
                }
                ControllerDecision::PacketOut(mut po) => {
                    // Re-inject: apply the action list directly.
                    let mut key = FlowKey::extract(&po.packet);
                    let _ = crate::action::apply_action_list(&po.actions, &mut po.packet, &mut key);
                }
                ControllerDecision::Drop => {}
            }
        }
    }

    /// Number of packet-in events the controller has handled.
    pub fn controller_packet_ins(&self) -> u64 {
        self.controller.lock().packet_in_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::controller::FnController;
    use crate::field::Field;
    use crate::flow_match::FlowMatch;
    use crate::instruction::terminal_actions;
    use crate::table::TableMissBehavior;
    use pkt::builder::PacketBuilder;

    fn l2_pipeline() -> Pipeline {
        let mut p = Pipeline::with_tables(1);
        let t = p.table_mut(0).unwrap();
        t.miss = TableMissBehavior::ToController;
        t.insert(crate::entry::FlowEntry::new(
            FlowMatch::any().with_exact(Field::EthDst, 0x0200_0000_0001),
            10,
            terminal_actions(vec![Action::Output(1)]),
        ));
        p
    }

    #[test]
    fn known_mac_is_forwarded() {
        let dp = DirectDatapath::new(l2_pipeline());
        let mut pkt = PacketBuilder::udp().eth_dst([2, 0, 0, 0, 0, 1]).build();
        let verdict = dp.process(&mut pkt);
        assert_eq!(verdict.outputs, vec![1]);
        assert_eq!(dp.processed.packets(), 1);
        assert_eq!(dp.punted.packets(), 0);
    }

    #[test]
    fn unknown_mac_punted_to_controller() {
        let dp = DirectDatapath::new(l2_pipeline());
        let mut pkt = PacketBuilder::udp().eth_dst([2, 0, 0, 0, 0, 9]).build();
        let verdict = dp.process(&mut pkt);
        assert!(verdict.to_controller);
        assert_eq!(dp.punted.packets(), 1);
        assert_eq!(dp.controller_packet_ins(), 1);
    }

    #[test]
    fn reactive_controller_installs_rules() {
        // The controller installs a forwarding rule for every punted MAC, so
        // the second packet to the same destination is switched in the fast
        // path without controller involvement.
        let controller = FnController::new(|pi| {
            let key = FlowKey::extract(&pi.packet);
            vec![ControllerDecision::FlowMod(FlowMod::add(
                0,
                FlowMatch::any().with_exact(Field::EthDst, u128::from(key.eth_dst)),
                10,
                terminal_actions(vec![Action::Output(2)]),
            ))]
        });
        let dp = DirectDatapath::with_controller(l2_pipeline(), Box::new(controller));

        let mut first = PacketBuilder::udp().eth_dst([2, 0, 0, 0, 0, 9]).build();
        assert!(dp.process(&mut first).to_controller);

        let mut second = PacketBuilder::udp().eth_dst([2, 0, 0, 0, 0, 9]).build();
        let verdict = dp.process(&mut second);
        assert_eq!(verdict.outputs, vec![2]);
        assert!(!verdict.to_controller);
        assert_eq!(dp.controller_packet_ins(), 1);
    }

    #[test]
    fn batch_processing_matches_single() {
        let dp = DirectDatapath::new(l2_pipeline());
        let mut packets: Vec<Packet> = (0..10)
            .map(|i| {
                PacketBuilder::udp()
                    .eth_dst([2, 0, 0, 0, 0, u8::from(i % 2 == 0)])
                    .build()
            })
            .collect();
        let verdicts = dp.process_batch(&mut packets);
        assert_eq!(verdicts.len(), 10);
        assert_eq!(verdicts.iter().filter(|v| v.outputs == vec![1]).count(), 5);
    }
}
