//! Flow keys — the fully extracted header-field tuple of one packet.
//!
//! The slow-path classifiers (the direct datapath here and the OVS
//! `vswitchd`-style classifier in `ovsdp`) do not rummage through the raw
//! frame for every rule; they extract all interesting fields once into a
//! [`FlowKey`] (OVS calls the equivalent structure `struct flow` /
//! `miniflow`) and then match rules against that. The ESWITCH compiled
//! datapath deliberately does *not* use this type — its matcher templates
//! load only the fields the installed rules actually need, straight from the
//! frame — which is one of the sources of its speed advantage.

use pkt::parser::{parse, ParseDepth, ParsedHeaders, ProtoMask};
use pkt::Packet;

use crate::field::{Field, FieldValue};

/// Every match-relevant field of one packet, extracted eagerly.
///
/// Fields that are absent from the packet (e.g. TCP ports of an ARP frame)
/// are represented as `None`; a match on such a field simply fails, per the
/// OpenFlow prerequisite rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct FlowKey {
    /// Ingress port.
    pub in_port: u32,
    /// Pipeline metadata register (written by `WriteMetadata`).
    pub metadata: u64,
    /// Tunnel id metadata.
    pub tunnel_id: u64,
    /// Destination MAC (48 bits).
    pub eth_dst: u64,
    /// Source MAC (48 bits).
    pub eth_src: u64,
    /// EtherType after any VLAN tags.
    pub eth_type: u16,
    /// VLAN VID, or `None` if untagged.
    pub vlan_vid: Option<u16>,
    /// VLAN PCP, or `None` if untagged.
    pub vlan_pcp: Option<u8>,
    /// IPv4/IPv6 DSCP.
    pub ip_dscp: Option<u8>,
    /// IPv4/IPv6 ECN.
    pub ip_ecn: Option<u8>,
    /// IP protocol / next header.
    pub ip_proto: Option<u8>,
    /// IPv4 source address.
    pub ipv4_src: Option<u32>,
    /// IPv4 destination address.
    pub ipv4_dst: Option<u32>,
    /// IPv6 source address.
    pub ipv6_src: Option<u128>,
    /// IPv6 destination address.
    pub ipv6_dst: Option<u128>,
    /// TCP source port.
    pub tcp_src: Option<u16>,
    /// TCP destination port.
    pub tcp_dst: Option<u16>,
    /// UDP source port.
    pub udp_src: Option<u16>,
    /// UDP destination port.
    pub udp_dst: Option<u16>,
    /// ICMPv4 type.
    pub icmpv4_type: Option<u8>,
    /// ICMPv4 code.
    pub icmpv4_code: Option<u8>,
    /// ARP opcode.
    pub arp_op: Option<u16>,
    /// ARP sender protocol address.
    pub arp_spa: Option<u32>,
    /// ARP target protocol address.
    pub arp_tpa: Option<u32>,
    /// ARP sender hardware address.
    pub arp_sha: Option<u64>,
    /// ARP target hardware address.
    pub arp_tha: Option<u64>,
}

impl FlowKey {
    /// Extracts a key from a packet, parsing as deep as L4.
    pub fn extract(packet: &Packet) -> Self {
        let headers = parse(packet.data(), ParseDepth::L4);
        Self::from_parsed(packet, &headers)
    }

    /// Extracts a key from a packet using an existing parse result.
    ///
    /// This is the eager whole-tuple extraction every OVS-architecture packet
    /// pays (the paper's "excessive packet classification" cost), so it is
    /// written as one bounds check per protocol layer followed by fixed-index
    /// loads, rather than one checked accessor per field.
    #[inline]
    pub fn from_parsed(packet: &Packet, headers: &ParsedHeaders) -> Self {
        let frame = packet.data();
        let mut key = FlowKey {
            in_port: packet.in_port,
            eth_type: headers.ethertype,
            ..Default::default()
        };
        let l2 = usize::from(headers.l2_offset);
        if let Some(eth) = frame.get(l2..l2 + 12) {
            key.eth_dst =
                u64::from_be_bytes([0, 0, eth[0], eth[1], eth[2], eth[3], eth[4], eth[5]]);
            key.eth_src =
                u64::from_be_bytes([0, 0, eth[6], eth[7], eth[8], eth[9], eth[10], eth[11]]);
        }
        if headers.has_vlan() {
            key.vlan_vid = Some(headers.vlan_vid);
            key.vlan_pcp = Some(headers.vlan_pcp);
        }
        if headers.has_ipv4() {
            let l3 = usize::from(headers.l3_offset);
            key.ip_proto = Some(headers.ip_proto);
            if let Some(ip) = frame.get(l3..l3 + 20) {
                key.ip_dscp = Some(ip[1] >> 2);
                key.ip_ecn = Some(ip[1] & 0x03);
                key.ipv4_src = Some(u32::from_be_bytes([ip[12], ip[13], ip[14], ip[15]]));
                key.ipv4_dst = Some(u32::from_be_bytes([ip[16], ip[17], ip[18], ip[19]]));
            }
        } else if headers.mask.contains(ProtoMask::IPV6) {
            let l3 = usize::from(headers.l3_offset);
            key.ip_proto = Some(headers.ip_proto);
            if let Some(hdr) = frame.get(l3..l3 + 40) {
                key.ip_dscp = Some(((hdr[0] << 4) | (hdr[1] >> 4)) >> 2);
                key.ip_ecn = Some(((hdr[0] << 4) | (hdr[1] >> 4)) & 0x03);
                key.ipv6_src = Some(u128::from_be_bytes(
                    hdr[8..24].try_into().expect("16 bytes"),
                ));
                key.ipv6_dst = Some(u128::from_be_bytes(
                    hdr[24..40].try_into().expect("16 bytes"),
                ));
            }
        } else if headers.mask.contains(ProtoMask::ARP) {
            // `headers` may describe a longer frame than `packet` currently
            // holds (truncated capture, caller reusing a stale parse), so the
            // slice must be checked — `&frame[l3..]` would panic.
            let l3 = usize::from(headers.l3_offset);
            if let Some(arp) = frame.get(l3..).and_then(pkt::arp::ArpPacket::parse) {
                key.arp_op = Some(arp.op.to_u16());
                key.arp_spa = Some(arp.sender_ip.to_u32());
                key.arp_tpa = Some(arp.target_ip.to_u32());
                key.arp_sha = Some(arp.sender_mac.to_u64());
                key.arp_tha = Some(arp.target_mac.to_u64());
            }
        }
        if headers.has_tcp() {
            let l4 = usize::from(headers.l4_offset);
            if let Some(ports) = frame.get(l4..l4 + 4) {
                key.tcp_src = Some(u16::from_be_bytes([ports[0], ports[1]]));
                key.tcp_dst = Some(u16::from_be_bytes([ports[2], ports[3]]));
            }
        } else if headers.has_udp() {
            let l4 = usize::from(headers.l4_offset);
            if let Some(ports) = frame.get(l4..l4 + 4) {
                key.udp_src = Some(u16::from_be_bytes([ports[0], ports[1]]));
                key.udp_dst = Some(u16::from_be_bytes([ports[2], ports[3]]));
            }
        } else if headers.mask.contains(ProtoMask::ICMP) {
            let l4 = usize::from(headers.l4_offset);
            key.icmpv4_type = frame.get(l4).copied();
            key.icmpv4_code = frame.get(l4 + 1).copied();
        }
        key
    }

    /// Reads the value of `field` from the key, or `None` if the packet does
    /// not carry the field.
    #[inline]
    pub fn get(&self, field: Field) -> Option<FieldValue> {
        match field {
            Field::InPort | Field::InPhyPort => Some(FieldValue::from(self.in_port)),
            Field::Metadata => Some(FieldValue::from(self.metadata)),
            Field::TunnelId => Some(FieldValue::from(self.tunnel_id)),
            Field::EthDst => Some(FieldValue::from(self.eth_dst)),
            Field::EthSrc => Some(FieldValue::from(self.eth_src)),
            Field::EthType => Some(FieldValue::from(self.eth_type)),
            Field::VlanVid => self.vlan_vid.map(FieldValue::from),
            Field::VlanPcp => self.vlan_pcp.map(FieldValue::from),
            Field::IpDscp => self.ip_dscp.map(FieldValue::from),
            Field::IpEcn => self.ip_ecn.map(FieldValue::from),
            Field::IpProto => self.ip_proto.map(FieldValue::from),
            Field::Ipv4Src => self.ipv4_src.map(FieldValue::from),
            Field::Ipv4Dst => self.ipv4_dst.map(FieldValue::from),
            Field::Ipv6Src => self.ipv6_src,
            Field::Ipv6Dst => self.ipv6_dst,
            Field::TcpSrc => self.tcp_src.map(FieldValue::from),
            Field::TcpDst => self.tcp_dst.map(FieldValue::from),
            Field::UdpSrc => self.udp_src.map(FieldValue::from),
            Field::UdpDst => self.udp_dst.map(FieldValue::from),
            Field::Icmpv4Type => self.icmpv4_type.map(FieldValue::from),
            Field::Icmpv4Code => self.icmpv4_code.map(FieldValue::from),
            Field::ArpOp => self.arp_op.map(FieldValue::from),
            Field::ArpSpa => self.arp_spa.map(FieldValue::from),
            Field::ArpTpa => self.arp_tpa.map(FieldValue::from),
            Field::ArpSha => self.arp_sha.map(FieldValue::from),
            Field::ArpTha => self.arp_tha.map(FieldValue::from),
            // Fields not modelled in the key (MPLS, PBB, IPv6 ND/exthdr,
            // SCTP, ICMPv6): absent.
            _ => None,
        }
    }

    /// Writes `value` into the key-side view of `field`. Used by the
    /// pipeline to keep the key consistent after a set-field action so that
    /// later tables match on the rewritten value, and by `WriteMetadata`.
    pub fn set(&mut self, field: Field, value: FieldValue) {
        match field {
            Field::InPort | Field::InPhyPort => self.in_port = value as u32,
            Field::Metadata => self.metadata = value as u64,
            Field::TunnelId => self.tunnel_id = value as u64,
            Field::EthDst => self.eth_dst = value as u64 & 0xffff_ffff_ffff,
            Field::EthSrc => self.eth_src = value as u64 & 0xffff_ffff_ffff,
            Field::EthType => self.eth_type = value as u16,
            Field::VlanVid => self.vlan_vid = Some(value as u16 & 0x0fff),
            Field::VlanPcp => self.vlan_pcp = Some(value as u8 & 0x07),
            Field::IpDscp => self.ip_dscp = Some(value as u8 & 0x3f),
            Field::IpEcn => self.ip_ecn = Some(value as u8 & 0x03),
            Field::IpProto => self.ip_proto = Some(value as u8),
            Field::Ipv4Src => self.ipv4_src = Some(value as u32),
            Field::Ipv4Dst => self.ipv4_dst = Some(value as u32),
            Field::Ipv6Src => self.ipv6_src = Some(value),
            Field::Ipv6Dst => self.ipv6_dst = Some(value),
            Field::TcpSrc => self.tcp_src = Some(value as u16),
            Field::TcpDst => self.tcp_dst = Some(value as u16),
            Field::UdpSrc => self.udp_src = Some(value as u16),
            Field::UdpDst => self.udp_dst = Some(value as u16),
            Field::Icmpv4Type => self.icmpv4_type = Some(value as u8),
            Field::Icmpv4Code => self.icmpv4_code = Some(value as u8),
            Field::ArpOp => self.arp_op = Some(value as u16),
            Field::ArpSpa => self.arp_spa = Some(value as u32),
            Field::ArpTpa => self.arp_tpa = Some(value as u32),
            Field::ArpSha => self.arp_sha = Some(value as u64),
            Field::ArpTha => self.arp_tha = Some(value as u64),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkt::builder::PacketBuilder;
    use pkt::ipv4::Ipv4Addr4;
    use pkt::mac::MacAddr;

    #[test]
    fn tcp_packet_key() {
        let pkt = PacketBuilder::tcp()
            .eth_src([2, 0, 0, 0, 0, 1])
            .eth_dst([2, 0, 0, 0, 0, 2])
            .ipv4_src([10, 1, 1, 1])
            .ipv4_dst([192, 0, 2, 1])
            .tcp_src(5000)
            .tcp_dst(80)
            .in_port(3)
            .build();
        let key = FlowKey::extract(&pkt);
        assert_eq!(key.in_port, 3);
        assert_eq!(key.eth_src, MacAddr::new([2, 0, 0, 0, 0, 1]).to_u64());
        assert_eq!(key.eth_type, 0x0800);
        assert_eq!(key.ipv4_dst, Some(Ipv4Addr4::new(192, 0, 2, 1).to_u32()));
        assert_eq!(key.tcp_dst, Some(80));
        assert_eq!(key.udp_dst, None);
        assert_eq!(key.vlan_vid, None);
        assert_eq!(key.get(Field::TcpDst), Some(80));
        assert_eq!(key.get(Field::UdpDst), None);
        assert_eq!(key.get(Field::InPort), Some(3));
    }

    #[test]
    fn vlan_udp_key() {
        let pkt = PacketBuilder::udp().vlan(7).udp_dst(53).build();
        let key = FlowKey::extract(&pkt);
        assert_eq!(key.vlan_vid, Some(7));
        assert_eq!(key.udp_dst, Some(53));
        assert_eq!(key.get(Field::VlanVid), Some(7));
    }

    #[test]
    fn arp_key() {
        let pkt = PacketBuilder::arp_request(
            MacAddr::new([2, 0, 0, 0, 0, 9]),
            Ipv4Addr4::new(10, 0, 0, 9),
            Ipv4Addr4::new(10, 0, 0, 1),
        );
        let key = FlowKey::extract(&pkt);
        assert_eq!(key.eth_type, 0x0806);
        assert_eq!(key.arp_op, Some(1));
        assert_eq!(key.arp_tpa, Some(Ipv4Addr4::new(10, 0, 0, 1).to_u32()));
        assert_eq!(key.ipv4_src, None);
    }

    #[test]
    fn truncated_arp_frame_does_not_panic() {
        // Regression: the ARP branch sliced `&frame[l3..]` unchecked, so a
        // parse result describing a longer frame than the packet holds (or a
        // truncated capture) panicked instead of yielding an ARP-less key.
        let full = PacketBuilder::arp_request(
            MacAddr::new([2, 0, 0, 0, 0, 9]),
            Ipv4Addr4::new(10, 0, 0, 9),
            Ipv4Addr4::new(10, 0, 0, 1),
        );
        let headers = pkt::parser::parse(full.data(), pkt::parser::ParseDepth::L4);
        let l3 = usize::from(headers.l3_offset);
        for cut in 0..full.len() {
            let truncated = pkt::Packet::from_bytes(&full.data()[..cut], full.in_port);
            let key = FlowKey::from_parsed(&truncated, &headers);
            if cut < l3 + pkt::arp::ARP_LEN {
                assert_eq!(key.arp_op, None, "cut at {cut}");
            }
        }
        // The untruncated frame still extracts the ARP fields.
        let key = FlowKey::from_parsed(&full, &headers);
        assert_eq!(key.arp_op, Some(1));
    }

    #[test]
    fn icmp_key() {
        let pkt = PacketBuilder::icmp().build();
        let key = FlowKey::extract(&pkt);
        assert_eq!(key.ip_proto, Some(1));
        assert_eq!(key.icmpv4_type, Some(8));
        assert_eq!(key.icmpv4_code, Some(0));
    }

    #[test]
    fn set_updates_view() {
        let pkt = PacketBuilder::tcp().build();
        let mut key = FlowKey::extract(&pkt);
        key.set(
            Field::Ipv4Src,
            u128::from(Ipv4Addr4::new(203, 0, 113, 5).to_u32()),
        );
        key.set(Field::Metadata, 0xdead);
        assert_eq!(
            key.get(Field::Ipv4Src),
            Some(u128::from(Ipv4Addr4::new(203, 0, 113, 5).to_u32()))
        );
        assert_eq!(key.metadata, 0xdead);
        key.set(Field::VlanVid, 0x1fff);
        assert_eq!(key.vlan_vid, Some(0x0fff)); // masked to 12 bits
    }

    #[test]
    fn dscp_and_ecn_extracted() {
        let pkt = PacketBuilder::udp().dscp(46).build();
        let key = FlowKey::extract(&pkt);
        assert_eq!(key.ip_dscp, Some(46));
        assert_eq!(key.ip_ecn, Some(0));
    }
}
