//! # openflow — the OpenFlow pipeline model
//!
//! This crate implements the OpenFlow abstractions of §2 of the paper: match
//! fields, flow entries, flow tables, instructions and actions, the pipeline
//! (a linked hierarchy of flow tables), flow-mod handling, and the
//! controller-channel message types (PacketIn / PacketOut / FlowMod).
//!
//! It also contains the **direct datapath** reference interpreter
//! ([`direct::DirectDatapath`]): priority-ordered linear classification over
//! the flow tables themselves, the implementation strategy of the OpenFlow
//! reference switch, CPqD, xDPd and LINC. The direct datapath serves three
//! purposes here: it defines the ground-truth semantics every other datapath
//! (the OVS-style caching hierarchy in `ovsdp`, the compiled datapath in
//! `eswitch`) must agree with, it is one of the baselines of the evaluation,
//! and it is the slow path the OVS architecture falls back to.
//!
//! Pipelines are plain data ([`Pipeline`]) shared between datapaths via
//! `Arc`; datapaths never own the specification, they *realise* it.

pub mod action;
pub mod controller;
pub mod ct;
pub mod direct;
pub mod entry;
pub mod field;
pub mod flow_match;
pub mod flow_mod;
pub mod instruction;
pub mod key;
pub mod messages;
pub mod pipeline;
pub mod portlist;
pub mod table;

pub use action::{Action, ActionSet};
pub use controller::{Controller, ControllerDecision, NullController};
pub use ct::{ConnCtx, CtOutcome, CtTuple, CtVerb, NatSpec, NoCt};
pub use direct::DirectDatapath;
pub use entry::FlowEntry;
pub use field::{Field, FieldValue};
pub use flow_match::{FlowMatch, MatchField};
pub use flow_mod::{FlowMod, FlowModCommand, FlowModError};
pub use instruction::Instruction;
pub use key::FlowKey;
pub use messages::{PacketIn, PacketInReason, PacketOut};
pub use pipeline::{Pipeline, PipelineError, TableId, Verdict};
pub use portlist::PortList;
pub use table::{FlowTable, TableMissBehavior};
