//! Connection-tracking contract between the pipeline and a ct engine.
//!
//! The openflow crate stays stateless: it defines *what* a ct action asks
//! for ([`CtVerb`]), the canonical connection tuple ([`CtTuple`]), and the
//! answer a tracker returns ([`CtOutcome`]), but owns no connection state.
//! Executors (`Pipeline`, the compiled datapath, the OVS caches) thread a
//! `&mut dyn ConnCtx` through their `_ct` entry points; the engine lives in
//! `crates/conntrack` and is owned per shard. Callers without a tracker use
//! [`NoCt`], which preserves the historical stateless semantics: commits
//! pass through untracked and state-dependent verbs (established / NAT /
//! LB) deny, because without state no reply can be recognised and no
//! translation can be derived.

use crate::field::Field;
use pkt::{Packet, ParsedHeaders};

/// Canonical IPv4/L4 5-tuple a connection is keyed by.
///
/// Only IPv4 TCP/UDP frames are trackable; everything else yields `None`
/// from [`CtTuple::from_frame`] and ct verbs treat the packet as untracked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CtTuple {
    /// IP protocol number (6 = TCP, 17 = UDP).
    pub proto: u8,
    /// IPv4 source address (host byte order).
    pub src_ip: u32,
    /// IPv4 destination address (host byte order).
    pub dst_ip: u32,
    /// L4 source port (host byte order).
    pub src_port: u16,
    /// L4 destination port (host byte order).
    pub dst_port: u16,
}

const TCP: u8 = 6;
const UDP: u8 = 17;

impl CtTuple {
    /// Extracts the connection tuple from a parsed frame. Returns `None`
    /// for anything that is not IPv4 TCP/UDP with an intact L4 header.
    pub fn from_frame(frame: &[u8], headers: &ParsedHeaders) -> Option<CtTuple> {
        if !headers.has_ipv4() || !(headers.has_tcp() || headers.has_udp()) {
            return None;
        }
        let l3 = usize::from(headers.l3_offset);
        let l4 = usize::from(headers.l4_offset);
        if frame.len() < l3 + 20 || frame.len() < l4 + 4 {
            return None;
        }
        let proto = if headers.has_tcp() { TCP } else { UDP };
        let be32 = |at: usize| {
            u32::from_be_bytes([frame[at], frame[at + 1], frame[at + 2], frame[at + 3]])
        };
        let be16 = |at: usize| u16::from_be_bytes([frame[at], frame[at + 1]]);
        Some(CtTuple {
            proto,
            src_ip: be32(l3 + 12),
            dst_ip: be32(l3 + 16),
            src_port: be16(l4),
            dst_port: be16(l4 + 2),
        })
    }

    /// The TCP flags byte of a parsed frame, or 0 for non-TCP frames.
    pub fn tcp_flags(frame: &[u8], headers: &ParsedHeaders) -> u8 {
        let l4 = usize::from(headers.l4_offset);
        if headers.has_tcp() && frame.len() > l4 + 13 {
            frame[l4 + 13]
        } else {
            0
        }
    }

    /// The same connection seen from the opposite direction.
    pub fn reversed(&self) -> CtTuple {
        CtTuple {
            proto: self.proto,
            src_ip: self.dst_ip,
            dst_ip: self.src_ip,
            src_port: self.dst_port,
            dst_port: self.src_port,
        }
    }
}

/// Source/destination NAT parameters carried by [`CtVerb::Nat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NatSpec {
    /// `true` = SNAT (rewrite source), `false` = DNAT (rewrite destination).
    pub snat: bool,
    /// Translated address (host byte order).
    pub addr: u32,
    /// First port of the translation range (inclusive).
    pub port_lo: u16,
    /// Last port of the translation range (inclusive).
    pub port_hi: u16,
}

/// What a ct action asks the tracker to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CtVerb {
    /// Admit the packet and create/refresh connection state (new
    /// connections in the original direction create state; replies and
    /// retransmissions refresh it).
    Commit,
    /// Pass only packets that belong to a committed connection (either
    /// direction); everything else is denied. The stateful-ACL verb.
    Established,
    /// Commit + NAT: allocate a translation on the first packet, apply the
    /// stored forward/reverse rewrite on every later packet.
    Nat(NatSpec),
    /// Commit + L4 load balance: pin a backend from `group` on the first
    /// packet (consistent hashing), rewrite toward it forever after, and
    /// un-rewrite replies.
    Lb {
        /// Backend group id, resolved by the engine's configuration.
        group: u16,
    },
}

/// Maximum number of field rewrites one ct verb can request (NAT/LB touch
/// at most address + port per direction).
pub const CT_MAX_REWRITES: usize = 4;

/// Result of executing one ct verb against the tracker: whether the packet
/// survives, plus up to [`CT_MAX_REWRITES`] field rewrites to apply.
/// Fixed-capacity so the established path never allocates. Values are
/// stored as `u32` — ct only ever rewrites IPv4 addresses and L4 ports —
/// keeping the by-value return through the `dyn ConnCtx` call small.
#[derive(Debug, Clone, Copy)]
pub struct CtOutcome {
    halted: bool,
    rewrites: [(Field, u32); CT_MAX_REWRITES],
    len: u8,
}

impl CtOutcome {
    /// Packet continues through the pipeline, unmodified.
    pub fn pass() -> CtOutcome {
        CtOutcome {
            halted: false,
            rewrites: [(Field::InPort, 0); CT_MAX_REWRITES],
            len: 0,
        }
    }

    /// Packet is dropped: the action list, pipeline walk, and action-set
    /// flush all stop.
    pub fn halt() -> CtOutcome {
        CtOutcome {
            halted: true,
            rewrites: [(Field::InPort, 0); CT_MAX_REWRITES],
            len: 0,
        }
    }

    /// Appends a field rewrite (panics if more than [`CT_MAX_REWRITES`]
    /// are pushed — verbs are bounded by construction).
    pub fn push_rewrite(&mut self, field: Field, value: u32) {
        let at = self.len as usize;
        self.rewrites[at] = (field, value);
        self.len += 1;
    }

    /// True when the packet must be dropped.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// The requested rewrites, in push order. Widen each value with
    /// `FieldValue::from` when feeding a field writer.
    pub fn rewrites(&self) -> &[(Field, u32)] {
        &self.rewrites[..self.len as usize]
    }
}

/// A connection-tracking engine, as seen by datapath executors.
///
/// One call per executed ct action. The tuple is extracted from the frame
/// *at execution time* (after any earlier rewrites in the same action
/// list), so chained NAT/LB verbs compose naturally.
pub trait ConnCtx {
    /// Executes `verb` for the connection identified by `tuple`.
    fn ct_execute(&mut self, verb: &CtVerb, tuple: &CtTuple, tcp_flags: u8) -> CtOutcome;

    /// Whether this tracker carries per-connection state, i.e. whether the
    /// order of `ct_execute` calls is observable. Batching datapaths that
    /// regroup packets (cache hits vs. slow-path misses) must preserve
    /// arrival order when this is true — a teardown must not be outrun by
    /// a later packet of the same connection.
    fn is_stateful(&self) -> bool {
        true
    }
}

/// The null tracker: stateless semantics for callers without an engine.
///
/// `Commit` passes (admit untracked, as a stateless pipeline would);
/// `Established`, `Nat`, and `Lb` halt, because without connection state
/// there is no notion of a committed connection, a stored translation, or
/// a pinned backend.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoCt;

impl ConnCtx for NoCt {
    fn ct_execute(&mut self, verb: &CtVerb, _tuple: &CtTuple, _flags: u8) -> CtOutcome {
        match verb {
            CtVerb::Commit => CtOutcome::pass(),
            CtVerb::Established | CtVerb::Nat(_) | CtVerb::Lb { .. } => CtOutcome::halt(),
        }
    }

    fn is_stateful(&self) -> bool {
        false
    }
}

/// Executes one ct verb against `ct` for the given frame: extracts the
/// tuple, dispatches, and reports the outcome. Untrackable frames
/// (non-IPv4, non-TCP/UDP) bypass tracking entirely: `Commit` passes them,
/// stateful verbs halt them — mirroring [`NoCt`].
pub fn execute_ct(
    ct: &mut dyn ConnCtx,
    verb: &CtVerb,
    packet: &Packet,
    headers: &ParsedHeaders,
) -> CtOutcome {
    let frame = packet.data();
    match CtTuple::from_frame(frame, headers) {
        Some(tuple) => {
            let flags = CtTuple::tcp_flags(frame, headers);
            ct.ct_execute(verb, &tuple, flags)
        }
        None => match verb {
            CtVerb::Commit => CtOutcome::pass(),
            _ => CtOutcome::halt(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkt::builder::PacketBuilder;

    fn parse(packet: &Packet) -> ParsedHeaders {
        pkt::parse(packet.data(), pkt::ParseDepth::L4)
    }

    #[test]
    fn tuple_extraction_tcp() {
        let p = PacketBuilder::tcp()
            .ipv4_src([10, 0, 0, 1])
            .ipv4_dst([10, 0, 0, 2])
            .tcp_src(1234)
            .tcp_dst(80)
            .build();
        let h = parse(&p);
        let t = CtTuple::from_frame(p.data(), &h).expect("tcp frame is trackable");
        assert_eq!(t.proto, 6);
        assert_eq!(t.src_ip, u32::from_be_bytes([10, 0, 0, 1]));
        assert_eq!(t.dst_ip, u32::from_be_bytes([10, 0, 0, 2]));
        assert_eq!(t.src_port, 1234);
        assert_eq!(t.dst_port, 80);
        assert_eq!(t.reversed().src_port, 80);
        assert_eq!(t.reversed().reversed(), t);
    }

    #[test]
    fn non_ip_is_untrackable() {
        let p = PacketBuilder::l2_only(0x88b5);
        let h = parse(&p);
        assert!(CtTuple::from_frame(p.data(), &h).is_none());
    }

    #[test]
    fn noct_semantics() {
        let mut no = NoCt;
        let t = CtTuple {
            proto: 6,
            src_ip: 1,
            dst_ip: 2,
            src_port: 3,
            dst_port: 4,
        };
        assert!(!no.ct_execute(&CtVerb::Commit, &t, 0).halted());
        assert!(no.ct_execute(&CtVerb::Established, &t, 0).halted());
        assert!(no
            .ct_execute(
                &CtVerb::Nat(NatSpec {
                    snat: true,
                    addr: 9,
                    port_lo: 1,
                    port_hi: 2
                }),
                &t,
                0
            )
            .halted());
        assert!(no.ct_execute(&CtVerb::Lb { group: 0 }, &t, 0).halted());
    }

    #[test]
    fn outcome_rewrites_are_bounded_and_ordered() {
        let mut o = CtOutcome::pass();
        o.push_rewrite(Field::Ipv4Src, 7);
        o.push_rewrite(Field::TcpSrc, 99);
        assert!(!o.halted());
        let rw = o.rewrites();
        assert_eq!(rw.len(), 2);
        assert_eq!(rw[0], (Field::Ipv4Src, 7));
        assert_eq!(rw[1], (Field::TcpSrc, 99));
    }
}
