//! Flow tables.

use netdev::Counters;
use std::sync::Arc;

use crate::entry::FlowEntry;
use crate::flow_match::FlowMatch;
use crate::key::FlowKey;
use crate::pipeline::TableId;

/// What to do with a packet that matches no entry in the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TableMissBehavior {
    /// Drop the packet (OpenFlow 1.3 default).
    #[default]
    Drop,
    /// Send the packet to the controller.
    ToController,
    /// Continue processing at the next table.
    Continue,
}

/// One stage of the OpenFlow pipeline: a priority-ordered list of entries.
///
/// Entries are kept sorted by descending priority (ties broken by insertion
/// order, matching the paper's convention that "flow entries are listed in
/// decreasing order of priority"). Lookup is a linear scan in that order —
/// this *is* the direct-datapath strategy; faster structures are exactly what
/// the OVS caches and the ESWITCH templates provide on top.
#[derive(Debug, Clone, Default)]
pub struct FlowTable {
    /// Table identifier within the pipeline.
    pub id: TableId,
    /// Human-readable name (handy in dumps of decomposed pipelines).
    pub name: String,
    /// Miss behaviour.
    pub miss: TableMissBehavior,
    entries: Vec<FlowEntry>,
    /// Packets looked up in this table (hit or miss).
    pub lookups: Arc<Counters>,
    /// Packets that matched some entry.
    pub matches: Arc<Counters>,
}

impl FlowTable {
    /// Creates an empty table.
    pub fn new(id: TableId) -> Self {
        FlowTable {
            id,
            name: format!("table{id}"),
            miss: TableMissBehavior::default(),
            entries: Vec::new(),
            lookups: Arc::new(Counters::new()),
            matches: Arc::new(Counters::new()),
        }
    }

    /// Creates an empty table with a name.
    pub fn named(id: TableId, name: impl Into<String>) -> Self {
        let mut t = Self::new(id);
        t.name = name.into();
        t
    }

    /// Builder-style miss behaviour setter.
    pub fn with_miss(mut self, miss: TableMissBehavior) -> Self {
        self.miss = miss;
        self
    }

    /// Inserts an entry, keeping the priority order. An entry with an
    /// identical match and priority replaces the old one (OpenFlow add
    /// semantics); the displaced entry is returned so transactional callers
    /// can build an undo log without cloning the table up front.
    pub fn insert(&mut self, entry: FlowEntry) -> Option<FlowEntry> {
        if let Some(existing) = self
            .entries
            .iter_mut()
            .find(|e| e.priority == entry.priority && e.flow_match == entry.flow_match)
        {
            return Some(std::mem::replace(existing, entry));
        }
        // Insert after all entries with priority >= the new one, preserving
        // insertion order among equal priorities.
        let pos = self
            .entries
            .iter()
            .position(|e| e.priority < entry.priority)
            .unwrap_or(self.entries.len());
        self.entries.insert(pos, entry);
        None
    }

    /// Removes entries matching the (non-strict) OpenFlow delete semantics:
    /// every entry whose match is equal to or more specific than `pattern`,
    /// and whose cookie matches if a cookie filter is given. Returns the
    /// removed entries (in their former match order).
    pub fn remove_overlapping(
        &mut self,
        pattern: &FlowMatch,
        cookie: Option<u64>,
    ) -> Vec<FlowEntry> {
        let mut removed = Vec::new();
        self.entries.retain(|e| {
            let cookie_ok = cookie.map(|c| e.cookie == c).unwrap_or(true);
            if cookie_ok && e.flow_match.is_more_specific_than(pattern) {
                removed.push(e.clone());
                false
            } else {
                true
            }
        });
        removed
    }

    /// Removes the entry with exactly this match and priority (strict delete),
    /// returning it if present.
    pub fn remove_strict(&mut self, pattern: &FlowMatch, priority: u16) -> Option<FlowEntry> {
        let pos = self
            .entries
            .iter()
            .position(|e| e.priority == priority && e.flow_match == *pattern)?;
        Some(self.entries.remove(pos))
    }

    /// The entries, in match order (descending priority).
    pub fn entries(&self) -> &[FlowEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Replaces all entries at once (used by pipeline builders and by the
    /// decomposition pass).
    pub fn set_entries(&mut self, mut entries: Vec<FlowEntry>) {
        entries.sort_by_key(|e| std::cmp::Reverse(e.priority));
        self.entries = entries;
    }

    /// Looks up the highest-priority matching entry for `key`, recording
    /// table statistics.
    pub fn lookup(&self, key: &FlowKey) -> Option<&FlowEntry> {
        self.lookups.record(0);
        let hit = self.entries.iter().find(|e| e.flow_match.matches(key));
        if hit.is_some() {
            self.matches.record(0);
        }
        hit
    }

    /// Like [`FlowTable::lookup`] but also reports how many entries were
    /// examined before the decision — the work metric the direct datapath
    /// pays and the caching/compiled datapaths avoid.
    pub fn lookup_counted(&self, key: &FlowKey) -> (Option<&FlowEntry>, usize) {
        self.lookups.record(0);
        let mut examined = 0;
        for e in &self.entries {
            examined += 1;
            if e.flow_match.matches(key) {
                self.matches.record(0);
                return (Some(e), examined);
            }
        }
        (None, examined)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::field::Field;
    use crate::instruction::terminal_actions;
    use pkt::builder::PacketBuilder;

    fn entry(priority: u16, port: u16, out: u32) -> FlowEntry {
        FlowEntry::new(
            FlowMatch::any().with_exact(Field::TcpDst, u128::from(port)),
            priority,
            terminal_actions(vec![Action::Output(out)]),
        )
    }

    fn key_for_port(port: u16) -> FlowKey {
        FlowKey::extract(&PacketBuilder::tcp().tcp_dst(port).build())
    }

    #[test]
    fn priority_ordering_and_lookup() {
        let mut t = FlowTable::new(0);
        t.insert(entry(10, 80, 1));
        t.insert(entry(100, 80, 2)); // higher priority inserted later
        t.insert(entry(50, 443, 3));
        assert_eq!(t.len(), 3);
        // Entries sorted by descending priority.
        let prios: Vec<u16> = t.entries().iter().map(|e| e.priority).collect();
        assert_eq!(prios, vec![100, 50, 10]);
        let hit = t.lookup(&key_for_port(80)).unwrap();
        assert_eq!(hit.priority, 100);
        assert!(t.lookup(&key_for_port(22)).is_none());
        assert_eq!(t.lookups.packets(), 2);
        assert_eq!(t.matches.packets(), 1);
    }

    #[test]
    fn equal_priority_keeps_insertion_order() {
        let mut t = FlowTable::new(0);
        t.insert(entry(10, 80, 1));
        t.insert(FlowEntry::new(
            FlowMatch::any(),
            10,
            terminal_actions(vec![Action::Output(9)]),
        ));
        // The port-80 entry was inserted first, so it still wins for port 80.
        assert_eq!(
            t.lookup(&key_for_port(80)).unwrap().instructions,
            terminal_actions(vec![Action::Output(1)])
        );
        // The catch-all handles everything else.
        assert!(t.lookup(&key_for_port(22)).is_some());
    }

    #[test]
    fn insert_replaces_identical_match_and_priority() {
        let mut t = FlowTable::new(0);
        t.insert(entry(10, 80, 1));
        t.insert(entry(10, 80, 7));
        assert_eq!(t.len(), 1);
        assert_eq!(
            t.lookup(&key_for_port(80)).unwrap().instructions,
            terminal_actions(vec![Action::Output(7)])
        );
    }

    #[test]
    fn strict_and_overlapping_removal() {
        let mut t = FlowTable::new(0);
        t.insert(entry(10, 80, 1));
        t.insert(entry(20, 443, 2));
        t.insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));

        assert!(t
            .remove_strict(&FlowMatch::any().with_exact(Field::TcpDst, 80), 99)
            .is_none());
        let removed = t
            .remove_strict(&FlowMatch::any().with_exact(Field::TcpDst, 80), 10)
            .unwrap();
        assert_eq!(removed.priority, 10);
        assert_eq!(t.len(), 2);

        // Non-strict delete with an empty pattern clears everything.
        assert_eq!(t.remove_overlapping(&FlowMatch::any(), None).len(), 2);
        assert!(t.is_empty());
    }

    #[test]
    fn cookie_filtered_removal() {
        let mut t = FlowTable::new(0);
        t.insert(entry(10, 80, 1).with_cookie(0xaa));
        t.insert(entry(10, 443, 2).with_cookie(0xbb));
        assert_eq!(t.remove_overlapping(&FlowMatch::any(), Some(0xaa)).len(), 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.entries()[0].cookie, 0xbb);
    }

    #[test]
    fn lookup_counted_reports_examined_entries() {
        let mut t = FlowTable::new(0);
        for (i, port) in [1000u16, 1001, 1002, 80].iter().enumerate() {
            t.insert(entry(100 - i as u16, *port, 1));
        }
        let (hit, examined) = t.lookup_counted(&key_for_port(80));
        assert!(hit.is_some());
        assert_eq!(examined, 4);
        let (miss, examined) = t.lookup_counted(&key_for_port(9999));
        assert!(miss.is_none());
        assert_eq!(examined, 4);
    }
}
