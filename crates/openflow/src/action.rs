//! OpenFlow actions and action sets.

use pkt::checksum;
use pkt::ethernet::ETHERNET_HEADER_LEN;
use pkt::parser::{parse, ParseDepth, ParsedHeaders};
use pkt::vlan::VLAN_TAG_LEN;
use pkt::Packet;

use crate::ct::{ConnCtx, CtVerb, NoCt};
use crate::field::{Field, FieldValue};
use crate::key::FlowKey;

/// A single OpenFlow action.
///
/// Each variant corresponds to an ESWITCH *action template*; composite
/// behaviour is expressed by [`ActionSet`]s, which the compiled datapath
/// shares across flows ("identical action sets are shared across flows",
/// §3.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Action {
    /// Forward the packet out of the given port.
    Output(u32),
    /// Flood the packet on every port except the ingress port.
    Flood,
    /// Send the packet to the controller (packet-in).
    ToController,
    /// Explicitly drop the packet (an empty action set drops implicitly; the
    /// explicit action exists so intent shows up in dumps and tests).
    Drop,
    /// Rewrite a header field.
    SetField(Field, FieldValue),
    /// Push an 802.1Q VLAN tag with the given TPID (0x8100 or 0x88a8).
    PushVlan(u16),
    /// Pop the outermost VLAN tag.
    PopVlan,
    /// Decrement the IPv4 TTL.
    DecNwTtl,
    /// Set the output queue for subsequent outputs (modelled as metadata
    /// only; queues are not simulated).
    SetQueue(u32),
    /// Apply a group (modelled as a no-op placeholder; none of the paper's
    /// use cases require groups).
    Group(u32),
    /// Consult the connection tracker (commit / established-only / NAT /
    /// LB). Executed by the list-level executors, which thread a
    /// [`ConnCtx`]; a denying tracker halts the packet. In a write-actions
    /// set this is a no-op on every datapath (ct state must be consulted
    /// mid-pipeline, not at exit).
    Ct(CtVerb),
}

impl Action {
    /// Applies the action to `packet` (frame rewrite) and `key` (so later
    /// pipeline stages match on the rewritten values).
    ///
    /// `headers` must describe the current frame layout; actions that change
    /// the layout (push/pop VLAN) return `true` to signal the caller that
    /// offsets must be re-derived before any further field access.
    pub fn apply(&self, packet: &mut Packet, headers: &ParsedHeaders, key: &mut FlowKey) -> bool {
        match self {
            Action::Output(_)
            | Action::Flood
            | Action::ToController
            | Action::Drop
            | Action::SetQueue(_)
            | Action::Group(_)
            // Ct is executed by the list-level executors (which hold the
            // tracker); as a bare frame rewrite it touches nothing.
            | Action::Ct(_) => false,
            Action::SetField(field, value) => {
                key.set(*field, *value);
                write_field(packet, headers, *field, *value);
                false
            }
            Action::DecNwTtl => {
                if headers.has_ipv4() {
                    let l3 = usize::from(headers.l3_offset);
                    let frame = packet.data_mut();
                    if let Some(ttl) = frame.get(l3 + 8).copied() {
                        frame[l3 + 8] = ttl.saturating_sub(1);
                        refresh_ipv4_checksum(frame, l3);
                    }
                }
                false
            }
            Action::PushVlan(tpid) => {
                let vid = key.vlan_vid.unwrap_or(0);
                key.vlan_vid = Some(vid);
                key.vlan_pcp = Some(key.vlan_pcp.unwrap_or(0));
                // Insert a zeroed tag after the MAC addresses; the original
                // EtherType becomes the inner EtherType.
                let frame_ethertype = [packet.data()[12], packet.data()[13]];
                let tag = [(tpid >> 8) as u8, *tpid as u8, (vid >> 8) as u8, vid as u8];
                packet.data_mut()[12..14].copy_from_slice(&tag[..2]);
                packet.insert(
                    ETHERNET_HEADER_LEN,
                    &[tag[2], tag[3], frame_ethertype[0], frame_ethertype[1]],
                );
                true
            }
            Action::PopVlan => {
                if key.vlan_vid.is_some() {
                    key.vlan_vid = None;
                    key.vlan_pcp = None;
                    // The inner EtherType replaces the 0x8100 at offset 12 and
                    // the 4-byte tag disappears.
                    let inner = [packet.data()[16], packet.data()[17]];
                    packet.data_mut()[12..14].copy_from_slice(&inner);
                    packet.remove(ETHERNET_HEADER_LEN, VLAN_TAG_LEN);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// True for actions that terminate packet processing with a forwarding
    /// decision (used when collapsing action sets).
    pub fn is_output_like(&self) -> bool {
        matches!(
            self,
            Action::Output(_) | Action::Flood | Action::ToController | Action::Drop
        )
    }
}

/// Writes `value` into the frame bytes backing `field`, updating the IPv4
/// checksum when an IP header field changes. Fields without a frame
/// representation (metadata, tunnel id) are key-only and ignored here.
fn write_field(packet: &mut Packet, headers: &ParsedHeaders, field: Field, value: FieldValue) {
    let l2 = usize::from(headers.l2_offset);
    let l3 = usize::from(headers.l3_offset);
    let l4 = usize::from(headers.l4_offset);
    let frame = packet.data_mut();
    match field {
        Field::EthDst => frame[l2..l2 + 6].copy_from_slice(&(value as u64).to_be_bytes()[2..8]),
        Field::EthSrc => {
            frame[l2 + 6..l2 + 12].copy_from_slice(&(value as u64).to_be_bytes()[2..8])
        }
        Field::VlanVid if headers.has_vlan() => {
            let off = l2 + ETHERNET_HEADER_LEN;
            let pcp_dei = frame[off] & 0xf0;
            frame[off] = pcp_dei | (((value as u16) >> 8) as u8 & 0x0f);
            frame[off + 1] = value as u8;
        }
        Field::VlanPcp if headers.has_vlan() => {
            let off = l2 + ETHERNET_HEADER_LEN;
            frame[off] = (frame[off] & 0x1f) | ((value as u8 & 0x07) << 5);
        }
        Field::Ipv4Src if headers.has_ipv4() => {
            frame[l3 + 12..l3 + 16].copy_from_slice(&(value as u32).to_be_bytes());
            refresh_ipv4_checksum(frame, l3);
        }
        Field::Ipv4Dst if headers.has_ipv4() => {
            frame[l3 + 16..l3 + 20].copy_from_slice(&(value as u32).to_be_bytes());
            refresh_ipv4_checksum(frame, l3);
        }
        Field::IpDscp if headers.has_ipv4() => {
            frame[l3 + 1] = (frame[l3 + 1] & 0x03) | ((value as u8 & 0x3f) << 2);
            refresh_ipv4_checksum(frame, l3);
        }
        Field::TcpSrc | Field::UdpSrc if (headers.has_tcp() || headers.has_udp()) => {
            frame[l4..l4 + 2].copy_from_slice(&(value as u16).to_be_bytes());
        }
        Field::TcpDst | Field::UdpDst if (headers.has_tcp() || headers.has_udp()) => {
            frame[l4 + 2..l4 + 4].copy_from_slice(&(value as u16).to_be_bytes());
        }
        // Metadata-like and unmodelled fields have no frame bytes.
        _ => {}
    }
}

/// Recomputes the IPv4 header checksum in place after a header rewrite.
fn refresh_ipv4_checksum(frame: &mut [u8], l3: usize) {
    let ihl = usize::from(frame[l3] & 0x0f) * 4;
    frame[l3 + 10] = 0;
    frame[l3 + 11] = 0;
    let csum = checksum::ones_complement(&frame[l3..l3 + ihl]);
    frame[l3 + 10..l3 + 12].copy_from_slice(&csum.to_be_bytes());
}

/// An OpenFlow action set: at most one action per kind, executed in the
/// specification's fixed order when the pipeline terminates.
///
/// The write-actions instruction merges into the set (replacing same-kind
/// actions); clear-actions empties it. Output-like actions are kept last.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct ActionSet {
    set_fields: Vec<(Field, FieldValue)>,
    push_vlan: Option<u16>,
    pop_vlan: bool,
    dec_ttl: bool,
    queue: Option<u32>,
    group: Option<u32>,
    output: Option<OutputKind>,
}

/// Terminal forwarding decision stored in an action set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutputKind {
    /// Unicast out of one port.
    Port(u32),
    /// Flood.
    Flood,
    /// Punt to the controller.
    Controller,
    /// Explicit drop.
    Drop,
}

impl ActionSet {
    /// Creates an empty action set (which drops the packet if executed as-is).
    pub fn new() -> Self {
        ActionSet::default()
    }

    /// Builds an action set from a list of actions (write-actions semantics).
    pub fn from_actions(actions: &[Action]) -> Self {
        let mut set = ActionSet::new();
        for a in actions {
            set.write(a.clone());
        }
        set
    }

    /// Merges one action into the set, replacing any previous action of the
    /// same kind.
    pub fn write(&mut self, action: Action) {
        match action {
            Action::SetField(f, v) => {
                if let Some(slot) = self.set_fields.iter_mut().find(|(ef, _)| *ef == f) {
                    slot.1 = v;
                } else {
                    self.set_fields.push((f, v));
                }
            }
            Action::PushVlan(tpid) => self.push_vlan = Some(tpid),
            Action::PopVlan => self.pop_vlan = true,
            Action::DecNwTtl => self.dec_ttl = true,
            Action::SetQueue(q) => self.queue = Some(q),
            Action::Group(g) => self.group = Some(g),
            Action::Output(p) => self.output = Some(OutputKind::Port(p)),
            Action::Flood => self.output = Some(OutputKind::Flood),
            Action::ToController => self.output = Some(OutputKind::Controller),
            Action::Drop => self.output = Some(OutputKind::Drop),
            // Ct in a write-actions set is a no-op on every datapath:
            // connection state must be consulted while the packet traverses
            // the pipeline, not at exit.
            Action::Ct(_) => {}
        }
    }

    /// Clears the set (clear-actions instruction).
    pub fn clear(&mut self) {
        *self = ActionSet::new();
    }

    /// True when the set contains no actions at all.
    pub fn is_empty(&self) -> bool {
        *self == ActionSet::default()
    }

    /// The terminal forwarding decision, if any.
    pub fn output(&self) -> Option<OutputKind> {
        self.output
    }

    /// Materialises the set into the ordered action list the spec prescribes
    /// (pop, set-fields/dec-TTL, push, queue, group, output).
    pub fn to_action_list(&self) -> Vec<Action> {
        let mut list = Vec::new();
        if self.pop_vlan {
            list.push(Action::PopVlan);
        }
        if self.dec_ttl {
            list.push(Action::DecNwTtl);
        }
        for (f, v) in &self.set_fields {
            list.push(Action::SetField(*f, *v));
        }
        if let Some(tpid) = self.push_vlan {
            list.push(Action::PushVlan(tpid));
        }
        if let Some(q) = self.queue {
            list.push(Action::SetQueue(q));
        }
        if let Some(g) = self.group {
            list.push(Action::Group(g));
        }
        match self.output {
            Some(OutputKind::Port(p)) => list.push(Action::Output(p)),
            Some(OutputKind::Flood) => list.push(Action::Flood),
            Some(OutputKind::Controller) => list.push(Action::ToController),
            Some(OutputKind::Drop) => list.push(Action::Drop),
            None => {}
        }
        list
    }
}

/// Applies an ordered action list to a packet, re-parsing after layout
/// changes, and hands each forwarding decision produced by output-like
/// actions to `sink`. This is the allocation-free core the cache replay
/// paths call; [`apply_action_list`] wraps it when a collected `Vec` is
/// more convenient than a callback.
#[inline]
pub fn apply_action_list_with(
    actions: &[Action],
    packet: &mut Packet,
    key: &mut FlowKey,
    sink: impl FnMut(OutputKind),
) {
    apply_action_list_with_ct(actions, packet, key, sink, &mut NoCt);
}

/// [`apply_action_list_with`] with an explicit connection tracker. Returns
/// `true` when a ct action denied the packet: the remaining actions were
/// skipped and the caller must stop processing (no further tables, no
/// action-set flush) and treat the packet as dropped.
#[inline]
pub fn apply_action_list_with_ct(
    actions: &[Action],
    packet: &mut Packet,
    key: &mut FlowKey,
    sink: impl FnMut(OutputKind),
    ct: &mut dyn ConnCtx,
) -> bool {
    let headers = parse(packet.data(), ParseDepth::L4);
    apply_action_list_parsed_ct(actions, packet, key, headers, sink, ct)
}

/// Like [`apply_action_list_with`] but resuming from an already-parsed
/// header layout, so callers that extracted the flow key from the same frame
/// (the cache replay paths) do not parse it a second time. `headers` must
/// describe the *current* frame; layout-changing actions re-derive it.
#[inline]
pub fn apply_action_list_parsed(
    actions: &[Action],
    packet: &mut Packet,
    key: &mut FlowKey,
    headers: ParsedHeaders,
    sink: impl FnMut(OutputKind),
) {
    apply_action_list_parsed_ct(actions, packet, key, headers, sink, &mut NoCt);
}

/// [`apply_action_list_parsed`] with an explicit connection tracker; see
/// [`apply_action_list_with_ct`] for the halt contract.
#[inline]
pub fn apply_action_list_parsed_ct(
    actions: &[Action],
    packet: &mut Packet,
    key: &mut FlowKey,
    mut headers: ParsedHeaders,
    mut sink: impl FnMut(OutputKind),
    ct: &mut dyn ConnCtx,
) -> bool {
    for action in actions {
        match action {
            Action::Output(p) => sink(OutputKind::Port(*p)),
            Action::Flood => sink(OutputKind::Flood),
            Action::ToController => sink(OutputKind::Controller),
            Action::Drop => sink(OutputKind::Drop),
            Action::Ct(verb) => {
                let outcome = crate::ct::execute_ct(ct, verb, packet, &headers);
                if outcome.halted() {
                    return true;
                }
                for &(field, value) in outcome.rewrites() {
                    let value = FieldValue::from(value);
                    key.set(field, value);
                    write_field(packet, &headers, field, value);
                }
            }
            other => {
                if other.apply(packet, &headers, key) {
                    headers = parse(packet.data(), ParseDepth::L4);
                }
            }
        }
    }
    false
}

/// Applies an action list and merges the forwarding decisions straight into
/// `verdict` — the hot-path variant (no intermediate `Vec<OutputKind>`).
#[inline]
pub fn apply_action_list_into(
    actions: &[Action],
    packet: &mut Packet,
    key: &mut FlowKey,
    verdict: &mut crate::pipeline::Verdict,
) {
    apply_action_list_with(actions, packet, key, |out| verdict.add(out));
}

/// [`apply_action_list_into`] with an explicit connection tracker; returns
/// `true` when a ct action denied the packet (see
/// [`apply_action_list_with_ct`]).
#[inline]
pub fn apply_action_list_into_ct(
    actions: &[Action],
    packet: &mut Packet,
    key: &mut FlowKey,
    verdict: &mut crate::pipeline::Verdict,
    ct: &mut dyn ConnCtx,
) -> bool {
    apply_action_list_with_ct(actions, packet, key, |out| verdict.add(out), ct)
}

/// Applies an ordered action list to a packet and returns the forwarding
/// decisions produced by output-like actions (there may be several for an
/// apply-actions list). Allocates the result; controller/test paths only.
pub fn apply_action_list(
    actions: &[Action],
    packet: &mut Packet,
    key: &mut FlowKey,
) -> Vec<OutputKind> {
    let mut outputs = Vec::new();
    apply_action_list_with(actions, packet, key, |out| outputs.push(out));
    outputs
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkt::builder::PacketBuilder;
    use pkt::ipv4::{Ipv4Addr4, Ipv4Header};

    fn packet_and_key() -> (Packet, FlowKey) {
        let p = PacketBuilder::tcp()
            .ipv4_src([10, 0, 0, 1])
            .ipv4_dst([192, 0, 2, 1])
            .tcp_dst(80)
            .build();
        let k = FlowKey::extract(&p);
        (p, k)
    }

    #[test]
    fn set_field_rewrites_frame_and_key() {
        let (mut p, mut k) = packet_and_key();
        let headers = parse(p.data(), ParseDepth::L4);
        let new_src = Ipv4Addr4::new(203, 0, 113, 9);
        Action::SetField(Field::Ipv4Src, u128::from(new_src.to_u32()))
            .apply(&mut p, &headers, &mut k);
        assert_eq!(k.ipv4_src, Some(new_src.to_u32()));
        let reparsed = FlowKey::extract(&p);
        assert_eq!(reparsed.ipv4_src, Some(new_src.to_u32()));
        // checksum still valid after rewrite
        assert!(Ipv4Header::verify_checksum(
            &p.data()[usize::from(headers.l3_offset)..]
        ));
    }

    #[test]
    fn set_tcp_port_rewrites_frame() {
        let (mut p, mut k) = packet_and_key();
        let headers = parse(p.data(), ParseDepth::L4);
        Action::SetField(Field::TcpDst, 8080).apply(&mut p, &headers, &mut k);
        assert_eq!(FlowKey::extract(&p).tcp_dst, Some(8080));
    }

    #[test]
    fn dec_ttl_updates_checksum() {
        let (mut p, mut k) = packet_and_key();
        let headers = parse(p.data(), ParseDepth::L4);
        let l3 = usize::from(headers.l3_offset);
        let before = p.data()[l3 + 8];
        Action::DecNwTtl.apply(&mut p, &headers, &mut k);
        assert_eq!(p.data()[l3 + 8], before - 1);
        assert!(Ipv4Header::verify_checksum(&p.data()[l3..]));
    }

    #[test]
    fn push_and_pop_vlan_roundtrip() {
        let (mut p, mut k) = packet_and_key();
        let original = p.clone();
        let headers = parse(p.data(), ParseDepth::L4);
        let relayout = Action::PushVlan(0x8100).apply(&mut p, &headers, &mut k);
        assert!(relayout);
        let tagged = FlowKey::extract(&p);
        assert_eq!(tagged.vlan_vid, Some(0));
        assert_eq!(p.len(), original.len() + VLAN_TAG_LEN);

        // Now set the VID and pop it again.
        let headers = parse(p.data(), ParseDepth::L4);
        Action::SetField(Field::VlanVid, 7).apply(&mut p, &headers, &mut k);
        assert_eq!(FlowKey::extract(&p).vlan_vid, Some(7));
        let headers = parse(p.data(), ParseDepth::L4);
        let relayout = Action::PopVlan.apply(&mut p, &headers, &mut k);
        assert!(relayout);
        assert_eq!(p.len(), original.len());
        assert_eq!(FlowKey::extract(&p).vlan_vid, None);
        assert_eq!(FlowKey::extract(&p).tcp_dst, Some(80));
    }

    #[test]
    fn pop_vlan_on_untagged_is_noop() {
        let (mut p, mut k) = packet_and_key();
        let headers = parse(p.data(), ParseDepth::L4);
        let before = p.clone();
        assert!(!Action::PopVlan.apply(&mut p, &headers, &mut k));
        assert_eq!(p, before);
    }

    #[test]
    fn action_set_merging_and_ordering() {
        let mut set = ActionSet::new();
        set.write(Action::Output(1));
        set.write(Action::SetField(Field::EthDst, 0xaabbccddeeff));
        set.write(Action::SetField(Field::EthDst, 0x112233445566));
        set.write(Action::Output(2)); // replaces the first output
        set.write(Action::DecNwTtl);
        let list = set.to_action_list();
        assert_eq!(
            list,
            vec![
                Action::DecNwTtl,
                Action::SetField(Field::EthDst, 0x112233445566),
                Action::Output(2),
            ]
        );
        assert_eq!(set.output(), Some(OutputKind::Port(2)));
        set.clear();
        assert!(set.is_empty());
        assert_eq!(set.to_action_list(), vec![]);
    }

    #[test]
    fn apply_action_list_collects_outputs() {
        let (mut p, mut k) = packet_and_key();
        let outs = apply_action_list(
            &[
                Action::SetField(Field::Ipv4Dst, 0x0a0a0a0a),
                Action::Output(4),
                Action::Output(5),
            ],
            &mut p,
            &mut k,
        );
        assert_eq!(outs, vec![OutputKind::Port(4), OutputKind::Port(5)]);
        assert_eq!(FlowKey::extract(&p).ipv4_dst, Some(0x0a0a0a0a));
    }
}
