//! OpenFlow instructions.

use crate::action::Action;
use crate::pipeline::TableId;

/// An instruction attached to a flow entry.
///
/// Instructions control what happens when an entry matches: actions can be
/// applied immediately, merged into the packet's action set for execution at
/// pipeline exit, the metadata register can be rewritten, and processing can
/// be directed to a later table (`goto_table`), which is what builds
/// multi-stage pipelines (Fig. 1b of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// Apply the listed actions immediately, in order.
    ApplyActions(Vec<Action>),
    /// Merge the listed actions into the action set.
    WriteActions(Vec<Action>),
    /// Clear the action set.
    ClearActions,
    /// `metadata = (metadata & !mask) | (value & mask)`.
    WriteMetadata {
        /// Value to write.
        value: u64,
        /// Bits of the metadata register affected.
        mask: u64,
    },
    /// Continue processing at the given (strictly later) table.
    GotoTable(TableId),
    /// Attach a meter (modelled as a no-op; none of the use cases meter).
    Meter(u32),
}

impl Instruction {
    /// Convenience constructor: apply a single action.
    pub fn apply(action: Action) -> Self {
        Instruction::ApplyActions(vec![action])
    }

    /// Convenience constructor: write a single action into the action set.
    pub fn write(action: Action) -> Self {
        Instruction::WriteActions(vec![action])
    }

    /// The goto target, if this is a goto-table instruction.
    pub fn goto_target(&self) -> Option<TableId> {
        match self {
            Instruction::GotoTable(t) => Some(*t),
            _ => None,
        }
    }
}

/// Helper: builds the common "apply these actions and stop" instruction list.
pub fn terminal_actions(actions: Vec<Action>) -> Vec<Instruction> {
    vec![Instruction::ApplyActions(actions)]
}

/// Helper: builds the common "apply these actions, then continue at `table`"
/// instruction list.
pub fn actions_then_goto(actions: Vec<Action>, table: TableId) -> Vec<Instruction> {
    vec![
        Instruction::ApplyActions(actions),
        Instruction::GotoTable(table),
    ]
}

/// Bitmask (by [`Field::index`]) of the match-relevant fields these
/// instructions can rewrite *while the packet is still traversing the
/// pipeline*. Write-actions are excluded: they execute at pipeline exit,
/// after every table lookup, so they can never change what a later table
/// matches. Delta-aware cache invalidation uses this to decide whether a
/// rule's match can be compared against extraction-time keys: a match on a
/// field some apply-action rewrites cannot.
pub fn written_match_fields(instructions: &[Instruction]) -> u64 {
    use crate::field::Field;
    let mut bits = 0u64;
    let mut mark = |f: Field| bits |= 1u64 << f.index();
    for instruction in instructions {
        match instruction {
            Instruction::ApplyActions(actions) => {
                for action in actions {
                    match action {
                        Action::SetField(f, _) => mark(*f),
                        Action::PushVlan(_) | Action::PopVlan => {
                            mark(Field::VlanVid);
                            mark(Field::VlanPcp);
                        }
                        // NAT/LB rewrite addresses and ports mid-pipeline;
                        // which of TCP/UDP depends on the packet, so both
                        // port families are marked conservatively.
                        Action::Ct(crate::ct::CtVerb::Nat(_))
                        | Action::Ct(crate::ct::CtVerb::Lb { .. }) => {
                            mark(Field::Ipv4Src);
                            mark(Field::Ipv4Dst);
                            mark(Field::TcpSrc);
                            mark(Field::TcpDst);
                            mark(Field::UdpSrc);
                            mark(Field::UdpDst);
                        }
                        // DecNwTtl touches no matchable field (TTL is not a
                        // modelled match field); Commit/Established rewrite
                        // nothing.
                        _ => {}
                    }
                }
            }
            Instruction::WriteMetadata { .. } => mark(crate::field::Field::Metadata),
            _ => {}
        }
    }
    bits
}

/// [`written_match_fields`] over every entry of a pipeline.
pub fn pipeline_written_fields(pipeline: &crate::pipeline::Pipeline) -> u64 {
    pipeline
        .tables()
        .iter()
        .flat_map(|t| t.entries())
        .fold(0u64, |bits, e| bits | written_match_fields(&e.instructions))
}

/// True when these instructions can punt a packet to the controller (an
/// explicit [`Action::ToController`] in an apply- or write-actions list).
/// Runtimes use this to decide whether a flow-mod can introduce punting into
/// a previously punt-free pipeline; like `written_match_fields`, the answer
/// is consumed as a monotone OR, so a deleted punt action merely leaves the
/// runtime conservatively prepared for punts that never come.
pub fn instructions_can_punt(instructions: &[Instruction]) -> bool {
    instructions.iter().any(|instruction| match instruction {
        Instruction::ApplyActions(actions) | Instruction::WriteActions(actions) => {
            actions.iter().any(|a| matches!(a, Action::ToController))
        }
        _ => false,
    })
}

/// True when these instructions contain a connection-tracking action (in
/// apply- or write-actions position; write-position ct is a no-op but still
/// marks the pipeline as stateful for configuration validation).
pub fn instructions_have_ct(instructions: &[Instruction]) -> bool {
    instructions.iter().any(|instruction| match instruction {
        Instruction::ApplyActions(actions) | Instruction::WriteActions(actions) => {
            actions.iter().any(|a| matches!(a, Action::Ct(_)))
        }
        _ => false,
    })
}

/// True when any entry of the pipeline carries a ct action. Runtimes use
/// this to switch on stateful behaviour: symmetric RSS (both directions of
/// a connection must land on the same shard) and per-shard engine setup.
pub fn pipeline_has_ct(pipeline: &crate::pipeline::Pipeline) -> bool {
    pipeline
        .tables()
        .iter()
        .flat_map(|t| t.entries())
        .any(|e| instructions_have_ct(&e.instructions))
}

/// True when any path through the pipeline can punt a packet to the
/// controller: a table whose miss behaviour is
/// [`TableMissBehavior::ToController`](crate::table::TableMissBehavior), or
/// any entry with an explicit output-to-controller action. Runtimes that must
/// preserve the *ingress* frame for packet-ins consult this to skip the
/// per-burst frame snapshot entirely on purely proactive pipelines.
pub fn pipeline_can_punt(pipeline: &crate::pipeline::Pipeline) -> bool {
    pipeline.tables().iter().any(|t| {
        t.miss == crate::table::TableMissBehavior::ToController
            || t.entries()
                .iter()
                .any(|e| instructions_can_punt(&e.instructions))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goto_target_extraction() {
        assert_eq!(Instruction::GotoTable(7).goto_target(), Some(7));
        assert_eq!(Instruction::ClearActions.goto_target(), None);
    }

    #[test]
    fn helpers_build_expected_lists() {
        let t = terminal_actions(vec![Action::Output(1)]);
        assert_eq!(t, vec![Instruction::ApplyActions(vec![Action::Output(1)])]);
        let g = actions_then_goto(vec![Action::PopVlan], 3);
        assert_eq!(g.len(), 2);
        assert_eq!(g[1], Instruction::GotoTable(3));
    }
}
