//! OpenFlow instructions.

use crate::action::Action;
use crate::pipeline::TableId;

/// An instruction attached to a flow entry.
///
/// Instructions control what happens when an entry matches: actions can be
/// applied immediately, merged into the packet's action set for execution at
/// pipeline exit, the metadata register can be rewritten, and processing can
/// be directed to a later table (`goto_table`), which is what builds
/// multi-stage pipelines (Fig. 1b of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// Apply the listed actions immediately, in order.
    ApplyActions(Vec<Action>),
    /// Merge the listed actions into the action set.
    WriteActions(Vec<Action>),
    /// Clear the action set.
    ClearActions,
    /// `metadata = (metadata & !mask) | (value & mask)`.
    WriteMetadata {
        /// Value to write.
        value: u64,
        /// Bits of the metadata register affected.
        mask: u64,
    },
    /// Continue processing at the given (strictly later) table.
    GotoTable(TableId),
    /// Attach a meter (modelled as a no-op; none of the use cases meter).
    Meter(u32),
}

impl Instruction {
    /// Convenience constructor: apply a single action.
    pub fn apply(action: Action) -> Self {
        Instruction::ApplyActions(vec![action])
    }

    /// Convenience constructor: write a single action into the action set.
    pub fn write(action: Action) -> Self {
        Instruction::WriteActions(vec![action])
    }

    /// The goto target, if this is a goto-table instruction.
    pub fn goto_target(&self) -> Option<TableId> {
        match self {
            Instruction::GotoTable(t) => Some(*t),
            _ => None,
        }
    }
}

/// Helper: builds the common "apply these actions and stop" instruction list.
pub fn terminal_actions(actions: Vec<Action>) -> Vec<Instruction> {
    vec![Instruction::ApplyActions(actions)]
}

/// Helper: builds the common "apply these actions, then continue at `table`"
/// instruction list.
pub fn actions_then_goto(actions: Vec<Action>, table: TableId) -> Vec<Instruction> {
    vec![
        Instruction::ApplyActions(actions),
        Instruction::GotoTable(table),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goto_target_extraction() {
        assert_eq!(Instruction::GotoTable(7).goto_target(), Some(7));
        assert_eq!(Instruction::ClearActions.goto_target(), None);
    }

    #[test]
    fn helpers_build_expected_lists() {
        let t = terminal_actions(vec![Action::Output(1)]);
        assert_eq!(t, vec![Instruction::ApplyActions(vec![Action::Output(1)])]);
        let g = actions_then_goto(vec![Action::PopVlan], 3);
        assert_eq!(g.len(), 2);
        assert_eq!(g[1], Instruction::GotoTable(3));
    }
}
