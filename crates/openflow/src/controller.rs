//! The controller side of the OpenFlow channel.
//!
//! The paper treats the controller as "the highest level of the datapath
//! hierarchy": it manages entries at the next lower level (the pipeline) and
//! serves as the last resort for packets missing that level. The access
//! gateway use case depends on this: packets of unknown users are punted, the
//! controller allocates a public IP and installs per-user NAT rules
//! reactively.

use pkt::Packet;

use crate::flow_mod::FlowMod;
use crate::messages::{PacketIn, PacketOut};

/// One decision a controller makes in response to a packet-in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControllerDecision {
    /// Install/modify/delete a flow entry.
    FlowMod(FlowMod),
    /// Send a packet back into the dataplane.
    PacketOut(PacketOut),
    /// Do nothing (the packet is dropped).
    Drop,
}

/// A controller application reacting to packet-in events.
///
/// Implementations live with the use cases (`workloads` crate) — e.g. the
/// gateway admission controller — and in the tests; the switch runtimes only
/// need this interface.
pub trait Controller: Send {
    /// Handles a packet-in, returning any number of decisions. The switch
    /// applies flow-mods first and then packet-outs, which lets a reactive
    /// controller install a rule and re-inject the triggering packet so it
    /// takes the new rule immediately.
    fn packet_in(&mut self, event: PacketIn) -> Vec<ControllerDecision>;

    /// Number of packet-in events handled so far (for the evaluation's
    /// cache-hierarchy accounting).
    fn packet_in_count(&self) -> u64;
}

/// A controller that drops every punted packet. Used as the default and for
/// the use cases that are purely proactive (L2, L3, load balancer).
#[derive(Debug, Default)]
pub struct NullController {
    seen: u64,
}

impl NullController {
    /// Creates a new drop-everything controller.
    pub fn new() -> Self {
        NullController::default()
    }
}

impl Controller for NullController {
    fn packet_in(&mut self, _event: PacketIn) -> Vec<ControllerDecision> {
        self.seen += 1;
        vec![ControllerDecision::Drop]
    }

    fn packet_in_count(&self) -> u64 {
        self.seen
    }
}

/// A controller driven by a closure; convenient for tests.
pub struct FnController<F> {
    handler: F,
    seen: u64,
}

impl<F> FnController<F>
where
    F: FnMut(PacketIn) -> Vec<ControllerDecision> + Send,
{
    /// Wraps a closure as a controller.
    pub fn new(handler: F) -> Self {
        FnController { handler, seen: 0 }
    }
}

impl<F> Controller for FnController<F>
where
    F: FnMut(PacketIn) -> Vec<ControllerDecision> + Send,
{
    fn packet_in(&mut self, event: PacketIn) -> Vec<ControllerDecision> {
        self.seen += 1;
        (self.handler)(event)
    }

    fn packet_in_count(&self) -> u64 {
        self.seen
    }
}

/// Helper for controllers that just want to flood the punted packet back out
/// (classic learning-switch behaviour before the MAC is learned).
pub fn flood_packet_out(packet: Packet) -> ControllerDecision {
    ControllerDecision::PacketOut(PacketOut::new(packet, vec![crate::action::Action::Flood]))
}

/// Helper for reactive controllers that install a rule and then re-inject
/// the triggering packet through the tables so it takes the new rule
/// immediately (the `OFPP_TABLE` packet-out).
pub fn resubmit_packet_out(packet: Packet) -> ControllerDecision {
    ControllerDecision::PacketOut(PacketOut::resubmit(packet))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::PacketInReason;
    use pkt::builder::PacketBuilder;

    fn event() -> PacketIn {
        PacketIn::new(PacketBuilder::udp().build(), PacketInReason::NoMatch, 0)
    }

    #[test]
    fn null_controller_drops_and_counts() {
        let mut c = NullController::new();
        assert_eq!(c.packet_in(event()), vec![ControllerDecision::Drop]);
        assert_eq!(c.packet_in(event()), vec![ControllerDecision::Drop]);
        assert_eq!(c.packet_in_count(), 2);
    }

    #[test]
    fn fn_controller_delegates() {
        let mut c = FnController::new(|pi| vec![flood_packet_out(pi.packet)]);
        let decisions = c.packet_in(event());
        assert_eq!(decisions.len(), 1);
        assert!(matches!(decisions[0], ControllerDecision::PacketOut(_)));
        assert_eq!(c.packet_in_count(), 1);
    }
}
