//! The OpenFlow pipeline: a linked hierarchy of flow tables, plus the
//! reference processing semantics every datapath must agree with.

use std::fmt;

use pkt::Packet;

use crate::action::{apply_action_list_into, apply_action_list_into_ct, ActionSet, OutputKind};
use crate::ct::{ConnCtx, NoCt};
use crate::entry::FlowEntry;
use crate::instruction::Instruction;
use crate::key::FlowKey;
use crate::messages::PacketInReason;
use crate::portlist::PortList;
use crate::table::{FlowTable, TableMissBehavior};

/// Identifier of a flow table within a pipeline.
///
/// OpenFlow limits the wire-visible table space to 255 tables; the internal
/// decomposition pass of ESWITCH may create more ("we are not restricted by
/// OpenFlow's limit on maximum flow table number here, since decomposition is
/// internal"), so table ids are a full `u32` internally.
pub type TableId = u32;

/// Errors raised while building or walking a pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// A `goto_table` instruction referenced a table that does not exist.
    NoSuchTable(TableId),
    /// A `goto_table` instruction pointed backwards (or to the same table),
    /// which OpenFlow forbids because it could loop forever.
    BackwardGoto {
        /// Table containing the offending instruction.
        from: TableId,
        /// Referenced table.
        to: TableId,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::NoSuchTable(t) => write!(f, "goto_table references missing table {t}"),
            PipelineError::BackwardGoto { from, to } => {
                write!(f, "goto_table from table {from} to non-later table {to}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// The forwarding decision for one packet after pipeline processing.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Verdict {
    /// Ports the (possibly rewritten) packet must be transmitted on.
    /// Inline up to four ports so cache hits never allocate.
    pub outputs: PortList,
    /// True if the packet must be flooded on all ports but the ingress one.
    pub flood: bool,
    /// True if the packet (or a copy) must be sent to the controller.
    pub to_controller: bool,
    /// Why the packet was punted, when `to_controller` is set: a table miss
    /// leaves the default `NoMatch`; an explicit output-to-controller action
    /// flips it to `Action`. The punting runtimes forward this on the
    /// packet-in so a reactive controller can tell the two apart. Not part
    /// of [`Verdict::decision`].
    pub punt_reason: PacketInReason,
    /// Number of flow tables the packet traversed.
    pub tables_visited: u32,
    /// Total number of flow entries examined across all tables — the "work"
    /// metric of the direct datapath.
    pub entries_examined: u32,
}

impl Verdict {
    /// True when the packet is dropped (no output, no flood, no controller).
    pub fn is_drop(&self) -> bool {
        self.outputs.is_empty() && !self.flood && !self.to_controller
    }

    /// Convenience constructor used by caches: forward to a single port.
    pub fn output(port: u32) -> Self {
        Verdict {
            outputs: PortList::one(port),
            ..Default::default()
        }
    }

    /// Convenience constructor used by caches: drop.
    pub fn drop() -> Self {
        Verdict::default()
    }

    /// Merges an [`OutputKind`] into the verdict.
    pub fn add(&mut self, out: OutputKind) {
        match out {
            OutputKind::Port(p) => self.outputs.push(p),
            OutputKind::Flood => self.flood = true,
            OutputKind::Controller => {
                self.to_controller = true;
                self.punt_reason = PacketInReason::Action;
            }
            OutputKind::Drop => {}
        }
    }

    /// The forwarding decision without the work accounting — what flow caches
    /// store, and what semantic-equivalence tests compare.
    pub fn decision(&self) -> (Vec<u32>, bool, bool) {
        (self.outputs.to_vec(), self.flood, self.to_controller)
    }
}

/// A complete OpenFlow pipeline: tables indexed by id, starting at table 0.
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    tables: Vec<FlowTable>,
}

impl Pipeline {
    /// Creates an empty pipeline (packets are dropped until a table 0 exists).
    pub fn new() -> Self {
        Pipeline::default()
    }

    /// Creates a pipeline with `count` empty tables numbered `0..count`.
    pub fn with_tables(count: u32) -> Self {
        let mut p = Pipeline::new();
        for id in 0..count {
            p.add_table(FlowTable::new(id));
        }
        p
    }

    /// Adds a table.
    ///
    /// # Panics
    /// Panics if a table with the same id already exists.
    pub fn add_table(&mut self, table: FlowTable) -> &mut FlowTable {
        assert!(
            self.table(table.id).is_none(),
            "duplicate table id {}",
            table.id
        );
        let id = table.id;
        self.tables.push(table);
        self.tables.sort_by_key(|t| t.id);
        self.table_mut(id).expect("just inserted")
    }

    /// Ensures a table with this id exists and returns it mutably.
    pub fn table_mut_or_create(&mut self, id: TableId) -> &mut FlowTable {
        if self.table(id).is_none() {
            self.tables.push(FlowTable::new(id));
            self.tables.sort_by_key(|t| t.id);
        }
        self.table_mut(id).expect("just created")
    }

    /// Looks up a table by id.
    pub fn table(&self, id: TableId) -> Option<&FlowTable> {
        self.tables.iter().find(|t| t.id == id)
    }

    /// Looks up a table by id, mutably.
    pub fn table_mut(&mut self, id: TableId) -> Option<&mut FlowTable> {
        self.tables.iter_mut().find(|t| t.id == id)
    }

    /// Removes a table by id, returning it if present. Used by transactional
    /// flow-mod rollback when an add implicitly created the table.
    pub fn remove_table(&mut self, id: TableId) -> Option<FlowTable> {
        let pos = self.tables.iter().position(|t| t.id == id)?;
        Some(self.tables.remove(pos))
    }

    /// All tables in ascending id order.
    pub fn tables(&self) -> &[FlowTable] {
        &self.tables
    }

    /// All tables, mutably.
    pub fn tables_mut(&mut self) -> &mut [FlowTable] {
        &mut self.tables
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Total number of flow entries across all tables.
    pub fn entry_count(&self) -> usize {
        self.tables.iter().map(FlowTable::len).sum()
    }

    /// Validates every `goto_table` reference (target exists and is a later
    /// table). Datapath compilers call this before accepting a pipeline.
    pub fn validate(&self) -> Result<(), PipelineError> {
        for table in &self.tables {
            for entry in table.entries() {
                if let Some(target) = entry.goto_target() {
                    if target <= table.id {
                        return Err(PipelineError::BackwardGoto {
                            from: table.id,
                            to: target,
                        });
                    }
                    if self.table(target).is_none() {
                        return Err(PipelineError::NoSuchTable(target));
                    }
                }
            }
        }
        Ok(())
    }

    /// Reference pipeline processing ("direct datapath" semantics, §2.1).
    ///
    /// The packet is matched starting at table 0; instructions of the matched
    /// entry are executed; processing continues at the goto target, if any,
    /// otherwise the accumulated action set runs and the verdict is returned.
    /// The packet is modified in place by apply-actions and by the final
    /// action set.
    pub fn process(&self, packet: &mut Packet) -> Verdict {
        let mut key = FlowKey::extract(packet);
        self.process_with_key(packet, &mut key)
    }

    /// Like [`Pipeline::process`] but reusing an already-extracted key
    /// (the slow-path classifier of `ovsdp` extracts the key once and needs
    /// it afterwards to build the megaflow).
    pub fn process_with_key(&self, packet: &mut Packet, key: &mut FlowKey) -> Verdict {
        self.process_with_key_ct(packet, key, &mut NoCt)
    }

    /// [`Pipeline::process`] with an explicit connection tracker threaded
    /// through ct actions.
    pub fn process_ct(&self, packet: &mut Packet, ct: &mut dyn ConnCtx) -> Verdict {
        let mut key = FlowKey::extract(packet);
        self.process_with_key_ct(packet, &mut key, ct)
    }

    /// [`Pipeline::process_with_key`] with an explicit connection tracker.
    /// A ct deny halts processing entirely: no further instructions, no
    /// later tables, no action-set flush — the verdict is a drop.
    pub fn process_with_key_ct(
        &self,
        packet: &mut Packet,
        key: &mut FlowKey,
        ct: &mut dyn ConnCtx,
    ) -> Verdict {
        let mut verdict = Verdict::default();
        let mut action_set = ActionSet::new();
        let mut table_id: TableId = 0;
        loop {
            let Some(table) = self.table(table_id) else {
                // Missing table: treat as drop.
                return verdict;
            };
            verdict.tables_visited += 1;
            let (hit, examined) = table.lookup_counted(key);
            verdict.entries_examined += examined as u32;
            match hit {
                Some(entry) => {
                    entry.record(packet.len());
                    match execute_instructions(
                        entry,
                        packet,
                        key,
                        &mut action_set,
                        &mut verdict,
                        ct,
                    ) {
                        ExecOutcome::Goto(next) => {
                            table_id = next;
                        }
                        ExecOutcome::Terminate => {
                            finish(&action_set, packet, key, &mut verdict);
                            return verdict;
                        }
                        ExecOutcome::CtHalt => {
                            // A ct action denied the packet: drop, discarding
                            // any decisions merged before the deny and
                            // skipping the action-set flush.
                            return Verdict {
                                tables_visited: verdict.tables_visited,
                                entries_examined: verdict.entries_examined,
                                ..Verdict::default()
                            };
                        }
                    }
                }
                None => match table.miss {
                    TableMissBehavior::Drop => return verdict,
                    TableMissBehavior::ToController => {
                        verdict.to_controller = true;
                        return verdict;
                    }
                    TableMissBehavior::Continue => {
                        // Continue at the next-numbered table, if any.
                        match self.tables.iter().map(|t| t.id).find(|id| *id > table_id) {
                            Some(next) => table_id = next,
                            None => return verdict,
                        }
                    }
                },
            }
        }
    }
}

/// How a matched entry's instructions left the pipeline walk.
enum ExecOutcome {
    /// Continue at this table.
    Goto(TableId),
    /// Pipeline terminates normally (flush the action set).
    Terminate,
    /// A ct action denied the packet (drop, no action-set flush).
    CtHalt,
}

/// Executes a matched entry's instructions.
fn execute_instructions(
    entry: &FlowEntry,
    packet: &mut Packet,
    key: &mut FlowKey,
    action_set: &mut ActionSet,
    verdict: &mut Verdict,
    ct: &mut dyn ConnCtx,
) -> ExecOutcome {
    let mut next = None;
    for instruction in &entry.instructions {
        match instruction {
            Instruction::ApplyActions(actions) => {
                if apply_action_list_into_ct(actions, packet, key, verdict, ct) {
                    return ExecOutcome::CtHalt;
                }
            }
            Instruction::WriteActions(actions) => {
                for a in actions {
                    action_set.write(a.clone());
                }
            }
            Instruction::ClearActions => action_set.clear(),
            Instruction::WriteMetadata { value, mask } => {
                key.metadata = (key.metadata & !mask) | (value & mask);
            }
            Instruction::GotoTable(t) => next = Some(*t),
            Instruction::Meter(_) => {}
        }
    }
    match next {
        Some(t) => ExecOutcome::Goto(t),
        None => ExecOutcome::Terminate,
    }
}

/// Runs the accumulated action set at pipeline exit.
fn finish(action_set: &ActionSet, packet: &mut Packet, key: &mut FlowKey, verdict: &mut Verdict) {
    if action_set.is_empty() {
        return;
    }
    let list = action_set.to_action_list();
    apply_action_list_into(&list, packet, key, verdict);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::field::Field;
    use crate::flow_match::FlowMatch;
    use crate::instruction::{actions_then_goto, terminal_actions};
    use pkt::builder::PacketBuilder;

    /// The single-table firewall of Fig. 1a.
    fn firewall_single_stage() -> Pipeline {
        let mut p = Pipeline::with_tables(1);
        let t = p.table_mut(0).unwrap();
        // internal port = 1, external port = 0; web server at 192.0.2.1.
        t.insert(FlowEntry::new(
            FlowMatch::any().with_exact(Field::InPort, 1),
            300,
            terminal_actions(vec![Action::Output(0)]),
        ));
        t.insert(FlowEntry::new(
            FlowMatch::any()
                .with_exact(Field::InPort, 0)
                .with_exact(Field::Ipv4Dst, u128::from(0xc0000201u32))
                .with_exact(Field::TcpDst, 80),
            200,
            terminal_actions(vec![Action::Output(1)]),
        ));
        t.insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));
        p
    }

    /// The equivalent two-stage firewall of Fig. 1b.
    fn firewall_multi_stage() -> Pipeline {
        let mut p = Pipeline::with_tables(2);
        {
            let t0 = p.table_mut(0).unwrap();
            t0.insert(FlowEntry::new(
                FlowMatch::any().with_exact(Field::InPort, 1),
                300,
                terminal_actions(vec![Action::Output(0)]),
            ));
            t0.insert(FlowEntry::new(
                FlowMatch::any().with_exact(Field::InPort, 0),
                200,
                vec![Instruction::GotoTable(1)],
            ));
        }
        {
            let t1 = p.table_mut(1).unwrap();
            t1.insert(FlowEntry::new(
                FlowMatch::any()
                    .with_exact(Field::Ipv4Dst, u128::from(0xc0000201u32))
                    .with_exact(Field::TcpDst, 80),
                100,
                terminal_actions(vec![Action::Output(1)]),
            ));
            t1.insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));
        }
        p
    }

    fn web_packet(in_port: u32, dst_port: u16) -> Packet {
        PacketBuilder::tcp()
            .ipv4_dst([192, 0, 2, 1])
            .tcp_dst(dst_port)
            .in_port(in_port)
            .build()
    }

    #[test]
    fn firewall_semantics_single_stage() {
        let p = firewall_single_stage();
        p.validate().unwrap();

        let mut from_inside = web_packet(1, 12345);
        assert_eq!(p.process(&mut from_inside).outputs, vec![0]);

        let mut http_in = web_packet(0, 80);
        assert_eq!(p.process(&mut http_in).outputs, vec![1]);

        let mut ssh_in = web_packet(0, 22);
        assert!(p.process(&mut ssh_in).is_drop());
    }

    #[test]
    fn multi_stage_firewall_is_equivalent() {
        let single = firewall_single_stage();
        let multi = firewall_multi_stage();
        multi.validate().unwrap();
        for (in_port, dst_port) in [(1u32, 443u16), (0, 80), (0, 22), (1, 80), (0, 443)] {
            let mut a = web_packet(in_port, dst_port);
            let mut b = a.clone();
            assert_eq!(
                single.process(&mut a).decision(),
                multi.process(&mut b).decision(),
                "in_port={in_port} dst_port={dst_port}"
            );
        }
        // The multi-stage pipeline visits two tables for external traffic.
        let mut http_in = web_packet(0, 80);
        assert_eq!(multi.process(&mut http_in).tables_visited, 2);
    }

    #[test]
    fn apply_actions_rewrite_then_goto() {
        // Table 0 rewrites the destination IP then sends to table 1, which
        // matches on the rewritten value.
        let mut p = Pipeline::with_tables(2);
        p.table_mut(0).unwrap().insert(FlowEntry::new(
            FlowMatch::any(),
            10,
            actions_then_goto(vec![Action::SetField(Field::Ipv4Dst, 0x0a00_0001)], 1),
        ));
        p.table_mut(1).unwrap().insert(FlowEntry::new(
            FlowMatch::any().with_exact(Field::Ipv4Dst, 0x0a00_0001),
            10,
            terminal_actions(vec![Action::Output(7)]),
        ));
        let mut pkt = web_packet(0, 80);
        let verdict = p.process(&mut pkt);
        assert_eq!(verdict.outputs, vec![7]);
        assert_eq!(FlowKey::extract(&pkt).ipv4_dst, Some(0x0a00_0001));
    }

    #[test]
    fn write_actions_execute_at_pipeline_exit() {
        let mut p = Pipeline::with_tables(2);
        p.table_mut(0).unwrap().insert(FlowEntry::new(
            FlowMatch::any(),
            10,
            vec![
                Instruction::WriteActions(vec![Action::Output(3)]),
                Instruction::GotoTable(1),
            ],
        ));
        // Table 1: the matched entry overrides the output in the action set.
        p.table_mut(1).unwrap().insert(FlowEntry::new(
            FlowMatch::any().with_exact(Field::TcpDst, 80),
            10,
            vec![Instruction::WriteActions(vec![Action::Output(5)])],
        ));
        p.table_mut(1)
            .unwrap()
            .insert(FlowEntry::new(FlowMatch::any(), 1, vec![]));

        let mut http = web_packet(0, 80);
        assert_eq!(p.process(&mut http).outputs, vec![5]);
        let mut other = web_packet(0, 22);
        assert_eq!(p.process(&mut other).outputs, vec![3]);
    }

    #[test]
    fn clear_actions_drops_accumulated_set() {
        let mut p = Pipeline::with_tables(2);
        p.table_mut(0).unwrap().insert(FlowEntry::new(
            FlowMatch::any(),
            10,
            vec![
                Instruction::WriteActions(vec![Action::Output(3)]),
                Instruction::GotoTable(1),
            ],
        ));
        p.table_mut(1).unwrap().insert(FlowEntry::new(
            FlowMatch::any(),
            10,
            vec![Instruction::ClearActions],
        ));
        let mut pkt = web_packet(0, 80);
        assert!(p.process(&mut pkt).is_drop());
    }

    #[test]
    fn metadata_written_and_matched() {
        let mut p = Pipeline::with_tables(2);
        p.table_mut(0).unwrap().insert(FlowEntry::new(
            FlowMatch::any(),
            10,
            vec![
                Instruction::WriteMetadata {
                    value: 0x5,
                    mask: 0xf,
                },
                Instruction::GotoTable(1),
            ],
        ));
        p.table_mut(1).unwrap().insert(FlowEntry::new(
            FlowMatch::any().with_exact(Field::Metadata, 0x5),
            10,
            terminal_actions(vec![Action::Output(9)]),
        ));
        let mut pkt = web_packet(0, 80);
        assert_eq!(p.process(&mut pkt).outputs, vec![9]);
    }

    #[test]
    fn table_miss_behaviours() {
        let mut p = Pipeline::with_tables(2);
        p.table_mut(0).unwrap().miss = TableMissBehavior::Continue;
        p.table_mut(1).unwrap().miss = TableMissBehavior::ToController;
        let mut pkt = web_packet(0, 80);
        let verdict = p.process(&mut pkt);
        assert!(verdict.to_controller);
        assert_eq!(verdict.tables_visited, 2);

        let mut drop_pipeline = Pipeline::with_tables(1);
        drop_pipeline.table_mut(0).unwrap().miss = TableMissBehavior::Drop;
        let mut pkt = web_packet(0, 80);
        assert!(drop_pipeline.process(&mut pkt).is_drop());
    }

    #[test]
    fn validation_rejects_bad_gotos() {
        let mut p = Pipeline::with_tables(2);
        p.table_mut(1).unwrap().insert(FlowEntry::new(
            FlowMatch::any(),
            1,
            vec![Instruction::GotoTable(0)],
        ));
        assert_eq!(
            p.validate(),
            Err(PipelineError::BackwardGoto { from: 1, to: 0 })
        );

        let mut p = Pipeline::with_tables(1);
        p.table_mut(0).unwrap().insert(FlowEntry::new(
            FlowMatch::any(),
            1,
            vec![Instruction::GotoTable(9)],
        ));
        assert_eq!(p.validate(), Err(PipelineError::NoSuchTable(9)));
    }

    #[test]
    fn entry_counters_updated() {
        let p = firewall_single_stage();
        let mut pkt = web_packet(0, 80);
        p.process(&mut pkt);
        let table = p.table(0).unwrap();
        let http_entry = &table.entries()[1];
        assert_eq!(http_entry.counters.packets(), 1);
        assert_eq!(table.lookups.packets(), 1);
    }

    #[test]
    fn work_accounting_grows_with_entries_examined() {
        let p = firewall_single_stage();
        let mut ssh = web_packet(0, 22);
        let verdict = p.process(&mut ssh);
        // Examined all three entries of the single table.
        assert_eq!(verdict.entries_examined, 3);
    }
}
