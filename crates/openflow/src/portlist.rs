//! An inline list of output ports.
//!
//! Almost every verdict carries zero or one output port; a `Vec<u32>` there
//! means one heap allocation per forwarded packet, which alone disqualifies
//! the cache hit path from being allocation-free. [`PortList`] stores the
//! first few ports inline and only spills to the heap for the rare
//! multi-output action list (flood-like replication is expressed through the
//! `flood` flag, not through ports).

use std::fmt;
use std::ops::Deref;

/// Ports stored inline before the list spills to the heap.
const INLINE: usize = 4;

/// A small-vector of output port numbers; allocation-free up to 4 entries.
#[derive(Clone, Default)]
pub struct PortList {
    inline: [u32; INLINE],
    len: u32,
    /// Holds *all* entries once `len > INLINE`; unused (empty) before that.
    spill: Vec<u32>,
}

impl PortList {
    /// Creates an empty list.
    pub fn new() -> Self {
        PortList::default()
    }

    /// Creates a single-port list (the common cached-verdict shape).
    pub fn one(port: u32) -> Self {
        let mut list = PortList::new();
        list.push(port);
        list
    }

    /// Appends a port.
    #[inline]
    pub fn push(&mut self, port: u32) {
        let n = self.len as usize;
        if n < INLINE {
            self.inline[n] = port;
        } else {
            if self.spill.is_empty() {
                self.spill.reserve(INLINE + 1);
                self.spill.extend_from_slice(&self.inline);
            }
            self.spill.push(port);
        }
        self.len += 1;
    }

    /// Removes all ports, keeping any spill capacity for reuse.
    pub fn clear(&mut self) {
        self.len = 0;
        self.spill.clear();
    }

    /// The ports as a slice, in push order.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        if self.len as usize <= INLINE {
            &self.inline[..self.len as usize]
        } else {
            &self.spill
        }
    }
}

impl Deref for PortList {
    type Target = [u32];

    #[inline]
    fn deref(&self) -> &[u32] {
        self.as_slice()
    }
}

impl fmt::Debug for PortList {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl PartialEq for PortList {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for PortList {}

impl std::hash::Hash for PortList {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<Vec<u32>> for PortList {
    fn eq(&self, other: &Vec<u32>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<PortList> for Vec<u32> {
    fn eq(&self, other: &PortList) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u32; N]> for PortList {
    fn eq(&self, other: &[u32; N]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u32]> for PortList {
    fn eq(&self, other: &&[u32]) -> bool {
        self.as_slice() == *other
    }
}

impl FromIterator<u32> for PortList {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut list = PortList::new();
        for p in iter {
            list.push(p);
        }
        list
    }
}

impl From<Vec<u32>> for PortList {
    fn from(ports: Vec<u32>) -> Self {
        ports.into_iter().collect()
    }
}

impl<'a> IntoIterator for &'a PortList {
    type Item = &'a u32;
    type IntoIter = std::slice::Iter<'a, u32>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_then_spill_preserves_order() {
        let mut list = PortList::new();
        for p in 0..10u32 {
            list.push(p);
        }
        assert_eq!(list.len(), 10);
        assert_eq!(list.as_slice(), (0..10).collect::<Vec<_>>().as_slice());
        assert_eq!(list[0], 0);
        assert_eq!(list[9], 9);
    }

    #[test]
    fn equality_with_vec_and_slice() {
        let list = PortList::one(7);
        assert_eq!(list, vec![7]);
        assert_eq!(vec![7], list);
        assert_eq!(list, [7]);
        assert!(list.contains(&7));
        assert!(!list.is_empty());
        assert_eq!(PortList::new(), Vec::<u32>::new());
    }

    #[test]
    fn clear_resets_after_spill() {
        let mut list: PortList = (0..8).collect();
        list.clear();
        assert!(list.is_empty());
        list.push(3);
        assert_eq!(list, vec![3]);
    }
}
