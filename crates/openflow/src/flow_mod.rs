//! Flow-mod handling: the controller-to-switch messages that install, modify
//! and delete flow entries.

use std::fmt;

use crate::entry::FlowEntry;
use crate::flow_match::FlowMatch;
use crate::instruction::Instruction;
use crate::pipeline::{Pipeline, TableId};

/// The flow-mod command (OpenFlow `ofp_flow_mod_command`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowModCommand {
    /// Install a new entry (replacing an identical match+priority entry).
    Add,
    /// Modify the instructions of all entries overlapping the match.
    Modify,
    /// Modify the instructions of the entry with exactly this match+priority.
    ModifyStrict,
    /// Delete all entries overlapping the match (optionally cookie-filtered).
    Delete,
    /// Delete the entry with exactly this match+priority.
    DeleteStrict,
}

/// A flow-mod message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowMod {
    /// Command.
    pub command: FlowModCommand,
    /// Target table. `None` with a delete command means "all tables".
    pub table_id: Option<TableId>,
    /// Match of the affected entries.
    pub flow_match: FlowMatch,
    /// Priority (meaningful for Add and the strict commands).
    pub priority: u16,
    /// New instructions (Add/Modify commands).
    pub instructions: Vec<Instruction>,
    /// Cookie attached to added entries / used to filter deletes.
    pub cookie: Option<u64>,
}

impl FlowMod {
    /// Convenience constructor for an Add.
    pub fn add(
        table_id: TableId,
        flow_match: FlowMatch,
        priority: u16,
        instructions: Vec<Instruction>,
    ) -> Self {
        FlowMod {
            command: FlowModCommand::Add,
            table_id: Some(table_id),
            flow_match,
            priority,
            instructions,
            cookie: None,
        }
    }

    /// Convenience constructor for a strict delete.
    pub fn delete_strict(table_id: TableId, flow_match: FlowMatch, priority: u16) -> Self {
        FlowMod {
            command: FlowModCommand::DeleteStrict,
            table_id: Some(table_id),
            flow_match,
            priority,
            instructions: Vec::new(),
            cookie: None,
        }
    }

    /// Convenience constructor for a non-strict delete over one table
    /// (an empty match deletes everything in the table).
    pub fn delete(table_id: TableId, flow_match: FlowMatch) -> Self {
        FlowMod {
            command: FlowModCommand::Delete,
            table_id: Some(table_id),
            flow_match,
            priority: 0,
            instructions: Vec::new(),
            cookie: None,
        }
    }

    /// Builder-style cookie setter.
    pub fn with_cookie(mut self, cookie: u64) -> Self {
        self.cookie = Some(cookie);
        self
    }
}

/// Errors raised while applying a flow-mod to a pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowModError {
    /// Add/Modify targeted a table id that is required but missing
    /// (Adds create tables implicitly; strict modifies do not).
    NoSuchTable(TableId),
    /// A strict modify/delete matched no entry.
    NoSuchEntry,
    /// Add/Modify without a table id.
    TableRequired,
}

impl fmt::Display for FlowModError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowModError::NoSuchTable(t) => write!(f, "no such table {t}"),
            FlowModError::NoSuchEntry => write!(f, "no matching entry"),
            FlowModError::TableRequired => write!(f, "flow-mod requires a table id"),
        }
    }
}

impl std::error::Error for FlowModError {}

/// Summary of what a flow-mod changed, returned so datapaths layered on top
/// of the pipeline (flow caches, compiled templates) know what to invalidate
/// or recompile.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FlowModEffect {
    /// Tables whose entry list changed.
    pub tables_touched: Vec<TableId>,
    /// Number of entries added.
    pub added: usize,
    /// Number of entries modified in place.
    pub modified: usize,
    /// Number of entries removed.
    pub removed: usize,
    /// The matches of every entry added, modified or removed — the delta a
    /// layered datapath needs for selective invalidation: only packets
    /// matching one of these can see a different verdict after the change.
    pub touched_matches: Vec<FlowMatch>,
}

impl FlowModEffect {
    /// Total entries the flow-mod touched (the "size" of the update).
    pub fn entries_touched(&self) -> u64 {
        (self.added + self.modified + self.removed) as u64
    }
}

/// One inverse operation recorded while applying a flow-mod.
#[derive(Debug, Clone)]
enum UndoOp {
    /// Remove the entry with this exact match+priority (inverse of an add).
    RemoveStrict {
        table: TableId,
        flow_match: FlowMatch,
        priority: u16,
    },
    /// Re-insert a displaced/removed/pre-modification entry.
    Insert { table: TableId, entry: FlowEntry },
    /// Remove a table the flow-mod implicitly created.
    RemoveTable(TableId),
}

/// Undo log of one applied flow-mod: replaying it restores the pipeline to
/// its pre-flow-mod state. Built from the entries the operation displaced
/// anyway, so the success path never clones a table or the pipeline — the
/// expensive work happens only if a caller actually rolls back (§3.4's
/// transactional updates).
#[derive(Debug, Clone, Default)]
pub struct FlowModUndo {
    ops: Vec<UndoOp>,
}

impl FlowModUndo {
    /// Reverts the recorded flow-mod on `pipeline`.
    pub fn undo(self, pipeline: &mut Pipeline) {
        for op in self.ops {
            match op {
                UndoOp::RemoveStrict {
                    table,
                    flow_match,
                    priority,
                } => {
                    if let Some(t) = pipeline.table_mut(table) {
                        t.remove_strict(&flow_match, priority);
                    }
                }
                UndoOp::Insert { table, entry } => {
                    pipeline.table_mut_or_create(table).insert(entry);
                }
                UndoOp::RemoveTable(id) => {
                    pipeline.remove_table(id);
                }
            }
        }
    }
}

/// Applies a flow-mod to a pipeline.
pub fn apply_flow_mod(
    pipeline: &mut Pipeline,
    fm: &FlowMod,
) -> Result<FlowModEffect, FlowModError> {
    apply_flow_mod_undoable(pipeline, fm).map(|(effect, _)| effect)
}

/// Applies a flow-mod and returns, alongside the effect, an undo log that
/// restores the pre-flow-mod pipeline — without any up-front clone.
pub fn apply_flow_mod_undoable(
    pipeline: &mut Pipeline,
    fm: &FlowMod,
) -> Result<(FlowModEffect, FlowModUndo), FlowModError> {
    let mut undo = FlowModUndo::default();
    match fm.command {
        FlowModCommand::Add => {
            let table_id = fm.table_id.ok_or(FlowModError::TableRequired)?;
            let created = pipeline.table(table_id).is_none();
            let table = pipeline.table_mut_or_create(table_id);
            let mut entry =
                FlowEntry::new(fm.flow_match.clone(), fm.priority, fm.instructions.clone());
            if let Some(cookie) = fm.cookie {
                entry = entry.with_cookie(cookie);
            }
            let displaced = table.insert(entry);
            if created {
                undo.ops.push(UndoOp::RemoveTable(table_id));
            } else if let Some(old) = displaced {
                // Re-inserting the displaced entry replaces the new one
                // (identical match + priority): a one-op undo.
                undo.ops.push(UndoOp::Insert {
                    table: table_id,
                    entry: old,
                });
            } else {
                undo.ops.push(UndoOp::RemoveStrict {
                    table: table_id,
                    flow_match: fm.flow_match.clone(),
                    priority: fm.priority,
                });
            }
            Ok((
                FlowModEffect {
                    tables_touched: vec![table_id],
                    added: 1,
                    touched_matches: vec![fm.flow_match.clone()],
                    ..FlowModEffect::default()
                },
                undo,
            ))
        }
        FlowModCommand::Modify | FlowModCommand::ModifyStrict => {
            let table_id = fm.table_id.ok_or(FlowModError::TableRequired)?;
            let strict = fm.command == FlowModCommand::ModifyStrict;
            let table = pipeline
                .table_mut(table_id)
                .ok_or(FlowModError::NoSuchTable(table_id))?;
            let mut modified = 0;
            let mut touched_matches = Vec::new();
            let existing = table.entries().to_vec();
            let mut replacement = Vec::with_capacity(existing.len());
            for mut e in existing {
                let hit = if strict {
                    e.priority == fm.priority && e.flow_match == fm.flow_match
                } else {
                    e.flow_match.is_more_specific_than(&fm.flow_match)
                        && fm.cookie.map(|c| e.cookie == c).unwrap_or(true)
                };
                if hit {
                    undo.ops.push(UndoOp::Insert {
                        table: table_id,
                        entry: e.clone(),
                    });
                    touched_matches.push(e.flow_match.clone());
                    e.instructions = fm.instructions.clone();
                    modified += 1;
                }
                replacement.push(e);
            }
            if modified == 0 && strict {
                return Err(FlowModError::NoSuchEntry);
            }
            table.set_entries(replacement);
            Ok((
                FlowModEffect {
                    tables_touched: vec![table_id],
                    modified,
                    touched_matches,
                    ..FlowModEffect::default()
                },
                undo,
            ))
        }
        FlowModCommand::Delete => {
            let mut touched = Vec::new();
            let mut removed = 0;
            let mut touched_matches = Vec::new();
            let target_tables: Vec<TableId> = match fm.table_id {
                Some(id) => vec![id],
                None => pipeline.tables().iter().map(|t| t.id).collect(),
            };
            for id in target_tables {
                if let Some(table) = pipeline.table_mut(id) {
                    let gone = table.remove_overlapping(&fm.flow_match, fm.cookie);
                    if !gone.is_empty() {
                        touched.push(id);
                        removed += gone.len();
                        for entry in gone {
                            touched_matches.push(entry.flow_match.clone());
                            undo.ops.push(UndoOp::Insert { table: id, entry });
                        }
                    }
                }
            }
            Ok((
                FlowModEffect {
                    tables_touched: touched,
                    removed,
                    touched_matches,
                    ..FlowModEffect::default()
                },
                undo,
            ))
        }
        FlowModCommand::DeleteStrict => {
            let table_id = fm.table_id.ok_or(FlowModError::TableRequired)?;
            let table = pipeline
                .table_mut(table_id)
                .ok_or(FlowModError::NoSuchTable(table_id))?;
            match table.remove_strict(&fm.flow_match, fm.priority) {
                Some(entry) => {
                    let touched_matches = vec![entry.flow_match.clone()];
                    undo.ops.push(UndoOp::Insert {
                        table: table_id,
                        entry,
                    });
                    Ok((
                        FlowModEffect {
                            tables_touched: vec![table_id],
                            removed: 1,
                            touched_matches,
                            ..FlowModEffect::default()
                        },
                        undo,
                    ))
                }
                None => Err(FlowModError::NoSuchEntry),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::field::Field;
    use crate::instruction::terminal_actions;

    fn add(port: u16, priority: u16, out: u32) -> FlowMod {
        FlowMod::add(
            0,
            FlowMatch::any().with_exact(Field::TcpDst, u128::from(port)),
            priority,
            terminal_actions(vec![Action::Output(out)]),
        )
    }

    #[test]
    fn add_creates_table_and_entry() {
        let mut p = Pipeline::new();
        let effect = apply_flow_mod(&mut p, &add(80, 10, 1)).unwrap();
        assert_eq!(effect.added, 1);
        assert_eq!(p.table(0).unwrap().len(), 1);
        // Adding the same match+priority replaces.
        apply_flow_mod(&mut p, &add(80, 10, 2)).unwrap();
        assert_eq!(p.table(0).unwrap().len(), 1);
        assert_eq!(
            p.table(0).unwrap().entries()[0].instructions,
            terminal_actions(vec![Action::Output(2)])
        );
    }

    #[test]
    fn strict_modify_and_delete() {
        let mut p = Pipeline::new();
        apply_flow_mod(&mut p, &add(80, 10, 1)).unwrap();
        apply_flow_mod(&mut p, &add(443, 10, 2)).unwrap();

        let modify = FlowMod {
            command: FlowModCommand::ModifyStrict,
            table_id: Some(0),
            flow_match: FlowMatch::any().with_exact(Field::TcpDst, 80),
            priority: 10,
            instructions: terminal_actions(vec![Action::Output(9)]),
            cookie: None,
        };
        let effect = apply_flow_mod(&mut p, &modify).unwrap();
        assert_eq!(effect.modified, 1);

        let missing = FlowMod {
            priority: 99,
            ..modify.clone()
        };
        assert_eq!(
            apply_flow_mod(&mut p, &missing),
            Err(FlowModError::NoSuchEntry)
        );

        let del = FlowMod::delete_strict(0, FlowMatch::any().with_exact(Field::TcpDst, 443), 10);
        assert_eq!(apply_flow_mod(&mut p, &del).unwrap().removed, 1);
        assert_eq!(p.table(0).unwrap().len(), 1);
    }

    #[test]
    fn delete_all_tables_with_none_table_id() {
        let mut p = Pipeline::new();
        apply_flow_mod(&mut p, &add(80, 10, 1)).unwrap();
        let mut fm = add(22, 10, 1);
        fm.table_id = Some(3);
        apply_flow_mod(&mut p, &fm).unwrap();

        let wipe = FlowMod {
            command: FlowModCommand::Delete,
            table_id: None,
            flow_match: FlowMatch::any(),
            priority: 0,
            instructions: vec![],
            cookie: None,
        };
        let effect = apply_flow_mod(&mut p, &wipe).unwrap();
        assert_eq!(effect.removed, 2);
        assert_eq!(effect.tables_touched.len(), 2);
        assert_eq!(p.entry_count(), 0);
    }

    #[test]
    fn cookie_filtered_delete() {
        let mut p = Pipeline::new();
        apply_flow_mod(&mut p, &add(80, 10, 1).with_cookie(0xaa)).unwrap();
        apply_flow_mod(&mut p, &add(443, 10, 1).with_cookie(0xbb)).unwrap();
        let del = FlowMod::delete(0, FlowMatch::any()).with_cookie(0xaa);
        assert_eq!(apply_flow_mod(&mut p, &del).unwrap().removed, 1);
        assert_eq!(p.table(0).unwrap().entries()[0].cookie, 0xbb);
    }

    #[test]
    fn undo_restores_pipeline_without_upfront_clone() {
        let mut p = Pipeline::new();
        apply_flow_mod(&mut p, &add(80, 10, 1)).unwrap();
        apply_flow_mod(&mut p, &add(443, 10, 2)).unwrap();
        let reference = p.clone();

        // Add that replaces an existing entry: undo restores the old actions.
        let (effect, undo) = apply_flow_mod_undoable(&mut p, &add(80, 10, 9)).unwrap();
        assert_eq!(effect.touched_matches.len(), 1);
        undo.undo(&mut p);
        assert_eq!(
            p.table(0).unwrap().entries(),
            reference.table(0).unwrap().entries()
        );

        // Add that creates a table: undo removes the table again.
        let mut fm = add(22, 10, 1);
        fm.table_id = Some(7);
        let (_, undo) = apply_flow_mod_undoable(&mut p, &fm).unwrap();
        assert!(p.table(7).is_some());
        undo.undo(&mut p);
        assert!(p.table(7).is_none());

        // Wildcard delete: undo reinstates every removed entry.
        let wipe = FlowMod::delete(0, FlowMatch::any());
        let (effect, undo) = apply_flow_mod_undoable(&mut p, &wipe).unwrap();
        assert_eq!(effect.removed, 2);
        assert_eq!(effect.touched_matches.len(), 2);
        assert_eq!(p.entry_count(), 0);
        undo.undo(&mut p);
        assert_eq!(
            p.table(0).unwrap().entries(),
            reference.table(0).unwrap().entries()
        );

        // Strict modify: undo restores the original instructions.
        let modify = FlowMod {
            command: FlowModCommand::ModifyStrict,
            table_id: Some(0),
            flow_match: FlowMatch::any().with_exact(Field::TcpDst, 80),
            priority: 10,
            instructions: terminal_actions(vec![Action::Output(5)]),
            cookie: None,
        };
        let (_, undo) = apply_flow_mod_undoable(&mut p, &modify).unwrap();
        undo.undo(&mut p);
        assert_eq!(
            p.table(0).unwrap().entries(),
            reference.table(0).unwrap().entries()
        );
    }

    #[test]
    fn effect_reports_touched_matches() {
        let mut p = Pipeline::new();
        apply_flow_mod(&mut p, &add(80, 10, 1)).unwrap();
        let del = FlowMod::delete_strict(0, FlowMatch::any().with_exact(Field::TcpDst, 80), 10);
        let effect = apply_flow_mod(&mut p, &del).unwrap();
        assert_eq!(
            effect.touched_matches,
            vec![FlowMatch::any().with_exact(Field::TcpDst, 80)]
        );
        assert_eq!(effect.entries_touched(), 1);
    }

    #[test]
    fn errors_on_missing_targets() {
        let mut p = Pipeline::new();
        let modify = FlowMod {
            command: FlowModCommand::Modify,
            table_id: Some(5),
            flow_match: FlowMatch::any(),
            priority: 0,
            instructions: vec![],
            cookie: None,
        };
        assert_eq!(
            apply_flow_mod(&mut p, &modify),
            Err(FlowModError::NoSuchTable(5))
        );
        let add_no_table = FlowMod {
            command: FlowModCommand::Add,
            table_id: None,
            flow_match: FlowMatch::any(),
            priority: 0,
            instructions: vec![],
            cookie: None,
        };
        assert_eq!(
            apply_flow_mod(&mut p, &add_no_table),
            Err(FlowModError::TableRequired)
        );
    }
}
