//! Flow entries.

use std::sync::Arc;

use netdev::Counters;

use crate::flow_match::FlowMatch;
use crate::instruction::Instruction;
use crate::pipeline::TableId;

/// A single flow entry: rule + priority + instructions + counters.
///
/// Counters are shared (`Arc`) and atomic so that a datapath holding a
/// read-only view of the pipeline can still account packets/bytes, exactly as
/// hardware and OVS do.
#[derive(Debug, Clone)]
pub struct FlowEntry {
    /// Matching rule.
    pub flow_match: FlowMatch,
    /// Priority; higher wins. Entries with equal priority are matched in
    /// insertion order.
    pub priority: u16,
    /// Instructions executed on match.
    pub instructions: Vec<Instruction>,
    /// Opaque controller cookie (used for bulk delete filtering).
    pub cookie: u64,
    /// Idle timeout in seconds (0 = none). Kept for API completeness; the
    /// datapaths do not expire entries on their own.
    pub idle_timeout: u16,
    /// Hard timeout in seconds (0 = none).
    pub hard_timeout: u16,
    /// Packet/byte counters.
    pub counters: Arc<Counters>,
}

impl FlowEntry {
    /// Creates an entry with the given match, priority and instructions.
    pub fn new(flow_match: FlowMatch, priority: u16, instructions: Vec<Instruction>) -> Self {
        FlowEntry {
            flow_match,
            priority,
            instructions,
            cookie: 0,
            idle_timeout: 0,
            hard_timeout: 0,
            counters: Arc::new(Counters::new()),
        }
    }

    /// Builder-style cookie setter.
    pub fn with_cookie(mut self, cookie: u64) -> Self {
        self.cookie = cookie;
        self
    }

    /// The goto-table target of this entry, if it has one.
    pub fn goto_target(&self) -> Option<TableId> {
        self.instructions.iter().find_map(Instruction::goto_target)
    }

    /// Records one matched packet of `bytes` bytes.
    pub fn record(&self, bytes: usize) {
        self.counters.record(bytes);
    }
}

impl PartialEq for FlowEntry {
    /// Entries compare by specification (match, priority, instructions,
    /// cookie); counters are runtime state and do not participate.
    fn eq(&self, other: &Self) -> bool {
        self.flow_match == other.flow_match
            && self.priority == other.priority
            && self.instructions == other.instructions
            && self.cookie == other.cookie
    }
}

impl Eq for FlowEntry {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::Action;
    use crate::field::Field;

    #[test]
    fn goto_target_found() {
        let e = FlowEntry::new(
            FlowMatch::any(),
            10,
            vec![
                Instruction::ApplyActions(vec![Action::Output(1)]),
                Instruction::GotoTable(5),
            ],
        );
        assert_eq!(e.goto_target(), Some(5));
        let term = FlowEntry::new(FlowMatch::any(), 10, vec![]);
        assert_eq!(term.goto_target(), None);
    }

    #[test]
    fn equality_ignores_counters() {
        let m = FlowMatch::any().with_exact(Field::TcpDst, 80);
        let a = FlowEntry::new(m.clone(), 1, vec![]);
        let b = FlowEntry::new(m, 1, vec![]);
        a.record(100);
        assert_eq!(a, b);
        assert_eq!(a.counters.packets(), 1);
        assert_eq!(b.counters.packets(), 0);
    }
}
