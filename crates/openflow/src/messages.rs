//! Controller-channel messages (the subset the reproduction needs).

use pkt::Packet;

use crate::action::Action;
use crate::pipeline::TableId;

/// Why a packet was sent to the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PacketInReason {
    /// A table-miss entry or miss behaviour punted the packet.
    #[default]
    NoMatch,
    /// An explicit output-to-controller action.
    Action,
}

/// A packet-in message: a packet handed up to the controller.
///
/// Beyond the frame itself, the message carries the metadata an asynchronous
/// slow path needs: `buffer_id` identifies the runtime's buffered punt copy
/// (so an answer can be correlated with the punt that triggered it, the
/// OpenFlow `buffer_id` role), and `epoch` records the datapath epoch the
/// punting worker was serving — a controller seeing a punt for a flow it
/// already answered can tell "stale worker" from "install lost".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketIn {
    /// The packet (full ingress frame; no miss-len truncation modelling).
    pub packet: Packet,
    /// Why the packet was punted.
    pub reason: PacketInReason,
    /// Table at which the decision to punt was taken.
    pub table_id: TableId,
    /// Token identifying the runtime's buffered punt copy, when the punting
    /// runtime buffers punts (the sharded punt rings); `None` for the
    /// synchronous single-switch runtimes.
    pub buffer_id: Option<u64>,
    /// Datapath epoch the punting worker served when the punt happened
    /// (0 for runtimes without epoch tracking).
    pub epoch: u64,
}

impl PacketIn {
    /// A packet-in with no buffering/epoch metadata (the synchronous
    /// single-switch runtimes).
    pub fn new(packet: Packet, reason: PacketInReason, table_id: TableId) -> Self {
        PacketIn {
            packet,
            reason,
            table_id,
            buffer_id: None,
            epoch: 0,
        }
    }

    /// Stamps the punting worker's datapath epoch.
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// Stamps the buffered punt copy's id.
    pub fn with_buffer(mut self, buffer_id: u64) -> Self {
        self.buffer_id = Some(buffer_id);
        self
    }
}

/// A packet-out message: the controller injects a packet into the dataplane.
///
/// Two injection modes, explicit in the type: apply the given action list
/// directly (no table lookups; an empty list applies nothing, as in
/// OpenFlow), or — when `resubmit` is set — send the packet back through
/// the flow tables (the OpenFlow `OFPP_TABLE` output), the reactive pattern
/// where the controller installs a rule and re-injects the triggering
/// packet so it takes the new rule. A resubmitting controller that never
/// installs a matching rule loops the packet through miss → punt →
/// resubmit indefinitely, exactly as `OFPP_TABLE` would on a real switch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketOut {
    /// The packet to inject.
    pub packet: Packet,
    /// Actions to apply (typically a single `Output`). Ignored when
    /// `resubmit` is set.
    pub actions: Vec<Action>,
    /// Resubmit the packet through the flow tables (`OFPP_TABLE`) instead
    /// of applying `actions`.
    pub resubmit: bool,
    /// Echo of the triggering packet-in's `buffer_id`, when the controller
    /// is answering a buffered punt.
    pub buffer_id: Option<u64>,
}

impl PacketOut {
    /// A packet-out with an explicit action list.
    pub fn new(packet: Packet, actions: Vec<Action>) -> Self {
        PacketOut {
            packet,
            actions,
            resubmit: false,
            buffer_id: None,
        }
    }

    /// A packet-out that resubmits the packet through the flow tables
    /// (`OFPP_TABLE`): the "install a rule, then re-inject the packet that
    /// missed" half of reactive provisioning.
    pub fn resubmit(packet: Packet) -> Self {
        PacketOut {
            packet,
            actions: Vec::new(),
            resubmit: true,
            buffer_id: None,
        }
    }

    /// Echoes the triggering packet-in's buffer id.
    pub fn with_buffer(mut self, buffer_id: u64) -> Self {
        self.buffer_id = Some(buffer_id);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkt::builder::PacketBuilder;

    #[test]
    fn message_construction() {
        let pi = PacketIn::new(PacketBuilder::udp().build(), PacketInReason::NoMatch, 2)
            .with_epoch(7)
            .with_buffer(42);
        assert_eq!(pi.reason, PacketInReason::NoMatch);
        assert_eq!(pi.epoch, 7);
        assert_eq!(pi.buffer_id, Some(42));
        let po = PacketOut::new(pi.packet.clone(), vec![Action::Output(1)]).with_buffer(42);
        assert_eq!(po.actions.len(), 1);
        assert!(!po.resubmit);
        assert_eq!(po.buffer_id, Some(42));
        assert!(PacketOut::resubmit(pi.packet.clone()).resubmit);
    }
}
