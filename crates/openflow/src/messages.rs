//! Controller-channel messages (the subset the reproduction needs).

use pkt::Packet;

use crate::action::Action;
use crate::pipeline::TableId;

/// Why a packet was sent to the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketInReason {
    /// A table-miss entry or miss behaviour punted the packet.
    NoMatch,
    /// An explicit output-to-controller action.
    Action,
}

/// A packet-in message: a packet handed up to the controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketIn {
    /// The packet (full frame; no buffering/miss-len modelling).
    pub packet: Packet,
    /// Why the packet was punted.
    pub reason: PacketInReason,
    /// Table at which the decision to punt was taken.
    pub table_id: TableId,
}

/// A packet-out message: the controller injects a packet into the dataplane
/// with an explicit action list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketOut {
    /// The packet to inject.
    pub packet: Packet,
    /// Actions to apply (typically a single `Output`).
    pub actions: Vec<Action>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkt::builder::PacketBuilder;

    #[test]
    fn message_construction() {
        let pi = PacketIn {
            packet: PacketBuilder::udp().build(),
            reason: PacketInReason::NoMatch,
            table_id: 2,
        };
        assert_eq!(pi.reason, PacketInReason::NoMatch);
        let po = PacketOut {
            packet: pi.packet.clone(),
            actions: vec![Action::Output(1)],
        };
        assert_eq!(po.actions.len(), 1);
    }
}
