//! OpenFlow match fields (the OXM field set).
//!
//! OpenFlow 1.4 defines 40+ matchable header fields spanning L1 metadata
//! (ingress port), L2 (MACs, EtherType, VLAN), L3 (IPv4/IPv6 addresses,
//! DSCP/ECN, protocol) and L4 (TCP/UDP/SCTP ports, ICMP type/code), plus
//! pipeline metadata and tunnel IDs. The paper's point that "excessive packet
//! classification" over this broad field set is what makes OpenFlow expensive
//! starts here: every field an entry matches on is a load + compare the fast
//! path must somehow pay for.

use serde::{Deserialize, Serialize};

/// Uniform container for a field value.
///
/// Every OXM field value fits in 128 bits (the widest are the IPv6
/// addresses), so a single `u128` keeps match arithmetic, masking and
/// hashing branch-free and allocation-free.
pub type FieldValue = u128;

/// Identifier of a matchable field (OXM `ofb_match_fields`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)] // names mirror the OpenFlow spec directly
pub enum Field {
    // Pipeline / metadata
    InPort,
    InPhyPort,
    Metadata,
    TunnelId,
    // L2
    EthDst,
    EthSrc,
    EthType,
    VlanVid,
    VlanPcp,
    // L2.5
    MplsLabel,
    MplsTc,
    MplsBos,
    PbbIsid,
    // L3 — IPv4/IPv6 common
    IpDscp,
    IpEcn,
    IpProto,
    Ipv4Src,
    Ipv4Dst,
    Ipv6Src,
    Ipv6Dst,
    Ipv6Flabel,
    Ipv6NdTarget,
    Ipv6NdSll,
    Ipv6NdTll,
    Ipv6Exthdr,
    // ARP
    ArpOp,
    ArpSpa,
    ArpTpa,
    ArpSha,
    ArpTha,
    // L4
    TcpSrc,
    TcpDst,
    UdpSrc,
    UdpDst,
    SctpSrc,
    SctpDst,
    Icmpv4Type,
    Icmpv4Code,
    Icmpv6Type,
    Icmpv6Code,
}

/// Protocol layer a field belongs to; drives the incremental parser-template
/// selection (§3.1: "save on parsing for layers that do not participate in
/// flow formation").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FieldLayer {
    /// Switch metadata — available without touching the frame.
    Meta,
    /// Ethernet / VLAN / MPLS.
    L2,
    /// IPv4 / IPv6 / ARP.
    L3,
    /// TCP / UDP / SCTP / ICMP.
    L4,
}

impl Field {
    /// All fields, in OXM order. Handy for iteration in tests and generators.
    pub const ALL: [Field; 40] = [
        Field::InPort,
        Field::InPhyPort,
        Field::Metadata,
        Field::TunnelId,
        Field::EthDst,
        Field::EthSrc,
        Field::EthType,
        Field::VlanVid,
        Field::VlanPcp,
        Field::MplsLabel,
        Field::MplsTc,
        Field::MplsBos,
        Field::PbbIsid,
        Field::IpDscp,
        Field::IpEcn,
        Field::IpProto,
        Field::Ipv4Src,
        Field::Ipv4Dst,
        Field::Ipv6Src,
        Field::Ipv6Dst,
        Field::Ipv6Flabel,
        Field::Ipv6NdTarget,
        Field::Ipv6NdSll,
        Field::Ipv6NdTll,
        Field::Ipv6Exthdr,
        Field::ArpOp,
        Field::ArpSpa,
        Field::ArpTpa,
        Field::ArpSha,
        Field::ArpTha,
        Field::TcpSrc,
        Field::TcpDst,
        Field::UdpSrc,
        Field::UdpDst,
        Field::SctpSrc,
        Field::SctpDst,
        Field::Icmpv4Type,
        Field::Icmpv4Code,
        Field::Icmpv6Type,
        Field::Icmpv6Code,
    ];

    /// Number of distinct fields (the size of dense per-field arrays).
    pub const COUNT: usize = Field::ALL.len();

    /// Dense index of this field (`Field::ALL[f.index()] == f`), used by the
    /// flat mask/key representations on the fast path.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`Field::index`].
    ///
    /// # Panics
    /// Panics if `i >= Field::COUNT`.
    #[inline]
    pub const fn from_index(i: usize) -> Field {
        Field::ALL[i]
    }

    /// Width of the field in bits.
    pub const fn width_bits(self) -> u32 {
        match self {
            Field::InPort | Field::InPhyPort | Field::MplsLabel | Field::Ipv6Flabel => 32,
            Field::Metadata | Field::TunnelId => 64,
            Field::EthDst
            | Field::EthSrc
            | Field::ArpSha
            | Field::ArpTha
            | Field::Ipv6NdSll
            | Field::Ipv6NdTll => 48,
            Field::EthType
            | Field::VlanVid
            | Field::ArpOp
            | Field::TcpSrc
            | Field::TcpDst
            | Field::UdpSrc
            | Field::UdpDst
            | Field::SctpSrc
            | Field::SctpDst
            | Field::Ipv6Exthdr => 16,
            Field::VlanPcp
            | Field::MplsTc
            | Field::MplsBos
            | Field::IpDscp
            | Field::IpEcn
            | Field::IpProto
            | Field::Icmpv4Type
            | Field::Icmpv4Code
            | Field::Icmpv6Type
            | Field::Icmpv6Code => 8,
            Field::PbbIsid => 24,
            Field::Ipv4Src | Field::Ipv4Dst | Field::ArpSpa | Field::ArpTpa => 32,
            Field::Ipv6Src | Field::Ipv6Dst | Field::Ipv6NdTarget => 128,
        }
    }

    /// The all-ones mask for this field's width.
    pub const fn full_mask(self) -> FieldValue {
        let bits = self.width_bits();
        if bits >= 128 {
            u128::MAX
        } else {
            (1u128 << bits) - 1
        }
    }

    /// Layer the field lives in.
    pub const fn layer(self) -> FieldLayer {
        match self {
            Field::InPort | Field::InPhyPort | Field::Metadata | Field::TunnelId => {
                FieldLayer::Meta
            }
            Field::EthDst
            | Field::EthSrc
            | Field::EthType
            | Field::VlanVid
            | Field::VlanPcp
            | Field::MplsLabel
            | Field::MplsTc
            | Field::MplsBos
            | Field::PbbIsid => FieldLayer::L2,
            Field::IpDscp
            | Field::IpEcn
            | Field::IpProto
            | Field::Ipv4Src
            | Field::Ipv4Dst
            | Field::Ipv6Src
            | Field::Ipv6Dst
            | Field::Ipv6Flabel
            | Field::Ipv6NdTarget
            | Field::Ipv6NdSll
            | Field::Ipv6NdTll
            | Field::Ipv6Exthdr
            | Field::ArpOp
            | Field::ArpSpa
            | Field::ArpTpa
            | Field::ArpSha
            | Field::ArpTha => FieldLayer::L3,
            Field::TcpSrc
            | Field::TcpDst
            | Field::UdpSrc
            | Field::UdpDst
            | Field::SctpSrc
            | Field::SctpDst
            | Field::Icmpv4Type
            | Field::Icmpv4Code
            | Field::Icmpv6Type
            | Field::Icmpv6Code => FieldLayer::L4,
        }
    }

    /// True if a mask can be a prefix mask on this field (the LPM template
    /// prerequisite only ever applies to address-like fields).
    pub const fn supports_prefix(self) -> bool {
        matches!(
            self,
            Field::Ipv4Src
                | Field::Ipv4Dst
                | Field::Ipv6Src
                | Field::Ipv6Dst
                | Field::ArpSpa
                | Field::ArpTpa
                | Field::Metadata
                | Field::TunnelId
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_index_roundtrips_through_all() {
        // The flat mask/key fast paths depend on `ALL` being declared in
        // discriminant order.
        assert_eq!(Field::COUNT, 40);
        for (i, f) in Field::ALL.iter().enumerate() {
            assert_eq!(f.index(), i, "{f:?}");
            assert_eq!(Field::from_index(i), *f);
        }
    }

    #[test]
    fn widths_are_sane() {
        assert_eq!(Field::EthDst.width_bits(), 48);
        assert_eq!(Field::Ipv4Dst.width_bits(), 32);
        assert_eq!(Field::TcpDst.width_bits(), 16);
        assert_eq!(Field::Ipv6Src.width_bits(), 128);
        assert_eq!(Field::IpProto.width_bits(), 8);
    }

    #[test]
    fn full_mask_matches_width() {
        assert_eq!(Field::TcpDst.full_mask(), 0xffff);
        assert_eq!(Field::EthSrc.full_mask(), 0xffff_ffff_ffff);
        assert_eq!(Field::Ipv6Dst.full_mask(), u128::MAX);
        assert_eq!(Field::VlanPcp.full_mask(), 0xff);
    }

    #[test]
    fn layers_partition_fields() {
        assert_eq!(Field::InPort.layer(), FieldLayer::Meta);
        assert_eq!(Field::EthType.layer(), FieldLayer::L2);
        assert_eq!(Field::Ipv4Dst.layer(), FieldLayer::L3);
        assert_eq!(Field::UdpDst.layer(), FieldLayer::L4);
        assert!(FieldLayer::Meta < FieldLayer::L2);
        assert!(FieldLayer::L2 < FieldLayer::L4);
    }

    #[test]
    fn prefix_support_only_on_address_like_fields() {
        assert!(Field::Ipv4Dst.supports_prefix());
        assert!(Field::Ipv6Src.supports_prefix());
        assert!(!Field::TcpDst.supports_prefix());
        assert!(!Field::EthDst.supports_prefix());
    }
}
