//! Match specifications: sets of (field, value, mask) triples.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::field::{Field, FieldValue};
use crate::key::FlowKey;

/// One matched field: the packet's value for `field`, ANDed with `mask`, must
/// equal `value & mask`.
///
/// This is exactly the operation the ESWITCH matcher template compiles to
/// (`xor eax,ADDR; and eax,MASK; jne next`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MatchField {
    /// Field to match on.
    pub field: Field,
    /// Expected value (already masked by constructors).
    pub value: FieldValue,
    /// Bits of the field that participate in the comparison.
    pub mask: FieldValue,
}

impl MatchField {
    /// Exact match on the field's full width.
    pub fn exact(field: Field, value: FieldValue) -> Self {
        let mask = field.full_mask();
        MatchField {
            field,
            value: value & mask,
            mask,
        }
    }

    /// Masked match.
    pub fn masked(field: Field, value: FieldValue, mask: FieldValue) -> Self {
        let mask = mask & field.full_mask();
        MatchField {
            field,
            value: value & mask,
            mask,
        }
    }

    /// Prefix match on an address-like field: the top `prefix_len` bits of the
    /// field participate.
    ///
    /// # Panics
    /// Panics if `prefix_len` exceeds the field width.
    pub fn prefix(field: Field, value: FieldValue, prefix_len: u32) -> Self {
        let width = field.width_bits();
        assert!(prefix_len <= width, "prefix length exceeds field width");
        let mask = if prefix_len == 0 {
            0
        } else {
            field.full_mask() & !((1u128 << (width - prefix_len)) - 1)
        };
        MatchField {
            field,
            value: value & mask,
            mask,
        }
    }

    /// True if the mask covers the field's full width.
    pub fn is_exact(&self) -> bool {
        self.mask == self.field.full_mask()
    }

    /// Prefix length if the mask is a prefix mask (contiguous ones from the
    /// top of the field), else `None`. A full mask counts as width-length
    /// prefix; an empty mask counts as /0.
    pub fn prefix_len(&self) -> Option<u32> {
        let width = self.field.width_bits();
        let full = self.field.full_mask();
        if self.mask == full {
            return Some(width);
        }
        if self.mask == 0 {
            return Some(0);
        }
        // A prefix mask, shifted down by its trailing zero count, must be all
        // ones and must reach the top bit of the field.
        let tz = self.mask.trailing_zeros();
        let shifted = self.mask >> tz;
        if shifted.count_ones() + tz == width && shifted & (shifted + 1) == 0 {
            Some(width - tz)
        } else {
            None
        }
    }

    /// Does `packet_value` satisfy this match?
    #[inline]
    pub fn matches_value(&self, packet_value: FieldValue) -> bool {
        packet_value & self.mask == self.value
    }
}

impl fmt::Display for MatchField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_exact() {
            write!(f, "{:?}={:#x}", self.field, self.value)
        } else if let Some(len) = self.prefix_len() {
            write!(f, "{:?}={:#x}/{}", self.field, self.value, len)
        } else {
            write!(f, "{:?}={:#x}&{:#x}", self.field, self.value, self.mask)
        }
    }
}

/// A full match specification: the conjunction of per-field matches.
/// An empty `FlowMatch` matches every packet (the catch-all rule).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct FlowMatch {
    fields: Vec<MatchField>,
}

impl FlowMatch {
    /// The match-everything specification.
    pub fn any() -> Self {
        FlowMatch::default()
    }

    /// Builds a match from a list of per-field matches. Later entries on the
    /// same field replace earlier ones. Fields are kept sorted so equal
    /// matches compare equal regardless of construction order.
    pub fn new(fields: impl IntoIterator<Item = MatchField>) -> Self {
        let mut m = FlowMatch::default();
        for f in fields {
            m.push(f);
        }
        m
    }

    /// Adds (or replaces) a per-field match.
    pub fn push(&mut self, field: MatchField) {
        match self.fields.binary_search_by_key(&field.field, |f| f.field) {
            Ok(i) => self.fields[i] = field,
            Err(i) => self.fields.insert(i, field),
        }
    }

    /// Builder-style [`FlowMatch::push`].
    pub fn with(mut self, field: MatchField) -> Self {
        self.push(field);
        self
    }

    /// Convenience: add an exact match.
    pub fn with_exact(self, field: Field, value: FieldValue) -> Self {
        self.with(MatchField::exact(field, value))
    }

    /// Convenience: add a prefix match.
    pub fn with_prefix(self, field: Field, value: FieldValue, len: u32) -> Self {
        self.with(MatchField::prefix(field, value, len))
    }

    /// The per-field matches, sorted by field.
    pub fn fields(&self) -> &[MatchField] {
        &self.fields
    }

    /// The match on `field`, if any.
    pub fn field(&self, field: Field) -> Option<&MatchField> {
        self.fields
            .binary_search_by_key(&field, |f| f.field)
            .ok()
            .map(|i| &self.fields[i])
    }

    /// Removes the match on `field`, returning it if present. Used by the
    /// flow-table decomposition algorithm when stripping a column.
    pub fn remove_field(&mut self, field: Field) -> Option<MatchField> {
        match self.fields.binary_search_by_key(&field, |f| f.field) {
            Ok(i) => Some(self.fields.remove(i)),
            Err(_) => None,
        }
    }

    /// Number of matched fields (0 for the catch-all).
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True for the catch-all match.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// True when every matched field is an exact match.
    pub fn is_all_exact(&self) -> bool {
        self.fields.iter().all(MatchField::is_exact)
    }

    /// Evaluates the match against an extracted flow key.
    ///
    /// A match on a field the packet does not carry fails, which implements
    /// OpenFlow's prerequisite semantics well enough for the pipeline model
    /// (e.g. `tcp_dst=80` cannot match a UDP packet).
    pub fn matches(&self, key: &FlowKey) -> bool {
        self.fields.iter().all(|f| match key.get(f.field) {
            Some(v) => f.matches_value(v),
            None => false,
        })
    }

    /// True if every packet matched by `self` is also matched by `pattern` —
    /// i.e. `self` is equal to or more specific than `pattern`. This is the
    /// filter semantics OpenFlow non-strict delete/modify use: `pattern` must
    /// be satisfied, field by field, by the entry's own match.
    pub fn is_more_specific_than(&self, pattern: &FlowMatch) -> bool {
        pattern.fields.iter().all(|pf| match self.field(pf.field) {
            Some(ef) => ef.mask & pf.mask == pf.mask && ef.value & pf.mask == pf.value,
            None => false,
        })
    }

    /// True if `self` and `other` could both match some packet — a
    /// conservative overlap check used by strict flow-mod deletes and by the
    /// decomposition pass: two matches are disjoint exactly when they
    /// disagree on a commonly-masked bit of some field.
    pub fn overlaps(&self, other: &FlowMatch) -> bool {
        for f in &self.fields {
            if let Some(g) = other.field(f.field) {
                let common = f.mask & g.mask;
                if f.value & common != g.value & common {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Display for FlowMatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.fields.is_empty() {
            return write!(f, "*");
        }
        let parts: Vec<String> = self.fields.iter().map(|m| m.to_string()).collect();
        write!(f, "{}", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkt::builder::PacketBuilder;

    #[test]
    fn exact_and_masked_matching() {
        let m = MatchField::exact(Field::TcpDst, 80);
        assert!(m.is_exact());
        assert!(m.matches_value(80));
        assert!(!m.matches_value(81));

        let masked = MatchField::masked(Field::TcpDst, 0x0050, 0x00f0);
        assert!(!masked.is_exact());
        assert!(masked.matches_value(0x0050));
        assert!(masked.matches_value(0x1f5f)); // only bits 4..8 compared
        assert!(!masked.matches_value(0x0060));
    }

    #[test]
    fn prefix_masks() {
        let p = MatchField::prefix(Field::Ipv4Dst, 0xc000_0200, 24);
        assert_eq!(p.mask, 0xffff_ff00);
        assert_eq!(p.prefix_len(), Some(24));
        assert!(p.matches_value(0xc000_02aa));
        assert!(!p.matches_value(0xc000_03aa));

        let full = MatchField::exact(Field::Ipv4Dst, 1);
        assert_eq!(full.prefix_len(), Some(32));
        let zero = MatchField::prefix(Field::Ipv4Dst, 0, 0);
        assert_eq!(zero.prefix_len(), Some(0));
        let non_prefix = MatchField::masked(Field::Ipv4Dst, 0, 0x00ff_ff00);
        assert_eq!(non_prefix.prefix_len(), None);
    }

    #[test]
    #[should_panic(expected = "prefix length exceeds field width")]
    fn oversized_prefix_panics() {
        let _ = MatchField::prefix(Field::Ipv4Dst, 0, 33);
    }

    #[test]
    fn flow_match_ordering_independent_equality() {
        let a = FlowMatch::any()
            .with_exact(Field::TcpDst, 80)
            .with_exact(Field::Ipv4Dst, 0x0a000001);
        let b = FlowMatch::any()
            .with_exact(Field::Ipv4Dst, 0x0a000001)
            .with_exact(Field::TcpDst, 80);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn replace_field_on_push() {
        let m = FlowMatch::any()
            .with_exact(Field::TcpDst, 80)
            .with_exact(Field::TcpDst, 443);
        assert_eq!(m.len(), 1);
        assert_eq!(m.field(Field::TcpDst).unwrap().value, 443);
    }

    #[test]
    fn matching_against_packets() {
        let pkt = PacketBuilder::tcp()
            .ipv4_dst([192, 0, 2, 1])
            .tcp_dst(80)
            .in_port(1)
            .build();
        let key = FlowKey::extract(&pkt);

        let m = FlowMatch::any()
            .with_exact(Field::InPort, 1)
            .with_prefix(Field::Ipv4Dst, u128::from(0xc0000201u32), 24)
            .with_exact(Field::TcpDst, 80);
        assert!(m.matches(&key));

        let wrong_port = FlowMatch::any().with_exact(Field::TcpDst, 443);
        assert!(!wrong_port.matches(&key));

        // Match on a field the packet does not have fails.
        let udp_match = FlowMatch::any().with_exact(Field::UdpDst, 80);
        assert!(!udp_match.matches(&key));

        // The catch-all matches everything.
        assert!(FlowMatch::any().matches(&key));
    }

    #[test]
    fn specificity_filter_semantics() {
        let pattern = FlowMatch::any().with_exact(Field::TcpDst, 80);
        let exact = FlowMatch::any()
            .with_exact(Field::TcpDst, 80)
            .with_exact(Field::Ipv4Dst, 1);
        let broader = FlowMatch::any();
        let other_port = FlowMatch::any().with_exact(Field::TcpDst, 443);
        assert!(exact.is_more_specific_than(&pattern));
        assert!(pattern.is_more_specific_than(&pattern));
        assert!(!broader.is_more_specific_than(&pattern));
        assert!(!other_port.is_more_specific_than(&pattern));
        // Everything is more specific than the catch-all pattern.
        assert!(broader.is_more_specific_than(&FlowMatch::any()));
        assert!(exact.is_more_specific_than(&FlowMatch::any()));
        // Prefix pattern: a /32 inside the /24 qualifies, one outside doesn't.
        let prefix = FlowMatch::any().with_prefix(Field::Ipv4Dst, 0xc0000200, 24);
        let inside = FlowMatch::any().with_exact(Field::Ipv4Dst, 0xc0000205);
        let outside = FlowMatch::any().with_exact(Field::Ipv4Dst, 0xc0000305);
        assert!(inside.is_more_specific_than(&prefix));
        assert!(!outside.is_more_specific_than(&prefix));
    }

    #[test]
    fn overlap_detection() {
        let a = FlowMatch::any().with_exact(Field::TcpDst, 80);
        let b = FlowMatch::any().with_exact(Field::TcpDst, 443);
        let c = FlowMatch::any().with_prefix(Field::Ipv4Dst, 0xc0000200, 24);
        let d = FlowMatch::any().with_exact(Field::TcpDst, 80).with_prefix(
            Field::Ipv4Dst,
            0xc0000200,
            24,
        );
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&c)); // disjoint fields can both match
        assert!(a.overlaps(&d));
        assert!(!b.overlaps(&d));
        assert!(FlowMatch::any().overlaps(&a));
    }

    #[test]
    fn remove_field_strips_column() {
        let mut m = FlowMatch::any()
            .with_exact(Field::TcpDst, 80)
            .with_exact(Field::InPort, 1);
        let removed = m.remove_field(Field::TcpDst).unwrap();
        assert_eq!(removed.value, 80);
        assert_eq!(m.len(), 1);
        assert!(m.remove_field(Field::TcpDst).is_none());
    }

    #[test]
    fn display_formats() {
        let m = FlowMatch::any().with_exact(Field::TcpDst, 80).with_prefix(
            Field::Ipv4Dst,
            0xc0000200,
            24,
        );
        let text = m.to_string();
        assert!(text.contains("TcpDst=0x50"));
        assert!(text.contains("/24"));
        assert_eq!(FlowMatch::any().to_string(), "*");
    }
}
