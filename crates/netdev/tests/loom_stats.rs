//! Exhaustive model checking of the shared counters.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p netdev --test loom_stats`.

#![cfg(all(loom, not(spsc_tail_relaxed_mutation)))]

use loom::sync::Arc;
use loom::thread;

use netdev::Counters;

/// `record_batch` totals are exact under concurrent recorders in every
/// schedule — no lost updates, no torn packet/byte pairs in the final sum.
#[test]
fn record_batch_is_exact_under_concurrency() {
    loom::model(|| {
        let counters = Arc::new(Counters::new());
        let handles: Vec<_> = (0..2)
            .map(|worker| {
                let counters = Arc::clone(&counters);
                thread::spawn(move || {
                    counters.record_batch(2, 64 * (worker + 1));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = counters.snapshot();
        assert_eq!(snap.packets, 4);
        assert_eq!(snap.bytes, 64 + 128);
        assert_eq!(snap.drops, 0);
    });
}

/// A reader that observes a worker's packet count also observes everything
/// the worker did before recording (the release/acquire contract shutdown's
/// phase-1 wait relies on).
#[test]
fn observed_count_implies_prior_work_visible() {
    loom::model(|| {
        let counters = Arc::new(Counters::new());
        let flag = Arc::new(loom::sync::atomic::AtomicUsize::new(0));
        let (c2, f2) = (Arc::clone(&counters), Arc::clone(&flag));
        let t = thread::spawn(move || {
            // "Work" first (the punt enqueue in the real worker)…
            f2.store(1, loom::sync::atomic::Ordering::Relaxed);
            // …then the Release increment that publishes it.
            c2.record(64);
        });
        if counters.packets() == 1 {
            assert_eq!(
                flag.load(loom::sync::atomic::Ordering::Relaxed),
                1,
                "count visible before the work that preceded it"
            );
        }
        t.join().unwrap();
    });
}
