//! Cross-thread accounting tests for the MPMC ring and the shared
//! counters, under the real `std` scheduler (the loom suites cover the
//! small exhaustive models; these push larger volumes through the same
//! types to exercise contention the models keep bounded).

use std::collections::HashSet;
use std::sync::Arc;
use std::thread;

use netdev::{Counters, MpmcRing};

/// Every item pushed by any producer is popped by exactly one consumer:
/// nothing lost, nothing duplicated, per-thread FIFO preserved.
#[test]
fn mpmc_cross_thread_push_pop_accounting() {
    const PRODUCERS: u32 = 3;
    const CONSUMERS: usize = 3;
    const PER_PRODUCER: u32 = 2_000;

    let ring: Arc<MpmcRing<u32>> = Arc::new(MpmcRing::new(64));
    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    let mut item = p * PER_PRODUCER + i;
                    loop {
                        match ring.push(item) {
                            Ok(()) => break,
                            Err(back) => {
                                item = back;
                                thread::yield_now();
                            }
                        }
                    }
                }
            })
        })
        .collect();
    let consumers: Vec<_> = (0..CONSUMERS)
        .map(|_| {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                let mut got = Vec::new();
                // Each consumer drains its fair share; the exact split
                // doesn't matter, only that the union is exact.
                while got.len() < (PRODUCERS * PER_PRODUCER) as usize / CONSUMERS {
                    match ring.pop() {
                        Some(v) => got.push(v),
                        None => thread::yield_now(),
                    }
                }
                got
            })
        })
        .collect();
    for p in producers {
        p.join().unwrap();
    }
    let mut all: Vec<u32> = Vec::new();
    for c in consumers {
        all.extend(c.join().unwrap());
    }
    assert!(ring.is_empty(), "items left behind after full drain");
    assert_eq!(all.len(), (PRODUCERS * PER_PRODUCER) as usize);
    let distinct: HashSet<u32> = all.iter().copied().collect();
    assert_eq!(distinct.len(), all.len(), "an item was duplicated");
    assert_eq!(
        distinct.len(),
        (PRODUCERS * PER_PRODUCER) as usize,
        "an item was lost"
    );
    let total: u64 = all.iter().map(|&v| u64::from(v)).sum();
    let n = u64::from(PRODUCERS * PER_PRODUCER);
    assert_eq!(total, n * (n - 1) / 2, "item values were corrupted");
}

/// `Counters` totals are exact when many threads record concurrently —
/// the std twin of the loom `record_batch_is_exact_under_concurrency`
/// model, at volumes the exhaustive checker could never explore.
#[test]
fn counters_are_exact_across_threads() {
    const THREADS: u64 = 4;
    const BATCHES: u64 = 5_000;

    let counters = Arc::new(Counters::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let counters = Arc::clone(&counters);
            thread::spawn(move || {
                for _ in 0..BATCHES {
                    counters.record_batch(2, 128);
                    counters.record(64);
                    counters.record_drop();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = counters.snapshot();
    assert_eq!(snap.packets, THREADS * BATCHES * 3);
    assert_eq!(snap.bytes, THREADS * BATCHES * (128 + 64));
    assert_eq!(snap.drops, THREADS * BATCHES);
}
