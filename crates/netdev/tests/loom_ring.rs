//! Exhaustive model checking of the SPSC ring's publication protocol.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p netdev --test loom_ring`
//! (CI's `model` job). Every test explores *all* interleavings of the two
//! protocol threads under the vendored loom scheduler; the `UnsafeCell`
//! race detector doubles as the memory-safety oracle — an item observed
//! without the tail/head release-acquire edge would be reported as a data
//! race, an uninitialised or double read would trip the FIFO asserts.

#![cfg(all(loom, not(spsc_tail_relaxed_mutation)))]

use loom::sync::Arc;
use loom::thread;

use netdev::SpscRing;

/// Push/pop across threads: every item arrives exactly once, in order, and
/// boxed payloads are neither lost nor double-dropped (a double
/// `assume_init_read` of a `Box` would produce two owners and fail loom's
/// leak-free teardown; a lost item would fail the count). Item 0 is staged
/// before the spawn so one push races the consumer's spin loop — the FIFO
/// assert still crosses the concurrent boundary, at half the DFS depth.
#[test]
fn spsc_push_pop_exactly_once() {
    loom::model(|| {
        let ring = Arc::new(SpscRing::new(2));
        ring.push(Box::new(0u32)).unwrap();
        let producer = Arc::clone(&ring);
        let t = thread::spawn(move || {
            producer.push(Box::new(1u32)).unwrap();
        });
        let mut got = 0u32;
        while got < 2 {
            match ring.pop() {
                Some(item) => {
                    assert_eq!(*item, got, "FIFO order violated");
                    got += 1;
                }
                None => thread::yield_now(),
            }
        }
        t.join().unwrap();
        assert!(ring.pop().is_none());
    });
}

/// `push_burst` publishes the whole burst with one tail store: a concurrent
/// consumer observes either nothing or a FIFO-consistent prefix — never a
/// later item without the earlier ones.
#[test]
fn spsc_push_burst_publishes_all_or_nothing() {
    loom::model(|| {
        let ring = Arc::new(SpscRing::new(4));
        let producer = Arc::clone(&ring);
        let t = thread::spawn(move || {
            let mut items = vec![10u32, 11, 12];
            assert_eq!(producer.push_burst(&mut items), 3);
        });
        // A single racing pop: whatever it sees must start the burst.
        if let Some(first) = ring.pop() {
            assert_eq!(first, 10, "observed a non-prefix item mid-burst");
        }
        t.join().unwrap();
        // Drain the rest; the remainder must still be in FIFO order.
        let mut rest = Vec::new();
        ring.pop_burst(&mut rest, 4);
        let mut drained: Vec<u32> = Vec::new();
        drained.extend(rest);
        let expect: Vec<u32> = (10..13).skip(3 - (drained.len())).collect();
        assert_eq!(drained, expect);
    });
}

/// `pop_burst` mirrors `push_burst`: one head publication for the whole
/// burst, so the producer sees pre- or post-burst free space, never a
/// partial drain — and the items still arrive exactly once, in order.
#[test]
fn spsc_pop_burst_exactly_once() {
    loom::model(|| {
        let ring = Arc::new(SpscRing::new(2));
        ring.push(0u32).unwrap();
        let producer = Arc::clone(&ring);
        let t = thread::spawn(move || {
            producer.push(1u32).unwrap();
        });
        let mut out: Vec<u32> = Vec::new();
        while out.len() < 2 {
            if ring.pop_burst(&mut out, 2) == 0 {
                thread::yield_now();
            }
        }
        assert_eq!(out, vec![0, 1]);
        t.join().unwrap();
    });
}

/// `len` never underflows: loading `head` before `tail` keeps the
/// subtraction inside `0..=capacity` in every interleaving with a
/// concurrent consumer (the old tail-first order could see `head > tail`
/// and wrap to ~`usize::MAX` — the satellite bug this test pins).
#[test]
fn spsc_len_never_underflows() {
    loom::model(|| {
        let ring = Arc::new(SpscRing::new(2));
        ring.push(1u32).unwrap();
        ring.push(2u32).unwrap();
        let consumer = Arc::clone(&ring);
        let t = thread::spawn(move || {
            assert_eq!(consumer.pop(), Some(1));
            assert_eq!(consumer.pop(), Some(2));
        });
        // Racing len() observers: any value beyond capacity is an underflow.
        for _ in 0..2 {
            let len = ring.len();
            assert!(len <= ring.capacity(), "len underflowed: {len}");
        }
        t.join().unwrap();
    });
}

/// Dropping a ring that still holds items runs each remaining destructor
/// exactly once, after the consumer's reads happened-before the drop (via
/// the join edge) — loom's teardown would flag a leaked or double-freed
/// `Arc` payload.
#[test]
fn spsc_drop_drains_pending_items() {
    loom::model(|| {
        let ring = Arc::new(SpscRing::new(4));
        let payload = Arc::new(0u32);
        ring.push(Arc::clone(&payload)).unwrap();
        ring.push(Arc::clone(&payload)).unwrap();
        let consumer = Arc::clone(&ring);
        let t = thread::spawn(move || {
            let _ = consumer.pop();
        });
        t.join().unwrap();
        drop(ring);
        assert_eq!(Arc::strong_count(&payload), 1);
    });
}
