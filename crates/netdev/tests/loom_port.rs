//! Exhaustive model checking of the port rings' MP/MC head/tail protocol.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p netdev --test loom_port`
//! (CI's `model` job). The port RX/TX queues are backed by the native
//! `MpmcRing` (the `rte_ring` reservation protocol: CAS head reservation,
//! in-order tail publication), so these models cover both the raw ring and
//! the `Port` wrappers the dispatchers actually call: inject/rx
//! exactly-once delivery with `in_port` stamping, and single-publication
//! vectored TX bursts.
//!
//! MP/MC models are kept deliberately tiny — one contended operation per
//! model, two threads — because the reservation protocol carries a CAS loop
//! plus a tail spin per operation and the DFS fans out fast. Where the
//! assertion is about *reservation disjointness* (not visibility), the
//! consumer runs after the join: the racing window under test is the
//! producers' CAS/publication, which is fully explored either way.

#![cfg(all(loom, not(spsc_tail_relaxed_mutation)))]

use loom::sync::Arc;
use loom::thread;

use netdev::{MpmcRing, Port};
use pkt::builder::PacketBuilder;

/// Cross-thread push/pop: the consumer only observes the item after the
/// producer's tail publication, exactly once (a double `assume_init_read`
/// of a `Box` would double-free and fail loom's leak-free teardown; the
/// `UnsafeCell` race detector is the memory-safety oracle for the slot).
#[test]
fn mpmc_push_pop_exactly_once() {
    loom::model(|| {
        let ring = Arc::new(MpmcRing::new(2));
        let producer = Arc::clone(&ring);
        let t = thread::spawn(move || {
            producer.push(Box::new(7u32)).unwrap();
        });
        let item = loop {
            match ring.pop() {
                Some(item) => break item,
                None => thread::yield_now(),
            }
        };
        assert_eq!(*item, 7);
        t.join().unwrap();
        assert!(ring.pop().is_none());
    });
}

/// Two contending producers: the CAS reservation hands out disjoint slots
/// and the in-order tail publication makes both items visible — nothing
/// lost, nothing duplicated. The contended window is the reservation race;
/// consumption runs after the join.
#[test]
fn mpmc_contending_producers_disjoint_slots() {
    loom::model(|| {
        let ring = Arc::new(MpmcRing::new(2));
        let other = Arc::clone(&ring);
        let t = thread::spawn(move || {
            other.push(Box::new(1u32)).unwrap();
        });
        ring.push(Box::new(2u32)).unwrap();
        t.join().unwrap();
        let mut got = [false; 3];
        while let Some(item) = ring.pop() {
            assert!(!got[*item as usize], "item {item} delivered twice");
            got[*item as usize] = true;
        }
        assert!(got[1] && got[2], "an item was lost");
    });
}

/// A burst reservation contending with a single-item producer: one CAS
/// claims the whole burst's slots, disjoint from the single push, and both
/// publications land (no slot handed out twice, no item stranded).
#[test]
fn mpmc_burst_and_single_producers_disjoint_slots() {
    loom::model(|| {
        let ring = Arc::new(MpmcRing::new(4));
        let burster = Arc::clone(&ring);
        let t = thread::spawn(move || {
            let mut items = vec![10u32, 11];
            assert_eq!(burster.push_burst(&mut items), 2);
        });
        ring.push(1u32).unwrap();
        t.join().unwrap();
        let mut seen = Vec::new();
        while let Some(item) = ring.pop() {
            seen.push(item);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 10, 11]);
        // FIFO within the burst's reservation: 10 before 11.
        drop(ring);
    });
}

/// `Port::inject` racing the datapath's `rx_burst_into`: the frame arrives
/// exactly once with `in_port` rewritten to the port id, and the RX packet
/// counter (published with the same burst) converges to the injected total.
#[test]
fn port_inject_rx_exactly_once() {
    loom::model(|| {
        let port = Arc::new(Port::with_depth(7, 2));
        let injector = Arc::clone(&port);
        let t = thread::spawn(move || {
            assert!(injector.inject(PacketBuilder::udp().in_port(99).build()));
        });
        let mut out = Vec::with_capacity(1);
        while port.rx_burst_into(&mut out, 1) == 0 {
            thread::yield_now();
        }
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].in_port, 7, "in_port not stamped on inject");
        t.join().unwrap();
        assert_eq!(port.stats().rx.packets(), 1);
        assert_eq!(port.rx_pending(), 0);
    });
}

/// `Port::tx_burst` publishes the whole burst with one tail store: a racing
/// wire-side drain observes either nothing or the full burst — never a torn
/// prefix — and the TX packet counter is batched, not per-frame.
#[test]
fn port_tx_burst_single_publication() {
    loom::model(|| {
        let port = Arc::new(Port::with_depth(0, 4));
        let worker = Arc::clone(&port);
        let t = thread::spawn(move || {
            let mut frames = vec![PacketBuilder::udp().build(), PacketBuilder::udp().build()];
            assert_eq!(worker.tx_burst(&mut frames), 2);
        });
        let mut drained = Vec::with_capacity(2);
        let n = port.tx_drain_into(&mut drained, 2);
        assert!(n == 0 || n == 2, "observed a torn TX burst: {n} frames");
        t.join().unwrap();
        port.tx_drain_into(&mut drained, 2);
        assert_eq!(drained.len(), 2);
        assert_eq!(port.stats().tx.packets(), 2);
        assert_eq!(port.stats().tx.drops(), 0);
    });
}
