//! Mutation check: prove the loom suite actually catches the bug class it
//! guards against.
//!
//! Built only under `RUSTFLAGS="--cfg loom --cfg spsc_tail_relaxed_mutation"`,
//! which weakens the SPSC ring's tail-publication store from `Release` to
//! `Relaxed` (see `TAIL_PUBLISH` in `netdev::ring`). With the release edge
//! gone, a consumer can observe the new tail value without a happens-before
//! edge to the producer's slot write — and the model's race detector must
//! abort naming the two racing accesses. If this test ever stops panicking,
//! the model has lost the sensitivity the whole suite's guarantees rest on.

#![cfg(all(loom, spsc_tail_relaxed_mutation))]

use loom::sync::Arc;
use loom::thread;

use netdev::SpscRing;

#[test]
#[should_panic(expected = "data race")]
fn relaxed_tail_store_is_caught_as_a_race() {
    loom::model(|| {
        let ring = Arc::new(SpscRing::new(2));
        let producer = Arc::clone(&ring);
        let t = thread::spawn(move || {
            producer.push(7u32).unwrap();
        });
        loop {
            match ring.pop() {
                Some(v) => {
                    assert_eq!(v, 7);
                    break;
                }
                None => thread::yield_now(),
            }
        }
        t.join().unwrap();
    });
}

#[test]
#[should_panic(expected = "data race")]
fn relaxed_burst_tail_store_is_caught_as_a_race() {
    loom::model(|| {
        let ring = Arc::new(SpscRing::new(2));
        let producer = Arc::clone(&ring);
        let t = thread::spawn(move || {
            let mut items = vec![1u32, 2];
            assert_eq!(producer.push_burst(&mut items), 2);
        });
        let mut out = Vec::new();
        while out.len() < 2 {
            if ring.pop_burst(&mut out, 2) == 0 {
                thread::yield_now();
            }
        }
        t.join().unwrap();
    });
}
