//! Regression: `PortSet::get` must not scale with the number of ports.
//!
//! The original implementation was a linear `iter().find()` per lookup —
//! O(ports) on every egress packet once workers resolve output ports. The
//! dense direct-index replacement makes the lookup one bounds check and one
//! slot load whatever the port count; this test pins that by comparing the
//! measured cost of the same lookup workload against small and large sets.

use std::time::Instant;

use netdev::{Port, PortSet};

/// Time `iters` lookups spread over `set`'s id space, returning nanos.
fn lookup_cost(set: &PortSet, ids: u32, iters: u32) -> u128 {
    let start = Instant::now();
    let mut found = 0u32;
    for i in 0..iters {
        if set.get(i % ids).is_some() {
            found += 1;
        }
    }
    assert_eq!(found, iters);
    start.elapsed().as_nanos()
}

#[test]
fn lookup_cost_does_not_scale_with_port_count() {
    const SMALL: u32 = 4;
    const LARGE: u32 = 1024;
    const ITERS: u32 = 1_000_000;

    let small = PortSet::with_ports(SMALL);
    let large = PortSet::with_ports(LARGE);

    // Warm up both paths, then take the best of several runs to shake out
    // scheduler noise — this is a ratio test, not a benchmark.
    let mut small_best = u128::MAX;
    let mut large_best = u128::MAX;
    for _ in 0..3 {
        small_best = small_best.min(lookup_cost(&small, SMALL, ITERS));
        large_best = large_best.min(lookup_cost(&large, LARGE, ITERS));
    }

    // A linear scan would make the 1024-port set ~256x the 4-port set
    // (average scan depth 512 vs 2). The dense index should be flat; allow
    // a generous 8x for cache effects before calling it a regression.
    assert!(
        large_best < small_best.saturating_mul(8),
        "1024-port lookups cost {large_best}ns vs {small_best}ns for 4 ports \
         — lookup is scaling with port count"
    );
}

#[test]
fn sparse_ids_resolve_alongside_dense_ones() {
    let mut set = PortSet::new();
    for id in 0..8 {
        set.add(Port::new(id));
    }
    // Reserved-range ids land in the sparse fallback.
    set.add(Port::new(0xffff_0001));
    set.add(Port::new(0xffff_0002));
    assert_eq!(set.len(), 10);
    for id in 0..8 {
        assert_eq!(set.get(id).unwrap().id(), id);
    }
    assert_eq!(set.get(0xffff_0001).unwrap().id(), 0xffff_0001);
    assert_eq!(set.get(0xffff_0002).unwrap().id(), 0xffff_0002);
    assert!(set.get(8).is_none());
    assert!(set.get(0xffff_0003).is_none());
}
