//! Collision-free hash table — the backing store of the compound-hash
//! table template.
//!
//! The paper (§3.1): *"Our implementation uses a collision free hash; even
//! though it requires more memory and more time to build, it supports fast
//! constant time lookups, a key to a robust datapath performance."*
//!
//! The implementation is the classic FKS two-level scheme: a first-level hash
//! splits the keys into buckets, and each bucket with `k` keys gets its own
//! second-level table of `k²` slots whose seed is chosen so the bucket's keys
//! collide nowhere. Lookups are therefore exactly two hash computations and
//! one slot probe — constant time, no chains — while the structure stays
//! linear in total size. Incremental inserts go to a small overflow vector; a
//! rebuild (triggered automatically when the overflow grows, or explicitly by
//! the caller — the paper rebuilds the hash template "periodically") folds
//! them back into the collision-free tables.

/// Keys are the compound match keys of the flow table, packed into 128 bits
/// (destination MAC = 48 bits, VLAN ‖ IP source = 44 bits, IP dst ‖ TCP dst =
/// 48 bits, and so on — every use case of the paper fits comfortably).
pub type Key = u128;

/// Maximum overflow entries tolerated before an automatic rebuild.
const MAX_OVERFLOW: usize = 16;
/// Seeds tried per second-level bucket before growing it.
const SEED_ATTEMPTS: u64 = 64;

/// Multiplicative mixer with a seed (SplitMix64-style finalisation over the
/// two key halves).
#[inline]
fn mix(key: Key, seed: u64) -> u64 {
    let mut h = (key as u64) ^ ((key >> 64) as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ seed;
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// A second-level bucket: a small table with a per-bucket seed under which
/// its keys are collision free.
#[derive(Debug, Clone)]
struct Bucket<V> {
    seed: u64,
    /// Power-of-two slot count (0 for an empty bucket).
    slots: Vec<Option<(Key, V)>>,
}

impl<V> Default for Bucket<V> {
    fn default() -> Self {
        Bucket {
            seed: 0,
            slots: Vec::new(),
        }
    }
}

impl<V: Clone> Bucket<V> {
    fn build(entries: &[(Key, V)]) -> Self {
        if entries.is_empty() {
            return Bucket {
                seed: 0,
                slots: Vec::new(),
            };
        }
        // k² slots (rounded to a power of two) make a collision-free seed
        // easy to find; grow further in the unlucky case.
        let mut capacity = (entries.len() * entries.len()).next_power_of_two().max(2);
        loop {
            'seed: for attempt in 1..=SEED_ATTEMPTS {
                let seed = attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (capacity as u64);
                let mask = (capacity - 1) as u64;
                let mut slots: Vec<Option<(Key, V)>> = vec![None; capacity];
                for (k, v) in entries {
                    let idx = (mix(*k, seed) & mask) as usize;
                    if slots[idx].is_some() {
                        continue 'seed;
                    }
                    slots[idx] = Some((*k, v.clone()));
                }
                return Bucket { seed, slots };
            }
            capacity *= 2;
        }
    }

    #[inline]
    fn get(&self, key: Key) -> Option<&V> {
        if self.slots.is_empty() {
            return None;
        }
        let idx = (mix(key, self.seed) as usize) & (self.slots.len() - 1);
        match &self.slots[idx] {
            Some((k, v)) if *k == key => Some(v),
            _ => None,
        }
    }

    fn get_mut(&mut self, key: Key) -> Option<&mut (Key, V)> {
        if self.slots.is_empty() {
            return None;
        }
        let idx = (mix(key, self.seed) as usize) & (self.slots.len() - 1);
        match &mut self.slots[idx] {
            Some(entry) if entry.0 == key => Some(entry),
            _ => None,
        }
    }

    fn take(&mut self, key: Key) -> Option<V> {
        if self.slots.is_empty() {
            return None;
        }
        let idx = (mix(key, self.seed) as usize) & (self.slots.len() - 1);
        match &self.slots[idx] {
            Some((k, _)) if *k == key => self.slots[idx].take().map(|(_, v)| v),
            _ => None,
        }
    }

    fn footprint(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Option<(Key, V)>>()
    }
}

/// A collision-free (FKS two-level) hash map from packed compound keys to
/// values.
#[derive(Debug, Clone)]
pub struct PerfectHash<V> {
    first_seed: u64,
    buckets: Vec<Bucket<V>>,
    len: usize,
    overflow: Vec<(Key, V)>,
    rebuilds: u64,
}

impl<V: Clone> PerfectHash<V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        PerfectHash {
            first_seed: 0x5851_f42d_4c95_7f2d,
            buckets: vec![Bucket::default()],
            len: 0,
            overflow: Vec::new(),
            rebuilds: 0,
        }
    }

    /// Builds a map from a list of key/value pairs in one shot.
    /// Later duplicates of a key replace earlier ones.
    pub fn build(entries: impl IntoIterator<Item = (Key, V)>) -> Self {
        let mut map = Self::new();
        let mut all: Vec<(Key, V)> = Vec::new();
        for (k, v) in entries {
            if let Some(slot) = all.iter_mut().find(|(ek, _)| *ek == k) {
                slot.1 = v;
            } else {
                all.push((k, v));
            }
        }
        map.rebuild_with(all);
        map
    }

    /// Number of entries stored.
    pub fn len(&self) -> usize {
        self.len + self.overflow.len()
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of collision-free rebuilds performed so far (exposed so the
    /// update benchmarks can report rebuild overhead).
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    #[inline]
    fn bucket_index(&self, key: Key) -> usize {
        (mix(key, self.first_seed) as usize) & (self.buckets.len() - 1)
    }

    /// Constant-time lookup: two hashes, one slot compare, plus (rarely) a
    /// scan of the small overflow vector holding not-yet-integrated inserts.
    #[inline]
    pub fn get(&self, key: Key) -> Option<&V> {
        let bucket = &self.buckets[self.bucket_index(key)];
        if let Some(v) = bucket.get(key) {
            return Some(v);
        }
        self.overflow
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }

    /// True if the main (collision-free) structure answers `key`, i.e. the
    /// lookup never touches the overflow vector. Used by the performance
    /// model and the update benchmarks.
    pub fn is_fast_path(&self, key: Key) -> bool {
        self.buckets[self.bucket_index(key)].get(key).is_some()
    }

    /// Inserts or replaces an entry. New keys go to the overflow vector and
    /// trigger an automatic rebuild when the overflow exceeds its bound, so
    /// amortised insert stays cheap while lookups stay collision free.
    pub fn insert(&mut self, key: Key, value: V) {
        let bucket_index = self.bucket_index(key);
        if let Some(entry) = self.buckets[bucket_index].get_mut(key) {
            entry.1 = value;
            return;
        }
        if let Some(slot) = self.overflow.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
            return;
        }
        self.overflow.push((key, value));
        if self.overflow.len() > MAX_OVERFLOW {
            self.rebuild();
        }
    }

    /// Removes an entry, returning its value if present.
    pub fn remove(&mut self, key: Key) -> Option<V> {
        let bucket_index = self.bucket_index(key);
        if let Some(v) = self.buckets[bucket_index].take(key) {
            self.len -= 1;
            return Some(v);
        }
        if let Some(pos) = self.overflow.iter().position(|(k, _)| *k == key) {
            return Some(self.overflow.swap_remove(pos).1);
        }
        None
    }

    /// Folds overflow entries back into a fresh collision-free structure.
    /// The paper rebuilds the hash template periodically for the same reason.
    pub fn rebuild(&mut self) {
        let mut all: Vec<(Key, V)> = Vec::with_capacity(self.len());
        for bucket in &mut self.buckets {
            for entry in bucket.slots.drain(..).flatten() {
                all.push(entry);
            }
        }
        all.append(&mut self.overflow);
        self.rebuild_with(all);
    }

    fn rebuild_with(&mut self, entries: Vec<(Key, V)>) {
        self.rebuilds += 1;
        self.len = entries.len();
        self.overflow = Vec::new();
        self.first_seed = self
            .first_seed
            .wrapping_mul(0x5851_f42d_4c95_7f2d)
            .wrapping_add(self.rebuilds);
        let bucket_count = entries.len().next_power_of_two().max(1);
        let mut groups: Vec<Vec<(Key, V)>> = vec![Vec::new(); bucket_count];
        for (k, v) in entries {
            let idx = (mix(k, self.first_seed) as usize) & (bucket_count - 1);
            groups[idx].push((k, v));
        }
        self.buckets = groups.iter().map(|g| Bucket::build(g)).collect();
    }

    /// Iterates over all entries (main structure plus overflow), in no
    /// particular order.
    pub fn iter(&self) -> impl Iterator<Item = (&Key, &V)> {
        self.buckets
            .iter()
            .flat_map(|b| b.slots.iter().filter_map(|s| s.as_ref()))
            .chain(self.overflow.iter())
            .map(|(k, v)| (k, v))
    }

    /// Approximate resident size in bytes; feeds the cache model's
    /// working-set estimate.
    pub fn memory_footprint(&self) -> usize {
        self.buckets.iter().map(Bucket::footprint).sum::<usize>()
            + self.buckets.capacity() * std::mem::size_of::<Bucket<V>>()
            + self.overflow.capacity() * std::mem::size_of::<(Key, V)>()
    }
}

impl<V: Clone> Default for PerfectHash<V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let map = PerfectHash::build((0..100u128).map(|k| (k * 7, k as u32)));
        assert_eq!(map.len(), 100);
        for k in 0..100u128 {
            assert_eq!(map.get(k * 7), Some(&(k as u32)));
            assert!(map.is_fast_path(k * 7));
        }
        assert_eq!(map.get(3), None);
    }

    #[test]
    fn build_deduplicates_keys() {
        let map = PerfectHash::build(vec![(1u128, 1u32), (2, 2), (1, 10)]);
        assert_eq!(map.len(), 2);
        assert_eq!(map.get(1), Some(&10));
    }

    #[test]
    fn insert_replace_remove() {
        let mut map = PerfectHash::new();
        map.insert(42, "a");
        map.insert(43, "b");
        map.insert(42, "c");
        assert_eq!(map.len(), 2);
        assert_eq!(map.get(42), Some(&"c"));
        assert_eq!(map.remove(42), Some("c"));
        assert_eq!(map.get(42), None);
        assert_eq!(map.remove(42), None);
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn overflow_triggers_rebuild_and_stays_correct() {
        let mut map = PerfectHash::build((0..16u128).map(|k| (k, k)));
        let rebuilds_before = map.rebuilds();
        for k in 1000..1200u128 {
            map.insert(k, k);
        }
        assert!(map.rebuilds() > rebuilds_before);
        for k in (0..16u128).chain(1000..1200) {
            assert_eq!(map.get(k), Some(&k), "key {k}");
        }
        assert_eq!(map.len(), 216);
    }

    #[test]
    fn explicit_rebuild_moves_everything_to_fast_path() {
        let mut map = PerfectHash::build((0..64u128).map(|k| (k, k)));
        for k in 64..80u128 {
            map.insert(k, k);
        }
        map.rebuild();
        for k in 0..80u128 {
            assert!(
                map.is_fast_path(k),
                "key {k} not on fast path after rebuild"
            );
        }
    }

    #[test]
    fn iter_sees_all_entries() {
        let mut map = PerfectHash::build((0..20u128).map(|k| (k, k * 2)));
        map.insert(100, 200);
        let mut keys: Vec<u128> = map.iter().map(|(k, _)| *k).collect();
        keys.sort_unstable();
        let mut expected: Vec<u128> = (0..20).collect();
        expected.push(100);
        assert_eq!(keys, expected);
    }

    #[test]
    fn large_build_is_collision_free() {
        let map = PerfectHash::build((0..50_000u128).map(|k| (k.wrapping_mul(0x9e3779b9), k)));
        assert_eq!(map.len(), 50_000);
        for k in (0..50_000u128).step_by(97) {
            let key = k.wrapping_mul(0x9e3779b9);
            assert_eq!(map.get(key), Some(&k));
            assert!(map.is_fast_path(key));
        }
        // Linear total size: far below the quadratic a single-level
        // collision-free table would need.
        assert!(map.memory_footprint() < 50_000 * 40 * 16);
    }

    #[test]
    fn removed_then_reinserted_key_found() {
        let mut map = PerfectHash::build((0..32u128).map(|k| (k, k)));
        assert_eq!(map.remove(5), Some(5));
        assert_eq!(map.get(5), None);
        map.insert(5, 99);
        assert_eq!(map.get(5), Some(&99));
        map.rebuild();
        assert_eq!(map.get(5), Some(&99));
        assert_eq!(map.len(), 32);
    }

    #[test]
    fn empty_map_behaves() {
        let map: PerfectHash<u32> = PerfectHash::new();
        assert!(map.is_empty());
        assert_eq!(map.get(0), None);
        assert!(map.memory_footprint() > 0);
        let empty_build: PerfectHash<u32> = PerfectHash::build(std::iter::empty());
        assert!(empty_build.is_empty());
        assert_eq!(empty_build.get(42), None);
    }
}
