//! DIR-24-8 longest-prefix-match table — the `rte_lpm` analogue.
//!
//! The ESWITCH LPM table template of the paper is backed by DPDK's built-in
//! `rte_lpm` library, which uses the DIR-24-8 layout: a directly indexed
//! table covering the first 24 address bits (`tbl24`) plus on-demand groups
//! of 256 entries covering the last 8 bits (`tbl8`) for prefixes longer than
//! /24. A lookup is one memory access for prefixes up to /24 and exactly two
//! for longer ones — the "13 + 2·Lx cycles, assuming two memory accesses" of
//! the paper's Fig. 20 performance model.
//!
//! Next hops are `u16` (up to 65 534 distinct values), which comfortably
//! covers the shared-action-set indices the switch stores in them.

use std::collections::BTreeMap;
use std::fmt;

use pkt::ipv4::{prefix_mask, Ipv4Addr4};

/// Entry layout shared by `tbl24` and `tbl8` slots.
///
/// Bit 31: valid. Bit 30: "extended" — the payload is a tbl8 group index
/// rather than a next hop (only meaningful in `tbl24`). Bits 0..=15: payload.
/// Bits 16..=23: depth of the owning prefix (used for make-before-break
/// updates, exactly as `rte_lpm` stores it).
#[derive(Clone, Copy, PartialEq, Eq, Default)]
struct Slot(u32);

impl Slot {
    const VALID: u32 = 1 << 31;
    const EXTENDED: u32 = 1 << 30;

    fn invalid() -> Self {
        Slot(0)
    }

    fn next_hop(depth: u8, hop: u16) -> Self {
        Slot(Self::VALID | (u32::from(depth) << 16) | u32::from(hop))
    }

    fn group(group_index: u16) -> Self {
        Slot(Self::VALID | Self::EXTENDED | u32::from(group_index))
    }

    fn is_valid(self) -> bool {
        self.0 & Self::VALID != 0
    }

    fn is_group(self) -> bool {
        self.0 & Self::EXTENDED != 0
    }

    fn payload(self) -> u16 {
        (self.0 & 0xffff) as u16
    }

    fn depth(self) -> u8 {
        ((self.0 >> 16) & 0xff) as u8
    }
}

impl fmt::Debug for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.is_valid() {
            write!(f, "Slot(invalid)")
        } else if self.is_group() {
            write!(f, "Slot(group {})", self.payload())
        } else {
            write!(f, "Slot(hop {} depth {})", self.payload(), self.depth())
        }
    }
}

/// Errors returned by [`Lpm`] mutators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpmError {
    /// Prefix length greater than 32.
    InvalidDepth(u8),
    /// All tbl8 groups are in use (too many long prefixes for the configured
    /// capacity).
    Tbl8Exhausted,
    /// The (prefix, depth) pair is not present (delete of unknown rule).
    NotFound,
}

impl fmt::Display for LpmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpmError::InvalidDepth(d) => write!(f, "invalid prefix length {d}"),
            LpmError::Tbl8Exhausted => write!(f, "out of tbl8 groups"),
            LpmError::NotFound => write!(f, "rule not found"),
        }
    }
}

impl std::error::Error for LpmError {}

const TBL24_SIZE: usize = 1 << 24;
const TBL8_GROUP_SIZE: usize = 256;

/// A DIR-24-8 longest-prefix-match table over IPv4 destinations.
///
/// Rules are also mirrored in a sorted rule store (`rules`) so that deletes
/// can recompute the covering shorter prefix, exactly as `rte_lpm` keeps its
/// rule list next to the lookup structure.
pub struct Lpm {
    // Fields below; see the manual Debug impl (the 16M-slot tbl24 must not be
    // dumped element by element).
    tbl24: Box<[Slot]>,
    tbl8: Vec<[Slot; TBL8_GROUP_SIZE]>,
    free_tbl8: Vec<u16>,
    /// (depth, masked prefix) → next hop. BTreeMap keeps deterministic
    /// iteration for rebuilds and covering-prefix searches.
    rules: BTreeMap<(u8, u32), u16>,
}

impl Lpm {
    /// Default number of tbl8 groups (DPDK's default is 256; we allow more so
    /// the 10K-prefix gateway table never runs out).
    pub const DEFAULT_TBL8_GROUPS: usize = 1024;

    /// Creates an empty table with the default tbl8 capacity.
    pub fn new() -> Self {
        Self::with_tbl8_groups(Self::DEFAULT_TBL8_GROUPS)
    }

    /// Creates an empty table with room for `groups` tbl8 groups.
    pub fn with_tbl8_groups(groups: usize) -> Self {
        Lpm {
            tbl24: vec![Slot::invalid(); TBL24_SIZE].into_boxed_slice(),
            tbl8: Vec::new(),
            free_tbl8: Vec::new(),
            rules: BTreeMap::new(),
            // tbl8 groups are allocated lazily up to `groups`.
        }
        .with_capacity_hint(groups)
    }

    fn with_capacity_hint(mut self, groups: usize) -> Self {
        self.tbl8.reserve(groups);
        self
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Adds (or replaces) the rule `prefix/depth → next_hop`.
    pub fn add(&mut self, prefix: Ipv4Addr4, depth: u8, next_hop: u16) -> Result<(), LpmError> {
        if depth > 32 {
            return Err(LpmError::InvalidDepth(depth));
        }
        let masked = prefix.to_u32() & prefix_mask(depth);
        self.rules.insert((depth, masked), next_hop);
        self.install(masked, depth, next_hop)
    }

    /// Deletes the rule `prefix/depth`. Slots owned by the rule are
    /// re-covered by the longest shorter prefix that still matches, or
    /// invalidated if none exists.
    pub fn delete(&mut self, prefix: Ipv4Addr4, depth: u8) -> Result<(), LpmError> {
        if depth > 32 {
            return Err(LpmError::InvalidDepth(depth));
        }
        let masked = prefix.to_u32() & prefix_mask(depth);
        if self.rules.remove(&(depth, masked)).is_none() {
            return Err(LpmError::NotFound);
        }
        // Find the covering rule (longest prefix shorter than `depth` that
        // contains this prefix) and re-install it over the freed range; if
        // none, clear the range.
        let cover = self
            .rules
            .iter()
            .filter(|((d, p), _)| *d < depth && masked & prefix_mask(*d) == *p)
            .max_by_key(|((d, _), _)| *d)
            .map(|((d, _), hop)| (*d, *hop));
        match cover {
            Some((cover_depth, hop)) => self.overwrite(masked, depth, cover_depth, hop),
            None => self.clear(masked, depth),
        }
        Ok(())
    }

    /// True when the exact rule `prefix/depth` is installed (not merely
    /// covered by another prefix). Used by update planners to predict whether
    /// a delete can be absorbed in place.
    pub fn has_rule(&self, prefix: Ipv4Addr4, depth: u8) -> bool {
        if depth > 32 {
            return false;
        }
        let masked = prefix.to_u32() & prefix_mask(depth);
        self.rules.contains_key(&(depth, masked))
    }

    /// Looks up the next hop for `addr`: at most one `tbl24` access plus one
    /// `tbl8` access.
    #[inline]
    pub fn lookup(&self, addr: Ipv4Addr4) -> Option<u16> {
        let ip = addr.to_u32();
        let slot = self.tbl24[(ip >> 8) as usize];
        if !slot.is_valid() {
            return None;
        }
        if !slot.is_group() {
            return Some(slot.payload());
        }
        let group = &self.tbl8[slot.payload() as usize];
        let slot = group[(ip & 0xff) as usize];
        slot.is_valid().then(|| slot.payload())
    }

    /// Number of memory accesses the last-level structure needs for `addr`
    /// (1 for /24-covered addresses, 2 when a tbl8 group is consulted).
    /// Used by the performance model.
    pub fn lookup_depth(&self, addr: Ipv4Addr4) -> u8 {
        let slot = self.tbl24[(addr.to_u32() >> 8) as usize];
        if slot.is_valid() && slot.is_group() {
            2
        } else {
            1
        }
    }

    fn install(&mut self, prefix: u32, depth: u8, hop: u16) -> Result<(), LpmError> {
        if depth <= 24 {
            let start = (prefix >> 8) as usize;
            let count = 1usize << (24 - depth);
            for idx in start..start + count {
                let slot = self.tbl24[idx];
                if slot.is_valid() && slot.is_group() {
                    // Propagate into the existing tbl8 group where we are the
                    // better (longer or equal) prefix.
                    let group = &mut self.tbl8[slot.payload() as usize];
                    for s in group.iter_mut() {
                        if !s.is_valid() || s.depth() <= depth {
                            *s = Slot::next_hop(depth, hop);
                        }
                    }
                } else if !slot.is_valid() || slot.depth() <= depth {
                    self.tbl24[idx] = Slot::next_hop(depth, hop);
                }
            }
            Ok(())
        } else {
            let idx = (prefix >> 8) as usize;
            let slot = self.tbl24[idx];
            let group_index = if slot.is_valid() && slot.is_group() {
                slot.payload()
            } else {
                // Allocate a new group, seeding it with the previous /<=24
                // covering entry so shorter prefixes keep matching.
                let group_index = self.alloc_tbl8()?;
                let seed = if slot.is_valid() {
                    Slot::next_hop(slot.depth(), slot.payload())
                } else {
                    Slot::invalid()
                };
                self.tbl8[group_index as usize] = [seed; TBL8_GROUP_SIZE];
                self.tbl24[idx] = Slot::group(group_index);
                group_index
            };
            let group = &mut self.tbl8[group_index as usize];
            let start = (prefix & 0xff) as usize;
            let count = 1usize << (32 - depth);
            for s in group[start..start + count].iter_mut() {
                if !s.is_valid() || s.depth() <= depth {
                    *s = Slot::next_hop(depth, hop);
                }
            }
            Ok(())
        }
    }

    /// Overwrites every slot still owned by `depth` (i.e. whose recorded depth
    /// equals `depth`) inside `prefix/depth` with the covering rule.
    fn overwrite(&mut self, prefix: u32, depth: u8, cover_depth: u8, hop: u16) {
        self.for_each_owned_slot(prefix, depth, |slot| {
            *slot = Slot::next_hop(cover_depth, hop);
        });
    }

    /// Clears every slot still owned by `depth` inside `prefix/depth`.
    fn clear(&mut self, prefix: u32, depth: u8) {
        self.for_each_owned_slot(prefix, depth, |slot| {
            *slot = Slot::invalid();
        });
    }

    fn for_each_owned_slot(&mut self, prefix: u32, depth: u8, mut f: impl FnMut(&mut Slot)) {
        if depth <= 24 {
            let start = (prefix >> 8) as usize;
            let count = 1usize << (24 - depth);
            for idx in start..start + count {
                let slot = self.tbl24[idx];
                if slot.is_valid() && slot.is_group() {
                    let group = &mut self.tbl8[slot.payload() as usize];
                    for s in group.iter_mut() {
                        if s.is_valid() && !s.is_group() && s.depth() == depth {
                            f(s);
                        }
                    }
                } else if slot.is_valid() && slot.depth() == depth {
                    f(&mut self.tbl24[idx]);
                }
            }
        } else {
            let idx = (prefix >> 8) as usize;
            let slot = self.tbl24[idx];
            if slot.is_valid() && slot.is_group() {
                let group = &mut self.tbl8[slot.payload() as usize];
                let start = (prefix & 0xff) as usize;
                let count = 1usize << (32 - depth);
                for s in group[start..start + count].iter_mut() {
                    if s.is_valid() && s.depth() == depth {
                        f(s);
                    }
                }
            }
        }
    }

    fn alloc_tbl8(&mut self) -> Result<u16, LpmError> {
        if let Some(free) = self.free_tbl8.pop() {
            return Ok(free);
        }
        if self.tbl8.len() >= usize::from(u16::MAX) {
            return Err(LpmError::Tbl8Exhausted);
        }
        self.tbl8.push([Slot::invalid(); TBL8_GROUP_SIZE]);
        Ok((self.tbl8.len() - 1) as u16)
    }

    /// Approximate resident size of the lookup structure in bytes; feeds the
    /// working-set estimate of the cache model.
    pub fn memory_footprint(&self) -> usize {
        TBL24_SIZE * std::mem::size_of::<Slot>()
            + self.tbl8.len() * TBL8_GROUP_SIZE * std::mem::size_of::<Slot>()
    }
}

impl Default for Lpm {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Lpm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Lpm")
            .field("rules", &self.rules.len())
            .field("tbl8_groups", &self.tbl8.len())
            .field("footprint_bytes", &self.memory_footprint())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr4 {
        s.parse().unwrap()
    }

    #[test]
    fn longest_prefix_wins() {
        let mut lpm = Lpm::new();
        lpm.add(ip("10.0.0.0"), 8, 1).unwrap();
        lpm.add(ip("10.1.0.0"), 16, 2).unwrap();
        lpm.add(ip("10.1.2.0"), 24, 3).unwrap();
        lpm.add(ip("10.1.2.128"), 25, 4).unwrap();
        assert_eq!(lpm.lookup(ip("10.9.9.9")), Some(1));
        assert_eq!(lpm.lookup(ip("10.1.9.9")), Some(2));
        assert_eq!(lpm.lookup(ip("10.1.2.9")), Some(3));
        assert_eq!(lpm.lookup(ip("10.1.2.200")), Some(4));
        assert_eq!(lpm.lookup(ip("11.0.0.1")), None);
    }

    #[test]
    fn insertion_order_does_not_matter() {
        let mut a = Lpm::new();
        a.add(ip("192.0.2.0"), 24, 10).unwrap();
        a.add(ip("192.0.0.0"), 16, 20).unwrap();
        let mut b = Lpm::new();
        b.add(ip("192.0.0.0"), 16, 20).unwrap();
        b.add(ip("192.0.2.0"), 24, 10).unwrap();
        for last in [1u8, 77, 200] {
            let addr = Ipv4Addr4::new(192, 0, 2, last);
            assert_eq!(a.lookup(addr), b.lookup(addr));
            let other = Ipv4Addr4::new(192, 0, 7, last);
            assert_eq!(a.lookup(other), Some(20));
            assert_eq!(b.lookup(other), Some(20));
        }
    }

    #[test]
    fn default_route_matches_everything() {
        let mut lpm = Lpm::new();
        lpm.add(Ipv4Addr4::UNSPECIFIED, 0, 99).unwrap();
        assert_eq!(lpm.lookup(ip("1.2.3.4")), Some(99));
        assert_eq!(lpm.lookup(ip("255.255.255.255")), Some(99));
        lpm.add(ip("198.51.100.0"), 24, 5).unwrap();
        assert_eq!(lpm.lookup(ip("198.51.100.77")), Some(5));
        assert_eq!(lpm.lookup(ip("198.51.101.77")), Some(99));
    }

    #[test]
    fn host_route_via_tbl8() {
        let mut lpm = Lpm::new();
        lpm.add(ip("203.0.113.0"), 24, 1).unwrap();
        lpm.add(ip("203.0.113.7"), 32, 2).unwrap();
        assert_eq!(lpm.lookup(ip("203.0.113.7")), Some(2));
        assert_eq!(lpm.lookup(ip("203.0.113.8")), Some(1));
        assert_eq!(lpm.lookup_depth(ip("203.0.113.8")), 2);
        assert_eq!(lpm.lookup_depth(ip("8.8.8.8")), 1);
    }

    #[test]
    fn delete_restores_covering_prefix() {
        let mut lpm = Lpm::new();
        lpm.add(ip("10.0.0.0"), 8, 1).unwrap();
        lpm.add(ip("10.1.0.0"), 16, 2).unwrap();
        assert_eq!(lpm.lookup(ip("10.1.5.5")), Some(2));
        lpm.delete(ip("10.1.0.0"), 16).unwrap();
        assert_eq!(lpm.lookup(ip("10.1.5.5")), Some(1));
        lpm.delete(ip("10.0.0.0"), 8).unwrap();
        assert_eq!(lpm.lookup(ip("10.1.5.5")), None);
        assert!(lpm.is_empty());
    }

    #[test]
    fn delete_long_prefix_restores_cover_in_group() {
        let mut lpm = Lpm::new();
        lpm.add(ip("203.0.113.0"), 24, 1).unwrap();
        lpm.add(ip("203.0.113.64"), 26, 2).unwrap();
        assert_eq!(lpm.lookup(ip("203.0.113.70")), Some(2));
        lpm.delete(ip("203.0.113.64"), 26).unwrap();
        assert_eq!(lpm.lookup(ip("203.0.113.70")), Some(1));
    }

    #[test]
    fn delete_unknown_is_error() {
        let mut lpm = Lpm::new();
        assert_eq!(lpm.delete(ip("10.0.0.0"), 8), Err(LpmError::NotFound));
        assert_eq!(
            lpm.add(ip("10.0.0.0"), 40, 1),
            Err(LpmError::InvalidDepth(40))
        );
    }

    #[test]
    fn replace_existing_rule_updates_hop() {
        let mut lpm = Lpm::new();
        lpm.add(ip("10.0.0.0"), 8, 1).unwrap();
        lpm.add(ip("10.0.0.0"), 8, 7).unwrap();
        assert_eq!(lpm.lookup(ip("10.3.4.5")), Some(7));
        assert_eq!(lpm.len(), 1);
    }

    #[test]
    fn many_prefixes_consistent_with_linear_scan() {
        use rand::prelude::*;
        use std::collections::BTreeMap;
        let mut rng = StdRng::seed_from_u64(7);
        // Later rules replace earlier ones at the same (prefix, depth), which
        // is exactly what add() does, so a map keyed that way is the oracle.
        let mut rules: BTreeMap<(u8, u32), u16> = BTreeMap::new();
        let mut lpm = Lpm::new();
        for hop in 0..500u16 {
            let depth = rng.gen_range(8..=32);
            let prefix = rng.gen::<u32>() & prefix_mask(depth);
            rules.insert((depth, prefix), hop);
            lpm.add(Ipv4Addr4::from_u32(prefix), depth, hop).unwrap();
        }
        for _ in 0..2000 {
            let addr = rng.gen::<u32>();
            let expected = rules
                .iter()
                .filter(|((d, p), _)| addr & prefix_mask(*d) == *p)
                .max_by_key(|((d, _), _)| *d)
                .map(|(_, h)| *h);
            assert_eq!(
                lpm.lookup(Ipv4Addr4::from_u32(addr)),
                expected,
                "addr {addr:#x}"
            );
        }
    }

    #[test]
    fn footprint_grows_with_tbl8_groups() {
        let mut lpm = Lpm::new();
        let base = lpm.memory_footprint();
        lpm.add(ip("10.0.0.1"), 32, 1).unwrap();
        assert!(lpm.memory_footprint() > base);
    }
}
