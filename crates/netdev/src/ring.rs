//! Bounded rings — the `rte_ring` analogue.
//!
//! Two flavours are provided: a lock-free single-producer/single-consumer
//! ring built directly on atomics (the common port-queue case, one RX core
//! and one TX core), and a multi-producer/multi-consumer ring implementing
//! `rte_ring`'s head/tail reservation protocol for the cases where several
//! worker cores feed one port (egress batching onto a shared TX queue).
//! Both are written against the [`crate::sync`] facade, so the loom `model`
//! job explores their interleavings exhaustively (`tests/loom_ring.rs`,
//! `tests/loom_port.rs`).

use std::mem::MaybeUninit;

use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::UnsafeCell;

/// Ordering of the store that publishes a new tail to the consumer.
///
/// This must be `Release`: it is the edge that makes the producer's slot
/// writes visible to a consumer whose `Acquire` tail load observes the new
/// value. The `spsc_tail_relaxed_mutation` cfg deliberately weakens it so
/// the loom suite can demonstrate it catches the bug (see
/// `tests/loom_mutation.rs`); it is never set in real builds.
#[cfg(not(spsc_tail_relaxed_mutation))]
const TAIL_PUBLISH: Ordering = Ordering::Release;
#[cfg(spsc_tail_relaxed_mutation)]
const TAIL_PUBLISH: Ordering = Ordering::Relaxed;

/// A bounded lock-free single-producer/single-consumer ring.
///
/// Capacity is rounded up to a power of two so index masking stays a single
/// AND, matching `rte_ring`'s layout. The ring owns its slots; `push` fails
/// (returning the rejected item) when full, `pop` returns `None` when empty.
///
/// # Safety discipline
/// Exactly one thread may call [`SpscRing::push`] and exactly one thread may
/// call [`SpscRing::pop`] concurrently. The type is `Sync` under that
/// contract; the public constructors hand out the ring inside an `Arc` so the
/// two sides can live on different threads.
pub struct SpscRing<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    head: AtomicUsize, // next slot to pop
    tail: AtomicUsize, // next slot to push
}

// SAFETY: the SPSC contract (one pusher, one popper) serialises access to
// each slot: a slot is written only by the producer before publishing via
// `tail`, and read only by the consumer after observing that publication.
unsafe impl<T: Send> Sync for SpscRing<T> {}
// SAFETY: as above — the ring owns its slots and the SPSC protocol hands
// each `T` off with a release/acquire edge, so moving the whole ring to
// another thread is sound whenever `T: Send`.
unsafe impl<T: Send> Send for SpscRing<T> {}

impl<T> SpscRing<T> {
    /// Creates a ring able to hold at least `capacity` items.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be non-zero");
        let cap = capacity.next_power_of_two();
        let mut buf = Vec::with_capacity(cap);
        for _ in 0..cap {
            buf.push(UnsafeCell::new(MaybeUninit::uninit()));
        }
        SpscRing {
            buf: buf.into_boxed_slice(),
            mask: cap - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    /// Number of items currently queued.
    ///
    /// `head` is loaded **before** `tail`: the invariant `head <= tail` then
    /// guarantees the subtraction cannot underflow even if the other side
    /// advances between the two loads (loading `tail` first allowed a
    /// concurrent consumer to move `head` past the stale tail, wrapping the
    /// result to ~`usize::MAX`). The value is conservative: at most the
    /// items actually available for the consumer (its own `head` is exact,
    /// `tail` may be stale-low), and at least the items actually queued for
    /// the producer (its own `tail` is exact, `head` may be stale-low).
    pub fn len(&self) -> usize {
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        tail - head
    }

    /// True when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Usable capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Attempts to enqueue `item`; returns it back if the ring is full.
    pub fn push(&self, item: T) -> Result<(), T> {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail - head == self.buf.len() {
            return Err(item);
        }
        let slot = &self.buf[tail & self.mask];
        slot.with_mut(|p| {
            // SAFETY: SPSC contract — only this producer writes unpublished
            // slots, and this slot stays unpublished until the tail store.
            unsafe { (*p).write(item) }
        });
        self.tail.store(tail + 1, TAIL_PUBLISH);
        Ok(())
    }

    /// Attempts to dequeue one item.
    pub fn pop(&self) -> Option<T> {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let slot = &self.buf[head & self.mask];
        let item = slot.with(|p| {
            // SAFETY: the producer published this slot (head < tail), and
            // only this consumer reads published-but-unconsumed slots.
            unsafe { (*p).assume_init_read() }
        });
        self.head.store(head + 1, Ordering::Release);
        Some(item)
    }

    /// Enqueues as many items from the front of `items` as fit, publishing
    /// the new tail **once** for the whole burst — the producer-side analogue
    /// of [`SpscRing::pop_burst`]. Per-item `push` pays one release store per
    /// packet; a dispatcher fanning a 32-packet burst out to worker rings pays
    /// one here. Returns how many items were moved out of `items` (the
    /// un-pushed remainder stays in `items`, front-aligned, so the caller can
    /// retry after the consumer drains).
    pub fn push_burst(&self, items: &mut Vec<T>) -> usize {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        let free = self.buf.len() - (tail - head);
        let n = free.min(items.len());
        if n == 0 {
            return 0;
        }
        for (k, item) in items.drain(..n).enumerate() {
            let slot = &self.buf[(tail + k) & self.mask];
            slot.with_mut(|p| {
                // SAFETY: SPSC contract — only this producer writes
                // unpublished slots, and none of the `n` slots is published
                // until the single tail store below.
                unsafe { (*p).write(item) }
            });
        }
        self.tail.store(tail + n, TAIL_PUBLISH);
        n
    }

    /// Dequeues up to `max` items into `out`, returning how many were moved
    /// — the burst-dequeue used by port RX. Mirrors [`SpscRing::push_burst`]:
    /// the new head is published **once** for the whole burst, so the
    /// producer sees either the pre-burst or post-burst free space, never a
    /// partially-drained intermediate (and the consumer pays one release
    /// store per burst instead of one per packet).
    pub fn pop_burst(&self, out: &mut Vec<T>, max: usize) -> usize {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        let n = (tail - head).min(max);
        if n == 0 {
            return 0;
        }
        out.reserve(n);
        for k in 0..n {
            let slot = &self.buf[(head + k) & self.mask];
            let item = slot.with(|p| {
                // SAFETY: the producer published all `n` slots (they lie
                // below `tail`), and only this consumer reads
                // published-but-unconsumed slots; none is marked consumed
                // until the single head store below.
                unsafe { (*p).assume_init_read() }
            });
            out.push(item);
        }
        self.head.store(head + n, Ordering::Release);
        n
    }
}

impl<T> Drop for SpscRing<T> {
    fn drop(&mut self) {
        // Drain remaining items so their destructors run.
        while self.pop().is_some() {}
    }
}

/// A bounded multi-producer/multi-consumer ring — `rte_ring`'s MP/MC
/// head/tail protocol on the [`crate::sync`] facade.
///
/// Each side keeps a *head* (reservation cursor, advanced by CAS) and a
/// *tail* (publication cursor, advanced in reservation order). A burst
/// enqueue reserves all of its slots with **one** CAS on `prod_head`,
/// writes them, waits its turn, and publishes them with **one** release
/// store of `prod_tail` — so a multi-worker egress flush pays one atomic
/// reservation per burst instead of one per frame, exactly the
/// `rte_ring_mp_enqueue_burst` discipline. Dequeue mirrors it on the
/// consumer cursors.
///
/// The turn-taking wait (`prod_tail` must reach my reserved head before I
/// publish) is what keeps the occupied region contiguous: a consumer that
/// `Acquire`-loads `prod_tail` is guaranteed every slot below it is fully
/// written, because each publisher release-stores the tail only after both
/// its own slot writes *and* its `Acquire` observation of the previous
/// publisher's tail.
pub struct MpmcRing<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Consumer reservation cursor (next slot a consumer will claim).
    cons_head: AtomicUsize,
    /// Consumer publication cursor (slots below are free for producers).
    cons_tail: AtomicUsize,
    /// Producer reservation cursor (next slot a producer will claim).
    prod_head: AtomicUsize,
    /// Producer publication cursor (slots below are visible to consumers).
    prod_tail: AtomicUsize,
}

// SAFETY: the head/tail protocol serialises slot access — a slot is written
// only inside a producer's reserved window before its tail publication, and
// read only inside a consumer's reserved window after acquiring that
// publication — so shared access from many threads is sound for any `T:
// Send` (no `&T` is ever shared; items move through whole).
unsafe impl<T: Send> Sync for MpmcRing<T> {}
// SAFETY: as above — the ring owns its slots outright, so moving it between
// threads is sound whenever the items themselves are `Send`.
unsafe impl<T: Send> Send for MpmcRing<T> {}

impl<T> MpmcRing<T> {
    /// Creates a ring able to hold at least `capacity` items (rounded up to
    /// a power of two, like [`SpscRing`]).
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be non-zero");
        let cap = capacity.next_power_of_two();
        let mut buf = Vec::with_capacity(cap);
        for _ in 0..cap {
            buf.push(UnsafeCell::new(MaybeUninit::uninit()));
        }
        MpmcRing {
            buf: buf.into_boxed_slice(),
            mask: cap - 1,
            cons_head: AtomicUsize::new(0),
            cons_tail: AtomicUsize::new(0),
            prod_head: AtomicUsize::new(0),
            prod_tail: AtomicUsize::new(0),
        }
    }

    /// Number of items currently visible to consumers. Conservative under
    /// concurrency, and `cons_tail` is loaded first so the subtraction
    /// cannot underflow (same argument as [`SpscRing::len`]).
    pub fn len(&self) -> usize {
        let cons = self.cons_tail.load(Ordering::Acquire);
        let prod = self.prod_tail.load(Ordering::Acquire);
        prod - cons
    }

    /// True when no published items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Usable capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Attempts to enqueue `item`; returns it back if the ring is full.
    pub fn push(&self, item: T) -> Result<(), T> {
        match self.reserve_prod(1) {
            Some(head) => {
                self.buf[head & self.mask].with_mut(|p| {
                    // SAFETY: slot `head` lies inside this producer's
                    // reserved window — no other producer can claim it and
                    // no consumer can read it until `prod_tail` passes it.
                    unsafe { (*p).write(item) }
                });
                self.publish_prod(head, 1);
                Ok(())
            }
            None => Err(item),
        }
    }

    /// Attempts to dequeue one item.
    pub fn pop(&self) -> Option<T> {
        let head = self.reserve_cons(1)?;
        let item = self.buf[head & self.mask].with(|p| {
            // SAFETY: slot `head` lies inside this consumer's reserved
            // window: the producer published it (it is below `prod_tail`)
            // and no other consumer can claim it.
            unsafe { (*p).assume_init_read() }
        });
        self.publish_cons(head, 1);
        Some(item)
    }

    /// Enqueues as many items from the front of `items` as fit, reserving
    /// every slot with one CAS and publishing with one release store — the
    /// vectored (`sendmmsg`-shaped) TX path. Returns how many items moved;
    /// the remainder stays in `items`, front-aligned, for a retry.
    pub fn push_burst(&self, items: &mut Vec<T>) -> usize {
        if items.is_empty() {
            return 0;
        }
        let want = items.len();
        let Some((head, n)) = self.reserve_prod_upto(want) else {
            return 0;
        };
        for (k, item) in items.drain(..n).enumerate() {
            self.buf[(head + k) & self.mask].with_mut(|p| {
                // SAFETY: slots `head..head + n` are this producer's
                // reserved window (one CAS claimed them all); none becomes
                // visible to consumers until the tail publication below.
                unsafe { (*p).write(item) }
            });
        }
        self.publish_prod(head, n);
        n
    }

    /// Dequeues up to `max` items into `out` with one reservation CAS and
    /// one publication store — the vectored (`recvmmsg`-shaped) RX path.
    /// Returns how many items moved.
    pub fn pop_burst(&self, out: &mut Vec<T>, max: usize) -> usize {
        if max == 0 {
            return 0;
        }
        let Some((head, n)) = self.reserve_cons_upto(max) else {
            return 0;
        };
        out.reserve(n);
        for k in 0..n {
            let item = self.buf[(head + k) & self.mask].with(|p| {
                // SAFETY: slots `head..head + n` are this consumer's
                // reserved window; the producers published all of them
                // (they lie below the acquired `prod_tail`).
                unsafe { (*p).assume_init_read() }
            });
            out.push(item);
        }
        self.publish_cons(head, n);
        n
    }

    /// Reserves exactly `n` producer slots; `None` if fewer are free.
    fn reserve_prod(&self, n: usize) -> Option<usize> {
        self.reserve_prod_upto(n)
            .and_then(|(head, got)| (got == n).then_some(head))
    }

    /// Reserves up to `want` producer slots with one CAS, returning the
    /// window start and size.
    fn reserve_prod_upto(&self, want: usize) -> Option<(usize, usize)> {
        let mut head = self.prod_head.load(Ordering::Relaxed);
        loop {
            let cons = self.cons_tail.load(Ordering::Acquire);
            let free = self.buf.len() - (head - cons);
            let n = free.min(want);
            if n == 0 {
                return None;
            }
            match self.prod_head.compare_exchange_weak(
                head,
                head + n,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some((head, n)),
                Err(current) => head = current,
            }
        }
    }

    /// Publishes producer slots `head..head + n`: waits until every earlier
    /// reservation has published (in-order tails keep the region
    /// contiguous), then release-stores the new tail. The wait load is
    /// `Acquire` so this publisher's release store also carries the
    /// previous publisher's writes (release-sequence via synchronisation,
    /// not assumption).
    fn publish_prod(&self, head: usize, n: usize) {
        while self.prod_tail.load(Ordering::Acquire) != head {
            crate::sync::hint::spin_loop();
        }
        self.prod_tail.store(head + n, Ordering::Release);
    }

    /// Reserves exactly `n` consumer slots; `None` if fewer are published.
    fn reserve_cons(&self, n: usize) -> Option<usize> {
        self.reserve_cons_upto(n)
            .and_then(|(head, got)| (got == n).then_some(head))
    }

    /// Reserves up to `want` published slots with one CAS.
    fn reserve_cons_upto(&self, want: usize) -> Option<(usize, usize)> {
        let mut head = self.cons_head.load(Ordering::Relaxed);
        loop {
            let prod = self.prod_tail.load(Ordering::Acquire);
            let avail = prod - head;
            let n = avail.min(want);
            if n == 0 {
                return None;
            }
            match self.cons_head.compare_exchange_weak(
                head,
                head + n,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some((head, n)),
                Err(current) => head = current,
            }
        }
    }

    /// Publishes consumer slots `head..head + n` (frees them for
    /// producers); mirrors [`MpmcRing::publish_prod`].
    fn publish_cons(&self, head: usize, n: usize) {
        while self.cons_tail.load(Ordering::Acquire) != head {
            crate::sync::hint::spin_loop();
        }
        self.cons_tail.store(head + n, Ordering::Release);
    }
}

impl<T> Drop for MpmcRing<T> {
    fn drop(&mut self) {
        // Drain remaining items so their destructors run.
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn spsc_fifo_order() {
        let ring = SpscRing::new(8);
        for i in 0..5 {
            ring.push(i).unwrap();
        }
        assert_eq!(ring.len(), 5);
        for i in 0..5 {
            assert_eq!(ring.pop(), Some(i));
        }
        assert!(ring.pop().is_none());
        assert!(ring.is_empty());
    }

    #[test]
    fn spsc_full_rejects() {
        let ring = SpscRing::new(2); // rounds to capacity 2
        assert_eq!(ring.capacity(), 2);
        ring.push(1).unwrap();
        ring.push(2).unwrap();
        assert_eq!(ring.push(3), Err(3));
        assert_eq!(ring.pop(), Some(1));
        ring.push(3).unwrap();
        assert_eq!(ring.pop(), Some(2));
        assert_eq!(ring.pop(), Some(3));
    }

    #[test]
    fn spsc_burst_pop() {
        let ring = SpscRing::new(16);
        for i in 0..10 {
            ring.push(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(ring.pop_burst(&mut out, 4), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(ring.pop_burst(&mut out, 100), 6);
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn spsc_burst_push_all_fit() {
        let ring = SpscRing::new(16);
        let mut items: Vec<i32> = (0..10).collect();
        assert_eq!(ring.push_burst(&mut items), 10);
        assert!(items.is_empty());
        assert_eq!(ring.len(), 10);
        for i in 0..10 {
            assert_eq!(ring.pop(), Some(i));
        }
    }

    #[test]
    fn spsc_burst_push_partial_keeps_remainder() {
        let ring = SpscRing::new(4);
        ring.push(100).unwrap();
        let mut items: Vec<i32> = vec![0, 1, 2, 3, 4, 5];
        // Only 3 slots are free; the burst must publish exactly those and
        // leave the rest front-aligned for a retry.
        assert_eq!(ring.push_burst(&mut items), 3);
        assert_eq!(items, vec![3, 4, 5]);
        assert_eq!(ring.push_burst(&mut items), 0, "full ring accepts nothing");
        assert_eq!(items, vec![3, 4, 5]);
        assert_eq!(ring.pop(), Some(100));
        assert_eq!(ring.pop(), Some(0));
        // Two slots free again: the retry pushes two more.
        assert_eq!(ring.push_burst(&mut items), 2);
        assert_eq!(items, vec![5]);
        let mut out = Vec::new();
        ring.pop_burst(&mut out, 8);
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn spsc_burst_push_wraps_around() {
        let ring = SpscRing::new(8);
        // Advance head/tail past the first lap so the burst write wraps.
        for lap in 0..3 {
            for i in 0..6 {
                ring.push(lap * 10 + i).unwrap();
            }
            for i in 0..6 {
                assert_eq!(ring.pop(), Some(lap * 10 + i));
            }
        }
        let mut items: Vec<i32> = (0..8).collect();
        assert_eq!(ring.push_burst(&mut items), 8);
        for i in 0..8 {
            assert_eq!(ring.pop(), Some(i));
        }
    }

    #[test]
    fn spsc_burst_push_cross_thread() {
        let ring = Arc::new(SpscRing::new(64));
        let producer = Arc::clone(&ring);
        let handle = std::thread::spawn(move || {
            let mut next = 0u64;
            let mut staged = Vec::new();
            while next < 50_000 {
                while staged.len() < 32 && next < 50_000 {
                    staged.push(next);
                    next += 1;
                }
                while !staged.is_empty() {
                    if producer.push_burst(&mut staged) == 0 {
                        std::hint::spin_loop();
                    }
                }
            }
        });
        let mut expected = 0u64;
        let mut out = Vec::new();
        while expected < 50_000 {
            out.clear();
            if ring.pop_burst(&mut out, 32) == 0 {
                std::hint::spin_loop();
            }
            for v in &out {
                assert_eq!(*v, expected);
                expected += 1;
            }
        }
        handle.join().unwrap();
    }

    #[test]
    fn spsc_cross_thread() {
        let ring = Arc::new(SpscRing::new(1024));
        let producer = Arc::clone(&ring);
        let handle = std::thread::spawn(move || {
            for i in 0..100_000u64 {
                loop {
                    if producer.push(i).is_ok() {
                        break;
                    }
                    std::hint::spin_loop();
                }
            }
        });
        let mut expected = 0u64;
        while expected < 100_000 {
            if let Some(v) = ring.pop() {
                assert_eq!(v, expected);
                expected += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        handle.join().unwrap();
    }

    #[test]
    fn spsc_drop_drains_items() {
        let item = Arc::new(());
        {
            let ring = SpscRing::new(4);
            ring.push(Arc::clone(&item)).unwrap();
            ring.push(Arc::clone(&item)).unwrap();
            assert_eq!(Arc::strong_count(&item), 3);
        }
        assert_eq!(Arc::strong_count(&item), 1);
    }

    #[test]
    fn mpmc_basics() {
        let ring = MpmcRing::new(4);
        assert!(ring.is_empty());
        ring.push(1).unwrap();
        ring.push(2).unwrap();
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.pop(), Some(1));
        assert_eq!(ring.pop(), Some(2));
        assert_eq!(ring.pop(), None);
    }

    #[test]
    fn mpmc_full_rejects_and_recovers() {
        let ring = MpmcRing::new(2);
        ring.push(1).unwrap();
        ring.push(2).unwrap();
        assert_eq!(ring.push(3), Err(3));
        assert_eq!(ring.pop(), Some(1));
        ring.push(3).unwrap();
        assert_eq!(ring.pop(), Some(2));
        assert_eq!(ring.pop(), Some(3));
        assert!(ring.is_empty());
    }

    #[test]
    fn mpmc_burst_push_partial_keeps_remainder() {
        let ring = MpmcRing::new(4);
        ring.push(100).unwrap();
        let mut items: Vec<i32> = vec![0, 1, 2, 3, 4, 5];
        assert_eq!(ring.push_burst(&mut items), 3);
        assert_eq!(items, vec![3, 4, 5]);
        assert_eq!(ring.push_burst(&mut items), 0, "full ring accepts nothing");
        let mut out = Vec::new();
        assert_eq!(ring.pop_burst(&mut out, 8), 4);
        assert_eq!(out, vec![100, 0, 1, 2]);
        assert_eq!(ring.push_burst(&mut items), 3);
        assert!(items.is_empty());
    }

    #[test]
    fn mpmc_burst_wraps_around() {
        let ring = MpmcRing::new(8);
        for lap in 0..3 {
            for i in 0..6 {
                ring.push(lap * 10 + i).unwrap();
            }
            for i in 0..6 {
                assert_eq!(ring.pop(), Some(lap * 10 + i));
            }
        }
        let mut items: Vec<i32> = (0..8).collect();
        assert_eq!(ring.push_burst(&mut items), 8);
        let mut out = Vec::new();
        assert_eq!(ring.pop_burst(&mut out, 100), 8);
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn mpmc_drop_drains_items() {
        let item = Arc::new(());
        {
            let ring = MpmcRing::new(4);
            ring.push(Arc::clone(&item)).unwrap();
            ring.push(Arc::clone(&item)).unwrap();
            assert_eq!(Arc::strong_count(&item), 3);
        }
        assert_eq!(Arc::strong_count(&item), 1);
    }

    #[test]
    fn mpmc_concurrent_burst_producers_nothing_lost() {
        const PRODUCERS: u64 = 3;
        const PER_PRODUCER: u64 = 10_000;
        let ring = Arc::new(MpmcRing::new(64));
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    let mut staged = Vec::new();
                    let mut next = p * PER_PRODUCER;
                    let end = next + PER_PRODUCER;
                    while next < end || !staged.is_empty() {
                        while staged.len() < 8 && next < end {
                            staged.push(next);
                            next += 1;
                        }
                        if ring.push_burst(&mut staged) == 0 {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        let mut seen = vec![false; (PRODUCERS * PER_PRODUCER) as usize];
        let mut got = 0usize;
        let mut out = Vec::new();
        while got < seen.len() {
            out.clear();
            if ring.pop_burst(&mut out, 32) == 0 {
                std::thread::yield_now();
                continue;
            }
            for &v in &out {
                assert!(!seen[v as usize], "item {v} duplicated");
                seen[v as usize] = true;
            }
            got += out.len();
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(ring.is_empty());
        assert!(seen.iter().all(|s| *s), "an item was lost");
    }
}
