//! Polled switch ports — the `rte_ethdev` analogue.
//!
//! A [`Port`] is a pair of bounded queues (RX towards the switch, TX away
//! from it) plus statistics. The traffic generator or a peer switch pushes
//! frames into the RX side; the datapath polls them out in bursts, classifies
//! them and pushes the results into the TX side of the chosen output port.
//! Port 0xffff_fffd and friends are reserved, mirroring OpenFlow's reserved
//! port numbers.

use std::sync::Arc;

use pkt::Packet;

use crate::ring::MpmcRing;
use crate::stats::Counters;
use crate::BURST_SIZE;

/// Numeric port identifier (OpenFlow port numbers are 32 bit).
pub type PortId = u32;

/// OpenFlow reserved port: send to the controller.
pub const PORT_CONTROLLER: PortId = 0xffff_fffd;
/// OpenFlow reserved port: flood to all ports except ingress.
pub const PORT_FLOOD: PortId = 0xffff_fffb;
/// OpenFlow reserved port: process in the ingress port's "normal" L2 path.
pub const PORT_IN_PORT: PortId = 0xffff_fff8;
/// Sentinel for "drop" used internally by the datapaths (not a wire value).
pub const PORT_DROP: PortId = 0xffff_ffff;

/// Per-port statistics (RX and TX sides).
#[derive(Debug, Default)]
pub struct PortStats {
    /// Frames received into the RX queue.
    pub rx: Counters,
    /// Frames transmitted out of the TX queue.
    pub tx: Counters,
}

/// A switch port backed by bounded RX and TX rings.
pub struct Port {
    id: PortId,
    rx: MpmcRing<Packet>,
    tx: MpmcRing<Packet>,
    stats: Arc<PortStats>,
}

impl Port {
    /// Default queue depth per direction.
    pub const DEFAULT_QUEUE_DEPTH: usize = 4096;

    /// Creates a port with the default queue depth.
    pub fn new(id: PortId) -> Self {
        Self::with_depth(id, Self::DEFAULT_QUEUE_DEPTH)
    }

    /// Creates a port with the given queue depth per direction.
    pub fn with_depth(id: PortId, depth: usize) -> Self {
        Port {
            id,
            rx: MpmcRing::new(depth),
            tx: MpmcRing::new(depth),
            stats: Arc::new(PortStats::default()),
        }
    }

    /// The port's identifier.
    pub fn id(&self) -> PortId {
        self.id
    }

    /// Shared handle to the port statistics.
    pub fn stats(&self) -> Arc<PortStats> {
        Arc::clone(&self.stats)
    }

    /// Injects a frame on the wire side (as the traffic generator / peer does).
    /// The packet's `in_port` is stamped with this port's id. Returns `false`
    /// and drops the frame if the RX queue is full.
    pub fn inject(&self, mut packet: Packet) -> bool {
        packet.in_port = self.id;
        let bytes = packet.len();
        match self.rx.push(packet) {
            Ok(()) => {
                self.stats.rx.record(bytes);
                true
            }
            Err(_) => {
                self.stats.rx.record_drop();
                false
            }
        }
    }

    /// Receives up to `max` frames from the RX queue (datapath side).
    pub fn rx_burst(&self, max: usize) -> Vec<Packet> {
        let mut out = Vec::with_capacity(max.min(BURST_SIZE));
        while out.len() < max {
            match self.rx.pop() {
                Some(p) => out.push(p),
                None => break,
            }
        }
        out
    }

    /// Transmits one frame out of this port (datapath side). Returns `false`
    /// and drops the frame if the TX queue is full.
    pub fn tx(&self, packet: Packet) -> bool {
        let bytes = packet.len();
        match self.tx.push(packet) {
            Ok(()) => {
                self.stats.tx.record(bytes);
                true
            }
            Err(_) => {
                self.stats.tx.record_drop();
                false
            }
        }
    }

    /// Drains up to `max` frames from the TX queue (wire side), e.g. to loop
    /// them back into a peer port or to let the harness verify outputs.
    pub fn tx_drain(&self, max: usize) -> Vec<Packet> {
        let mut out = Vec::with_capacity(max.min(BURST_SIZE));
        while out.len() < max {
            match self.tx.pop() {
                Some(p) => out.push(p),
                None => break,
            }
        }
        out
    }

    /// Number of frames waiting in the RX queue.
    pub fn rx_pending(&self) -> usize {
        self.rx.len()
    }

    /// Number of frames waiting in the TX queue.
    pub fn tx_pending(&self) -> usize {
        self.tx.len()
    }
}

/// A set of ports indexed by [`PortId`], as owned by one switch instance.
#[derive(Default)]
pub struct PortSet {
    ports: Vec<Arc<Port>>,
}

impl PortSet {
    /// Creates an empty port set.
    pub fn new() -> Self {
        PortSet::default()
    }

    /// Creates a set of `count` ports numbered `0..count`.
    pub fn with_ports(count: u32) -> Self {
        let mut set = PortSet::new();
        for id in 0..count {
            set.add(Port::new(id));
        }
        set
    }

    /// Adds a port to the set.
    ///
    /// # Panics
    /// Panics if a port with the same id is already present.
    pub fn add(&mut self, port: Port) -> Arc<Port> {
        assert!(
            self.get(port.id()).is_none(),
            "duplicate port id {}",
            port.id()
        );
        let port = Arc::new(port);
        self.ports.push(Arc::clone(&port));
        port
    }

    /// Looks up a port by id.
    pub fn get(&self, id: PortId) -> Option<&Arc<Port>> {
        self.ports.iter().find(|p| p.id() == id)
    }

    /// All ports in the set.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<Port>> {
        self.ports.iter()
    }

    /// Number of ports in the set.
    pub fn len(&self) -> usize {
        self.ports.len()
    }

    /// True when the set contains no ports.
    pub fn is_empty(&self) -> bool {
        self.ports.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkt::builder::PacketBuilder;

    #[test]
    fn inject_rx_tx_drain_cycle() {
        let port = Port::new(3);
        assert!(port.inject(PacketBuilder::udp().in_port(99).build()));
        assert_eq!(port.rx_pending(), 1);
        let got = port.rx_burst(32);
        assert_eq!(got.len(), 1);
        // in_port rewritten to the receiving port id
        assert_eq!(got[0].in_port, 3);
        assert!(port.tx(got.into_iter().next().unwrap()));
        assert_eq!(port.tx_pending(), 1);
        assert_eq!(port.tx_drain(32).len(), 1);
        assert_eq!(port.stats().rx.packets(), 1);
        assert_eq!(port.stats().tx.packets(), 1);
    }

    #[test]
    fn full_rx_queue_drops() {
        let port = Port::with_depth(0, 2);
        assert!(port.inject(PacketBuilder::udp().build()));
        assert!(port.inject(PacketBuilder::udp().build()));
        assert!(!port.inject(PacketBuilder::udp().build()));
        assert_eq!(port.stats().rx.drops(), 1);
        assert_eq!(port.stats().rx.packets(), 2);
    }

    #[test]
    fn burst_respects_max() {
        let port = Port::new(0);
        for _ in 0..10 {
            port.inject(PacketBuilder::udp().build());
        }
        assert_eq!(port.rx_burst(4).len(), 4);
        assert_eq!(port.rx_burst(100).len(), 6);
    }

    #[test]
    fn port_set_lookup() {
        let set = PortSet::with_ports(4);
        assert_eq!(set.len(), 4);
        assert!(set.get(3).is_some());
        assert!(set.get(4).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate port id")]
    fn duplicate_port_rejected() {
        let mut set = PortSet::with_ports(2);
        set.add(Port::new(1));
    }
}
