//! Polled switch ports — the `rte_ethdev` analogue.
//!
//! A [`Port`] is a pair of bounded queues (RX towards the switch, TX away
//! from it) plus statistics. The traffic generator or a peer switch pushes
//! frames into the RX side; the datapath polls them out in bursts, classifies
//! them and pushes the results into the TX side of the chosen output port.
//! Port 0xffff_fffd and friends are reserved, mirroring OpenFlow's reserved
//! port numbers.
//!
//! All burst paths are allocation-free: the `_into` receive APIs and the
//! vectored [`Port::tx_burst`] write into caller-owned buffers (the
//! `recvmmsg`/`sendmmsg` shape), and the rings underneath import their
//! atomics through the [`crate::sync`] facade so `tests/loom_port.rs` can
//! model the inject/rx and burst-TX protocols under loom.

use std::sync::Arc;

use pkt::Packet;

use crate::ring::MpmcRing;
use crate::stats::Counters;

/// Numeric port identifier (OpenFlow port numbers are 32 bit).
pub type PortId = u32;

/// OpenFlow reserved port: send to the controller.
pub const PORT_CONTROLLER: PortId = 0xffff_fffd;
/// OpenFlow reserved port: flood to all ports except ingress.
pub const PORT_FLOOD: PortId = 0xffff_fffb;
/// OpenFlow reserved port: process in the ingress port's "normal" L2 path.
pub const PORT_IN_PORT: PortId = 0xffff_fff8;
/// Sentinel for "drop" used internally by the datapaths (not a wire value).
pub const PORT_DROP: PortId = 0xffff_ffff;

/// Per-port statistics (RX and TX sides).
#[derive(Debug, Default)]
pub struct PortStats {
    /// Frames received into the RX queue.
    pub rx: Counters,
    /// Frames transmitted out of the TX queue.
    pub tx: Counters,
}

/// A switch port backed by bounded RX and TX rings.
pub struct Port {
    id: PortId,
    rx: MpmcRing<Packet>,
    tx: MpmcRing<Packet>,
    stats: Arc<PortStats>,
}

impl Port {
    /// Default queue depth per direction.
    pub const DEFAULT_QUEUE_DEPTH: usize = 4096;

    /// Creates a port with the default queue depth.
    pub fn new(id: PortId) -> Self {
        Self::with_depth(id, Self::DEFAULT_QUEUE_DEPTH)
    }

    /// Creates a port with the given queue depth per direction.
    pub fn with_depth(id: PortId, depth: usize) -> Self {
        Port {
            id,
            rx: MpmcRing::new(depth),
            tx: MpmcRing::new(depth),
            stats: Arc::new(PortStats::default()),
        }
    }

    /// The port's identifier.
    pub fn id(&self) -> PortId {
        self.id
    }

    /// Shared handle to the port statistics.
    pub fn stats(&self) -> Arc<PortStats> {
        Arc::clone(&self.stats)
    }

    /// Injects a frame on the wire side (as the traffic generator / peer does).
    /// The packet's `in_port` is stamped with this port's id. Returns `false`
    /// and drops the frame if the RX queue is full.
    pub fn inject(&self, mut packet: Packet) -> bool {
        packet.in_port = self.id;
        let bytes = packet.len();
        match self.rx.push(packet) {
            Ok(()) => {
                self.stats.rx.record(bytes);
                true
            }
            Err(_) => {
                self.stats.rx.record_drop();
                false
            }
        }
    }

    /// Injects a burst of frames on the wire side with one ring reservation.
    /// Each packet's `in_port` is stamped with this port's id. Frames that do
    /// not fit are left in `frames` (the accepted prefix is drained); the
    /// number accepted is returned. Statistics are recorded once per burst.
    pub fn inject_burst(&self, frames: &mut Vec<Packet>) -> usize {
        let mut bytes = 0usize;
        for packet in frames.iter_mut() {
            packet.in_port = self.id;
            bytes += packet.len();
        }
        let n = self.rx.push_burst(frames);
        for packet in frames.iter() {
            bytes -= packet.len();
        }
        if n > 0 {
            self.stats.rx.record_batch(n as u64, bytes as u64);
        }
        n
    }

    /// Receives up to `max` frames from the RX queue into `out`, appending
    /// (datapath side). The caller owns — and reuses — the buffer; nothing is
    /// allocated per burst once the buffer has warmed to capacity. Returns
    /// the number of frames received.
    pub fn rx_burst_into(&self, out: &mut Vec<Packet>, max: usize) -> usize {
        self.rx.pop_burst(out, max)
    }

    /// Transmits one frame out of this port (datapath side). Returns `false`
    /// and drops the frame if the TX queue is full.
    pub fn tx(&self, packet: Packet) -> bool {
        let bytes = packet.len();
        match self.tx.push(packet) {
            Ok(()) => {
                self.stats.tx.record(bytes);
                true
            }
            Err(_) => {
                self.stats.tx.record_drop();
                false
            }
        }
    }

    /// Transmits a burst of frames with one ring reservation — the `sendmmsg`
    /// analogue. Frames that do not fit in the TX queue are dropped and
    /// counted as TX drops; `frames` is left empty either way. Statistics for
    /// the accepted frames are recorded once per burst, not per packet.
    /// Returns the number of frames accepted onto the queue.
    pub fn tx_burst(&self, frames: &mut Vec<Packet>) -> usize {
        let mut bytes = 0usize;
        for packet in frames.iter() {
            bytes += packet.len();
        }
        let n = self.tx.push_burst(frames);
        for packet in frames.iter() {
            bytes -= packet.len();
        }
        if n > 0 {
            self.stats.tx.record_batch(n as u64, bytes as u64);
        }
        for _ in frames.drain(..) {
            self.stats.tx.record_drop();
        }
        n
    }

    /// Drains up to `max` frames from the TX queue into `out`, appending
    /// (wire side), e.g. to loop them back into a peer port or to let the
    /// harness verify outputs. Returns the number of frames drained.
    pub fn tx_drain_into(&self, out: &mut Vec<Packet>, max: usize) -> usize {
        self.tx.pop_burst(out, max)
    }

    /// Number of frames waiting in the RX queue.
    pub fn rx_pending(&self) -> usize {
        self.rx.len()
    }

    /// Number of frames waiting in the TX queue.
    pub fn tx_pending(&self) -> usize {
        self.tx.len()
    }

    /// Allocating convenience wrapper over [`Port::rx_burst_into`], kept for
    /// tests and harnesses only — the datapath uses the `_into` form.
    pub fn rx_burst(&self, max: usize) -> Vec<Packet> {
        let mut out = Vec::with_capacity(max);
        self.rx_burst_into(&mut out, max);
        out
    }

    /// Allocating convenience wrapper over [`Port::tx_drain_into`], kept for
    /// tests and harnesses only — the datapath uses the `_into` form.
    pub fn tx_drain(&self, max: usize) -> Vec<Packet> {
        let mut out = Vec::with_capacity(max);
        self.tx_drain_into(&mut out, max);
        out
    }
}

/// Port ids at or below this bound get a dense direct-index slot in
/// [`PortSet`]; anything larger (e.g. OpenFlow reserved ids) falls back to a
/// short sparse list.
const DENSE_LIMIT: usize = 4096;

/// A set of ports indexed by [`PortId`], as owned by one switch instance.
///
/// Lookups are O(1): small ids (the common case — switches number ports from
/// zero) index directly into a dense table, while large ids (reserved ranges)
/// use a sparse fallback whose length is bounded by the number of such ports,
/// not by the id space.
#[derive(Default)]
pub struct PortSet {
    /// Insertion-ordered list backing `iter`/`len`.
    ports: Vec<Arc<Port>>,
    /// Direct index for ids < `DENSE_LIMIT`, grown on demand.
    dense: Vec<Option<Arc<Port>>>,
    /// Fallback for ids ≥ `DENSE_LIMIT` (reserved / sparse numbering).
    sparse: Vec<(PortId, Arc<Port>)>,
}

impl PortSet {
    /// Creates an empty port set.
    pub fn new() -> Self {
        PortSet::default()
    }

    /// Creates a set of `count` ports numbered `0..count`.
    pub fn with_ports(count: u32) -> Self {
        let mut set = PortSet::new();
        for id in 0..count {
            set.add(Port::new(id));
        }
        set
    }

    /// Adds a port to the set.
    ///
    /// # Panics
    /// Panics if a port with the same id is already present.
    pub fn add(&mut self, port: Port) -> Arc<Port> {
        let id = port.id();
        assert!(self.get(id).is_none(), "duplicate port id {id}");
        let port = Arc::new(port);
        if (id as usize) < DENSE_LIMIT {
            if self.dense.len() <= id as usize {
                self.dense.resize(id as usize + 1, None);
            }
            self.dense[id as usize] = Some(Arc::clone(&port));
        } else {
            self.sparse.push((id, Arc::clone(&port)));
        }
        self.ports.push(Arc::clone(&port));
        port
    }

    /// Looks up a port by id in O(1) for densely numbered ports.
    pub fn get(&self, id: PortId) -> Option<&Arc<Port>> {
        if (id as usize) < DENSE_LIMIT {
            self.dense.get(id as usize)?.as_ref()
        } else {
            self.sparse
                .iter()
                .find(|(pid, _)| *pid == id)
                .map(|(_, p)| p)
        }
    }

    /// All ports in the set, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<Port>> {
        self.ports.iter()
    }

    /// Number of ports in the set.
    pub fn len(&self) -> usize {
        self.ports.len()
    }

    /// True when the set contains no ports.
    pub fn is_empty(&self) -> bool {
        self.ports.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkt::builder::PacketBuilder;

    #[test]
    fn inject_rx_tx_drain_cycle() {
        let port = Port::new(3);
        assert!(port.inject(PacketBuilder::udp().in_port(99).build()));
        assert_eq!(port.rx_pending(), 1);
        let got = port.rx_burst(32);
        assert_eq!(got.len(), 1);
        // in_port rewritten to the receiving port id
        assert_eq!(got[0].in_port, 3);
        assert!(port.tx(got.into_iter().next().unwrap()));
        assert_eq!(port.tx_pending(), 1);
        assert_eq!(port.tx_drain(32).len(), 1);
        assert_eq!(port.stats().rx.packets(), 1);
        assert_eq!(port.stats().tx.packets(), 1);
    }

    #[test]
    fn full_rx_queue_drops() {
        let port = Port::with_depth(0, 2);
        assert!(port.inject(PacketBuilder::udp().build()));
        assert!(port.inject(PacketBuilder::udp().build()));
        assert!(!port.inject(PacketBuilder::udp().build()));
        assert_eq!(port.stats().rx.drops(), 1);
        assert_eq!(port.stats().rx.packets(), 2);
    }

    #[test]
    fn burst_respects_max() {
        let port = Port::new(0);
        for _ in 0..10 {
            port.inject(PacketBuilder::udp().build());
        }
        assert_eq!(port.rx_burst(4).len(), 4);
        assert_eq!(port.rx_burst(100).len(), 6);
    }

    #[test]
    fn rx_burst_into_appends_without_realloc() {
        let port = Port::new(0);
        for _ in 0..8 {
            port.inject(PacketBuilder::udp().build());
        }
        let mut out = Vec::with_capacity(8);
        let cap = out.capacity();
        assert_eq!(port.rx_burst_into(&mut out, 5), 5);
        assert_eq!(port.rx_burst_into(&mut out, 5), 3);
        assert_eq!(out.len(), 8);
        assert_eq!(out.capacity(), cap, "burst receive must not reallocate");
    }

    #[test]
    fn inject_burst_stamps_and_counts_once() {
        let port = Port::with_depth(7, 4);
        let mut frames: Vec<_> = (0..6)
            .map(|_| PacketBuilder::udp().in_port(99).build())
            .collect();
        let total_bytes: u64 = frames.iter().map(|p| p.len() as u64).sum();
        let per_frame = total_bytes / 6;
        assert_eq!(port.inject_burst(&mut frames), 4);
        assert_eq!(frames.len(), 2, "overflow frames stay with the caller");
        assert_eq!(port.stats().rx.packets(), 4);
        assert_eq!(port.stats().rx.bytes(), per_frame * 4);
        let mut out = Vec::new();
        port.rx_burst_into(&mut out, 32);
        assert!(out.iter().all(|p| p.in_port == 7));
    }

    #[test]
    fn tx_burst_drops_and_counts_overflow() {
        let port = Port::with_depth(0, 4);
        let mut frames: Vec<_> = (0..6).map(|_| PacketBuilder::udp().build()).collect();
        assert_eq!(port.tx_burst(&mut frames), 4);
        assert!(frames.is_empty(), "tx_burst consumes the whole buffer");
        assert_eq!(port.stats().tx.packets(), 4);
        assert_eq!(port.stats().tx.drops(), 2);
        assert_eq!(port.tx_pending(), 4);
        let mut out = Vec::new();
        assert_eq!(port.tx_drain_into(&mut out, 32), 4);
    }

    #[test]
    fn port_set_lookup() {
        let set = PortSet::with_ports(4);
        assert_eq!(set.len(), 4);
        assert!(set.get(3).is_some());
        assert!(set.get(4).is_none());
    }

    #[test]
    fn port_set_sparse_ids() {
        let mut set = PortSet::new();
        set.add(Port::new(0));
        set.add(Port::new(0x0001_0000));
        assert_eq!(set.len(), 2);
        assert_eq!(set.get(0x0001_0000).unwrap().id(), 0x0001_0000);
        assert!(set.get(0x0002_0000).is_none());
        assert!(set.get(1).is_none());
        let ids: Vec<_> = set.iter().map(|p| p.id()).collect();
        assert_eq!(ids, vec![0, 0x0001_0000]);
    }

    #[test]
    #[should_panic(expected = "duplicate port id")]
    fn duplicate_port_rejected() {
        let mut set = PortSet::with_ports(2);
        set.add(Port::new(1));
    }

    #[test]
    #[should_panic(expected = "duplicate port id")]
    fn duplicate_sparse_port_rejected() {
        let mut set = PortSet::new();
        set.add(Port::new(0x0001_0000));
        set.add(Port::new(0x0001_0000));
    }
}
