//! FxHash — the multiply-rotate hash used by rustc and Firefox.
//!
//! The datapath hot path hashes small fixed-shape keys (masked field tuples,
//! miniflow keys) millions of times per second; SipHash's per-key setup and
//! finalisation dominate at that size. FxHash folds each word with one rotate,
//! one xor and one multiply, which is the same cost model as the inline hash
//! sequences the paper's generated code uses. It is *not* DoS-resistant —
//! fine for caches bounded by eviction, wrong for anything fed attacker
//! chosen keys without a bound.
//!
//! Vendored here (the build container has no crates-registry route) with the
//! same constants as the `fxhash`/`rustc-hash` crates.

use std::hash::{BuildHasherDefault, Hasher};

/// Golden-ratio-derived multiplier (same constant as `rustc-hash`).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A streaming FxHash state.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        FxHasher::default()
    }

    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8 bytes")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` plugging [`FxHasher`] into `HashMap`/`HashSet`.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Hashes one `u64` word into an accumulator — the building block for
/// precomputed per-key hashes built incrementally (miniflow keys).
#[inline]
pub fn fx_mix(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(5) ^ word).wrapping_mul(SEED)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn deterministic_and_word_sensitive() {
        let build = FxBuildHasher::default();
        let a = build.hash_one(0x1234_5678_u64);
        let b = build.hash_one(0x1234_5678_u64);
        let c = build.hash_one(0x1234_5679_u64);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn slice_hash_matches_owned_box_hash() {
        // The megaflow subtables rely on Borrow<[u128]>: a Box<[u128]> key
        // and the borrowed slice must hash identically.
        let build = FxBuildHasher::default();
        let owned: Box<[u128]> = vec![1u128, 2, u128::MAX].into_boxed_slice();
        let slice: &[u128] = &[1u128, 2, u128::MAX];
        assert_eq!(build.hash_one(&owned), build.hash_one(slice));
    }

    #[test]
    fn byte_stream_tail_lengths_distinct() {
        let build = FxBuildHasher::default();
        let with_len = |bytes: &[u8]| {
            let mut h = build.build_hasher();
            h.write(bytes);
            h.finish()
        };
        assert_ne!(with_len(&[0, 0, 0]), with_len(&[0, 0, 0, 0]));
        assert_ne!(with_len(&[1, 2, 3]), with_len(&[3, 2, 1]));
    }

    #[test]
    fn fx_mix_matches_hasher_u64_stream() {
        let mut h = FxHasher::new();
        h.write_u64(7);
        h.write_u64(99);
        let folded = fx_mix(fx_mix(0, 7), 99);
        assert_eq!(h.finish(), folded);
    }
}
