//! Packet batches.
//!
//! DPDK applications process packets in bursts (typically 32) to amortise
//! per-call overheads and keep the working set in cache; both datapaths in
//! this workspace do the same.

use pkt::Packet;

/// Default burst size, matching DPDK's conventional `rx_burst` of 32.
pub const BURST_SIZE: usize = 32;

/// A batch of packets moving through a datapath together.
///
/// Thin, explicit wrapper around a `Vec<Packet>` so that code passing batches
/// around documents intent and gets the couple of helpers (drain splitting by
/// verdict, byte accounting) the harnesses need.
#[derive(Debug, Default, Clone)]
pub struct PacketBatch {
    packets: Vec<Packet>,
}

impl PacketBatch {
    /// Creates an empty batch with the default burst capacity.
    pub fn new() -> Self {
        PacketBatch {
            packets: Vec::with_capacity(BURST_SIZE),
        }
    }

    /// Creates an empty batch with the given capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        PacketBatch {
            packets: Vec::with_capacity(capacity),
        }
    }

    /// Builds a batch from existing packets.
    pub fn from_packets(packets: Vec<Packet>) -> Self {
        PacketBatch { packets }
    }

    /// Adds a packet to the batch.
    pub fn push(&mut self, packet: Packet) {
        self.packets.push(packet);
    }

    /// Number of packets in the batch.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True when the batch holds no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Total frame bytes in the batch.
    pub fn bytes(&self) -> usize {
        self.packets.iter().map(Packet::len).sum()
    }

    /// Read-only view of the packets.
    pub fn packets(&self) -> &[Packet] {
        &self.packets
    }

    /// Mutable view of the packets (for in-place header rewrites).
    pub fn packets_mut(&mut self) -> &mut [Packet] {
        &mut self.packets
    }

    /// Removes and returns all packets, leaving the batch empty but with its
    /// capacity intact so it can be reused for the next burst.
    pub fn drain(&mut self) -> Vec<Packet> {
        std::mem::take(&mut self.packets)
    }

    /// Iterates over the packets.
    pub fn iter(&self) -> std::slice::Iter<'_, Packet> {
        self.packets.iter()
    }
}

impl IntoIterator for PacketBatch {
    type Item = Packet;
    type IntoIter = std::vec::IntoIter<Packet>;

    fn into_iter(self) -> Self::IntoIter {
        self.packets.into_iter()
    }
}

impl FromIterator<Packet> for PacketBatch {
    fn from_iter<I: IntoIterator<Item = Packet>>(iter: I) -> Self {
        PacketBatch {
            packets: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkt::builder::PacketBuilder;

    #[test]
    fn push_len_bytes() {
        let mut batch = PacketBatch::new();
        assert!(batch.is_empty());
        batch.push(PacketBuilder::udp().build());
        batch.push(PacketBuilder::tcp().pad_to(100).build());
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.bytes(), 60 + 100);
    }

    #[test]
    fn drain_empties_but_keeps_reusable() {
        let mut batch: PacketBatch = (0..5).map(|_| PacketBuilder::udp().build()).collect();
        let taken = batch.drain();
        assert_eq!(taken.len(), 5);
        assert!(batch.is_empty());
        batch.push(PacketBuilder::tcp().build());
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn iteration() {
        let batch: PacketBatch = (0..3)
            .map(|i| PacketBuilder::udp().in_port(i).build())
            .collect();
        let ports: Vec<u32> = batch.iter().map(|p| p.in_port).collect();
        assert_eq!(ports, vec![0, 1, 2]);
        let owned: Vec<Packet> = batch.into_iter().collect();
        assert_eq!(owned.len(), 3);
    }
}
