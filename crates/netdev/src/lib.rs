//! # netdev — DPDK-analogue substrate
//!
//! The ESWITCH prototype of the paper runs on top of the Intel DataPlane
//! Development Kit: poll-mode ports, burst RX/TX, the `rte_lpm` DIR-24-8
//! longest-prefix-match library and assorted lock-free rings. None of that is
//! available (or wanted) in a portable reproduction, so this crate provides
//! the equivalent in-process substrate the datapaths and benchmarks run on:
//!
//! * [`ring`] — bounded single-producer/single-consumer and multi-producer
//!   rings used to back ports and inter-core queues (the `rte_ring` analogue),
//! * [`port`] — polled ports with vectored burst receive/transmit
//!   (`recvmmsg`/`sendmmsg`-shaped `_into` APIs) and per-port statistics
//!   (the `rte_ethdev` analogue),
//! * [`classify`] — a pre-RSS match program for steering special traffic to
//!   designated shards (the software `SO_REUSEPORT` + eBPF analogue),
//! * [`batch`] — fixed-burst packet batches (DPDK's `rx_burst` of 32),
//! * [`lpm`] — a DIR-24-8 longest-prefix-match table, the same layout as
//!   `rte_lpm`, backing the ESWITCH LPM table template,
//! * [`perfect_hash`] — a collision-free hash with constant-time lookup,
//!   backing the compound-hash table template,
//! * [`fxhash`] — the multiply-rotate hash the cache hot paths key on
//!   (SipHash setup/finalisation dominates at flow-key sizes),
//! * [`stats`] — shared atomic packet/byte/drop counters,
//! * [`sync`] — the synchronization facade the lock-free pieces are written
//!   against: `std`/`parking_lot` types normally, the vendored loom model
//!   checker under `--cfg loom` (see README §"Concurrency verification
//!   methodology").
//!
//! See DESIGN.md §1 for why this substitution preserves the behaviours the
//! evaluation depends on.

pub mod batch;
pub mod classify;
pub mod fxhash;
pub mod lpm;
pub mod perfect_hash;
pub mod port;
pub mod ring;
pub mod stats;
pub mod sync;

pub use batch::{PacketBatch, BURST_SIZE};
pub use classify::{Classifier, ClassifyAction, ClassifyRule, MatchSpec};
pub use fxhash::{fx_mix, FxBuildHasher, FxHasher};
pub use lpm::{Lpm, LpmError};
pub use perfect_hash::PerfectHash;
pub use port::{
    Port, PortId, PortSet, PortStats, PORT_CONTROLLER, PORT_DROP, PORT_FLOOD, PORT_IN_PORT,
};
pub use ring::{MpmcRing, SpscRing};
pub use stats::{CounterSnapshot, Counters};
