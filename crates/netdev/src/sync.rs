//! Synchronization facade for the lock-free core.
//!
//! Every concurrency primitive the dataplane crates use is imported through
//! this module instead of `std` directly. In a normal build the re-exports
//! are exactly the `std`/`parking_lot` types (zero cost — the `UnsafeCell`
//! wrapper is `#[repr(transparent)]` with `#[inline(always)]` accessors).
//! Under `RUSTFLAGS="--cfg loom"` they switch to the vendored `loom` model
//! checker, and the `loom_*.rs` integration tests explore every bounded
//! interleaving of the protocols built on top: the SPSC/MPMC rings, the
//! stats counters, the epoch swap, and the punt gate.
//!
//! The `cargo xtask lint` facade rule keeps the covered crates honest: any
//! direct `std::sync::atomic` / `std::cell::UnsafeCell` import outside this
//! file (test modules aside) fails CI.

/// Atomic integer and bool types plus [`atomic::Ordering`].
#[cfg(not(loom))]
pub use std::sync::atomic;

/// Atomic integer and bool types plus [`atomic::Ordering`].
#[cfg(loom)]
pub use loom::sync::atomic;

/// Atomically reference-counted pointer (model-tracked under loom).
#[cfg(not(loom))]
pub use std::sync::Arc;

/// Atomically reference-counted pointer (model-tracked under loom).
#[cfg(loom)]
pub use loom::sync::Arc;

/// Non-poisoning mutual-exclusion lock.
#[cfg(not(loom))]
pub use parking_lot::{Mutex, MutexGuard};

/// Non-poisoning mutual-exclusion lock.
#[cfg(loom)]
pub use loom::sync::{Mutex, MutexGuard};

/// Non-poisoning reader-writer lock.
#[cfg(not(loom))]
pub use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning reader-writer lock.
#[cfg(loom)]
pub use loom::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Interior-mutable cell with the closure-based access API race-checked by
/// loom; see [`UnsafeCell::with`] / [`UnsafeCell::with_mut`].
#[cfg(loom)]
pub use loom::cell::UnsafeCell;

#[cfg(not(loom))]
mod cell {
    /// Interior-mutable cell mirroring `loom::cell::UnsafeCell`.
    ///
    /// The closure-based `with`/`with_mut` API is what lets the loom build
    /// interpose its data-race detector; in this (normal) build both
    /// compile down to a plain pointer handoff.
    #[derive(Debug, Default)]
    #[repr(transparent)]
    pub struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

    impl<T> UnsafeCell<T> {
        /// Creates a cell owning `value`.
        pub const fn new(value: T) -> Self {
            UnsafeCell(std::cell::UnsafeCell::new(value))
        }

        /// Consumes the cell, returning the value.
        pub fn into_inner(self) -> T {
            self.0.into_inner()
        }

        /// Runs `f` with a shared raw pointer to the contents.
        ///
        /// The pointer is only valid inside `f`; the caller is responsible
        /// for the usual aliasing discipline (no concurrent `with_mut`) —
        /// exactly what the loom build verifies exhaustively.
        #[inline(always)]
        pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.0.get())
        }

        /// Runs `f` with an exclusive raw pointer to the contents; same
        /// contract as [`UnsafeCell::with`].
        #[inline(always)]
        pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.0.get())
        }
    }
}

#[cfg(not(loom))]
pub use cell::UnsafeCell;

/// Spin-loop hint: the processor pause instruction normally, a scheduler
/// yield under loom (a modelled spin without it would livelock the search).
pub mod hint {
    /// See [module docs](self).
    #[cfg(not(loom))]
    #[inline(always)]
    pub fn spin_loop() {
        std::hint::spin_loop();
    }

    /// See [module docs](self).
    #[cfg(loom)]
    pub fn spin_loop() {
        loom::hint::spin_loop();
    }
}
