//! Pre-shard packet classifier — the software `SO_REUSEPORT` + eBPF analogue.
//!
//! A hardware NIC lets a small program inspect each frame *before* RSS picks
//! a queue, so special traffic (control-plane punts, load-balancer VIPs) can
//! be steered to a designated core without waking the rest. [`Classifier`] is
//! that program for our polled ports: per-port dispatchers run it on every
//! received frame and either honour a [`ClassifyAction::Steer`] decision
//! (bypassing the RSS indirection table) or fall through to
//! [`ClassifyAction::Hash`] for the normal 5-tuple path.
//!
//! The match program is a first-match-wins rule list over a handful of
//! header fields — ingress port, EtherType, IP protocol, IPv4 destination,
//! L4 destination port — parsed with the same allocation-free
//! [`pkt::parser`] the RSS hash uses, so classification never touches the
//! heap and stays on the fast path. This module is covered by the xtask
//! fast-path lint.

use pkt::parser::{parse, ParseDepth};

use crate::port::PortId;

/// Decision produced by [`Classifier::classify`] for one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassifyAction {
    /// Bypass RSS and deliver the frame to this shard.
    Steer(usize),
    /// Fall through to normal RSS hashing over the indirection table.
    Hash,
}

/// Field predicates for one classifier rule. `None` means wildcard; all
/// present fields must match (a conjunction, like an OpenFlow match minus
/// the priorities).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchSpec {
    in_port: Option<PortId>,
    ethertype: Option<u16>,
    ip_proto: Option<u8>,
    ipv4_dst: Option<u32>,
    l4_dst: Option<u16>,
}

impl MatchSpec {
    /// A fully wildcarded spec (matches every frame).
    pub fn any() -> Self {
        MatchSpec::default()
    }

    /// Require a specific ingress port.
    pub fn in_port(mut self, port: PortId) -> Self {
        self.in_port = Some(port);
        self
    }

    /// Require a specific EtherType (after any VLAN tags), e.g. 0x0806 (ARP).
    pub fn ethertype(mut self, ethertype: u16) -> Self {
        self.ethertype = Some(ethertype);
        self
    }

    /// Require a specific IP protocol number (6 = TCP, 17 = UDP).
    pub fn ip_proto(mut self, proto: u8) -> Self {
        self.ip_proto = Some(proto);
        self
    }

    /// Require a specific IPv4 destination address (big-endian `u32`, as
    /// [`pkt::Ipv4Addr4::to_u32`] yields) — the LB-VIP case.
    pub fn ipv4_dst(mut self, addr: u32) -> Self {
        self.ipv4_dst = Some(addr);
        self
    }

    /// Require a specific TCP/UDP destination port — the control-plane case.
    pub fn l4_dst(mut self, port: u16) -> Self {
        self.l4_dst = Some(port);
        self
    }

    /// True when every present predicate matches the parsed frame.
    fn matches(&self, in_port: PortId, frame: &[u8], hdrs: &pkt::ParsedHeaders) -> bool {
        if let Some(want) = self.in_port {
            if in_port != want {
                return false;
            }
        }
        if let Some(want) = self.ethertype {
            if hdrs.ethertype != want {
                return false;
            }
        }
        if let Some(want) = self.ip_proto {
            if !hdrs.has_ipv4() || hdrs.ip_proto != want {
                return false;
            }
        }
        if let Some(want) = self.ipv4_dst {
            match hdrs.ipv4_dst(frame) {
                Some(dst) if dst.to_u32() == want => {}
                _ => return false,
            }
        }
        if let Some(want) = self.l4_dst {
            match hdrs.l4_dst(frame) {
                Some(dst) if dst == want => {}
                _ => return false,
            }
        }
        true
    }
}

/// One classifier rule: a [`MatchSpec`] and the action taken when it matches.
#[derive(Debug, Clone, Copy)]
pub struct ClassifyRule {
    /// Field predicates; all present fields must match.
    pub spec: MatchSpec,
    /// Action applied on match.
    pub action: ClassifyAction,
}

/// A first-match-wins rule program run before RSS on every received frame.
///
/// The rule list is built once at configuration time and then only read on
/// the fast path; [`Classifier::classify`] itself performs no allocation.
#[derive(Debug, Clone, Default)]
pub struct Classifier {
    rules: Vec<ClassifyRule>,
}

impl Classifier {
    /// An empty program: every frame hashes normally.
    pub fn new() -> Self {
        Classifier::default()
    }

    /// Appends a rule (builder style). Earlier rules win.
    pub fn rule(mut self, spec: MatchSpec, action: ClassifyAction) -> Self {
        self.rules.push(ClassifyRule { spec, action });
        self
    }

    /// Number of rules in the program.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when the program has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Runs the program over one frame: the first matching rule's action, or
    /// [`ClassifyAction::Hash`] when nothing matches.
    pub fn classify(&self, in_port: PortId, frame: &[u8]) -> ClassifyAction {
        if self.rules.is_empty() {
            return ClassifyAction::Hash;
        }
        let hdrs = parse(frame, ParseDepth::L4);
        for rule in &self.rules {
            if rule.spec.matches(in_port, frame, &hdrs) {
                return rule.action;
            }
        }
        ClassifyAction::Hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pkt::builder::PacketBuilder;

    #[test]
    fn empty_program_hashes() {
        let c = Classifier::new();
        assert!(c.is_empty());
        let p = PacketBuilder::udp().build();
        assert_eq!(c.classify(0, p.data()), ClassifyAction::Hash);
    }

    #[test]
    fn l4_dst_steers_controller_traffic() {
        let c = Classifier::new().rule(
            MatchSpec::any().ip_proto(6).l4_dst(6653),
            ClassifyAction::Steer(3),
        );
        let ctrl = PacketBuilder::tcp().tcp_dst(6653).build();
        let data = PacketBuilder::tcp().tcp_dst(80).build();
        let udp = PacketBuilder::udp().udp_dst(6653).build();
        assert_eq!(c.classify(0, ctrl.data()), ClassifyAction::Steer(3));
        assert_eq!(c.classify(0, data.data()), ClassifyAction::Hash);
        assert_eq!(
            c.classify(0, udp.data()),
            ClassifyAction::Hash,
            "ip_proto=6 excludes UDP"
        );
    }

    #[test]
    fn first_match_wins_and_in_port_filters() {
        let c = Classifier::new()
            .rule(MatchSpec::any().in_port(2), ClassifyAction::Steer(0))
            .rule(MatchSpec::any(), ClassifyAction::Steer(1));
        assert_eq!(c.len(), 2);
        let p = PacketBuilder::udp().build();
        assert_eq!(c.classify(2, p.data()), ClassifyAction::Steer(0));
        assert_eq!(c.classify(5, p.data()), ClassifyAction::Steer(1));
    }

    #[test]
    fn ipv4_dst_matches_vip() {
        let vip = u32::from_be_bytes([10, 0, 0, 80]);
        let c = Classifier::new().rule(MatchSpec::any().ipv4_dst(vip), ClassifyAction::Steer(2));
        let hit = PacketBuilder::udp().ipv4_dst([10, 0, 0, 80]).build();
        let miss = PacketBuilder::udp().ipv4_dst([10, 0, 0, 81]).build();
        assert_eq!(c.classify(0, hit.data()), ClassifyAction::Steer(2));
        assert_eq!(c.classify(0, miss.data()), ClassifyAction::Hash);
    }
}
