//! Shared packet/byte/drop counters.

use crate::sync::atomic::{AtomicU64, Ordering};

/// A set of atomic traffic counters.
///
/// OpenFlow requires per-flow-entry and per-table counters; ports need RX/TX
/// accounting; and the benchmark harnesses read totals from another thread
/// while workers keep counting. All of those use this type.
///
/// Increments are `Release` and reads `Acquire` — free on x86-TSO, but it
/// makes the counters usable as progress signals: the sharded runtime's
/// shutdown fixpoint concludes "every punt is enqueued" from "the processed
/// count reached the dispatched count", which needs each worker's
/// ring pushes to happen-before the increment that a reader observes. Plain
/// `Relaxed` would leave that inference unsound on weakly-ordered machines.
#[derive(Debug, Default)]
pub struct Counters {
    packets: AtomicU64,
    bytes: AtomicU64,
    drops: AtomicU64,
}

impl Counters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one packet of `bytes` bytes.
    pub fn record(&self, bytes: usize) {
        self.packets.fetch_add(1, Ordering::Release);
        self.bytes.fetch_add(bytes as u64, Ordering::Release);
    }

    /// Records `packets` packets totalling `bytes` bytes in one shot
    /// (batch accounting).
    pub fn record_batch(&self, packets: u64, bytes: u64) {
        self.packets.fetch_add(packets, Ordering::Release);
        self.bytes.fetch_add(bytes, Ordering::Release);
    }

    /// Records one dropped packet.
    pub fn record_drop(&self) {
        self.drops.fetch_add(1, Ordering::Release);
    }

    /// Packets counted so far.
    pub fn packets(&self) -> u64 {
        self.packets.load(Ordering::Acquire)
    }

    /// Bytes counted so far.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Acquire)
    }

    /// Drops counted so far.
    pub fn drops(&self) -> u64 {
        self.drops.load(Ordering::Acquire)
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.packets.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
        self.drops.store(0, Ordering::Relaxed);
    }

    /// Returns a point-in-time copy of the counter values.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            packets: self.packets(),
            bytes: self.bytes(),
            drops: self.drops(),
        }
    }
}

/// Plain-data copy of [`Counters`] at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    /// Packets counted.
    pub packets: u64,
    /// Bytes counted.
    pub bytes: u64,
    /// Drops counted.
    pub drops: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let c = Counters::new();
        c.record(64);
        c.record(128);
        c.record_drop();
        c.record_batch(10, 640);
        let snap = c.snapshot();
        assert_eq!(snap.packets, 12);
        assert_eq!(snap.bytes, 64 + 128 + 640);
        assert_eq!(snap.drops, 1);
        c.reset();
        assert_eq!(c.snapshot(), CounterSnapshot::default());
    }

    #[test]
    fn concurrent_counting() {
        use std::sync::Arc;
        let c = Arc::new(Counters::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.record(64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.packets(), 40_000);
        assert_eq!(c.bytes(), 40_000 * 64);
    }
}
